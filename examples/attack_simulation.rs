//! Execute an intelligent attack on a concrete overlay and compare the
//! empirical `P_S` against the closed-form prediction.
//!
//! Walks the full substrate: builds an overlay (SOS nodes hidden among
//! bystanders), runs Algorithm 1 against it round by round, prints the
//! attack trace, then measures delivery over thousands of client routes
//! — under both the paper's direct-hop abstraction and real Chord
//! routing.
//!
//! ```text
//! cargo run --release --example attack_simulation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sos::attack::SuccessiveAttacker;
use sos::core::{
    AttackBudget, AttackConfig, MappingDegree, PathEvaluator, Scenario, SuccessiveParams,
    SystemParams,
};
use sos::overlay::Overlay;
use sos::sim::engine::{Simulation, SimulationConfig, TransportKind};
use sos::sim::compare_models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1/10-scale paper system so the example runs in seconds.
    let scenario = Scenario::builder()
        .system(SystemParams::new(1_000, 100, 0.5)?)
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .build()?;
    let budget = AttackBudget::new(100, 300);
    let params = SuccessiveParams::paper_default();

    // --- One concrete attack, traced round by round. ---
    let mut rng = StdRng::seed_from_u64(2004);
    let mut overlay = Overlay::build(&scenario, &mut rng);
    let outcome = SuccessiveAttacker::new(budget, params).execute(&mut overlay, &mut rng);
    println!("one concrete successive attack (seed 2004):");
    for round in &outcome.rounds {
        println!(
            "  round {}: knew {:>3} nodes, attacked {:>3} disclosed + {:>3} random, \
             broke {:>3}, disclosed {:>3} new",
            round.round,
            round.known_at_start,
            round.attempted_disclosed,
            round.attempted_random,
            round.broken,
            round.newly_disclosed
        );
    }
    println!(
        "  totals: {} attempts, {} broken ({}% success), {} congested",
        outcome.total_attempts(),
        outcome.broken.len(),
        (outcome.break_in_rate() * 100.0).round(),
        outcome.total_congested()
    );
    let state = overlay.compromise_state();
    for layer in 1..=4usize {
        println!(
            "  layer {layer}: {:>2} broken, {:>2} congested of {:>2}",
            state.broken(layer),
            state.congested(layer),
            overlay.layer_members(layer).len()
        );
    }
    let (targeted, random) = outcome.trace.congestion_split();
    println!(
        "  trace: {} events, deepest disclosure cascade {} hops, congestion {targeted} targeted / {random} random",
        outcome.trace.len(),
        outcome.trace.max_cascade_depth(),
    );
    println!();

    // --- Monte Carlo over many attacked overlays vs the closed form. ---
    let row = compare_models("successive", &scenario, AttackConfig::Successive { budget, params }, 200, 100, 7)?;
    println!("closed-form vs Monte Carlo (200 overlays x 100 routes):");
    println!("  analytic P_S (hypergeometric): {:.4}", row.analytic_hypergeometric);
    println!("  analytic P_S (binomial):       {:.4}", row.analytic_binomial);
    println!(
        "  simulated P_S:                 {:.4}  (95% CI [{:.4}, {:.4}])",
        row.simulated, row.simulated_lo, row.simulated_hi
    );
    println!();

    // --- What the direct-hop abstraction hides: Chord transport. ---
    let attack = AttackConfig::Successive { budget, params };
    let direct = Simulation::new(
        SimulationConfig::new(scenario.clone(), attack)
            .trials(100)
            .routes_per_trial(100)
            .seed(7)
            .transport(TransportKind::Direct),
    )
    .run_parallel(8);
    let chord = Simulation::new(
        SimulationConfig::new(scenario.clone(), attack)
            .trials(100)
            .routes_per_trial(100)
            .seed(7)
            .transport(TransportKind::Chord),
    )
    .run_parallel(8);
    println!("transport ablation (same overlays, same attacks):");
    println!(
        "  direct hops: P_S = {:.4}, {:.1} underlay hops/message",
        direct.success_rate(),
        direct.mean_underlay_hops
    );
    println!(
        "  chord hops:  P_S = {:.4}, {:.1} underlay hops/message",
        chord.success_rate(),
        chord.mean_underlay_hops
    );
    println!();

    // Sanity: the binomial closed form tracks the simulation.
    let _ = PathEvaluator::Binomial;
    println!(
        "gap binomial-vs-simulated: {:.4} (the evaluator ablation quantifies this across the grid)",
        row.binomial_gap()
    );
    Ok(())
}
