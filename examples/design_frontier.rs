//! The latency–resilience frontier and the design optimizer — the
//! paper's "timely delivery" open issue (§5) turned into a deployment
//! decision.
//!
//! ```text
//! cargo run --example design_frontier
//! ```

use sos::analysis::{
    latency_resilience_frontier, AttackProfile, Constraints, DesignSpace,
    ForwardingDiscipline, LatencyModel, Objective, Optimizer,
};
use sos::core::{
    AttackBudget, AttackConfig, MappingDegree, NodeDistribution, SuccessiveParams,
    SystemParams,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemParams::paper_default();

    // --- Pareto frontier: P_S vs expected latency, delay-aware routing. ---
    let model = LatencyModel {
        per_hop_mean: 10.0, // ms per overlay hop
        chord_transport: false,
        discipline: ForwardingDiscipline::DelayAware,
    };
    let points = latency_resilience_frontier(
        system,
        NodeDistribution::Even,
        AttackBudget::paper_default(),
        SuccessiveParams::paper_default(),
        model,
        1..=8,
        &MappingDegree::paper_named_set(),
    )?;
    println!("latency-resilience frontier (successive attack, delay-aware routing):");
    println!("{:<28} {:>8} {:>12}", "design", "P_S", "latency(ms)");
    let mut pareto: Vec<_> = points.iter().filter(|p| p.pareto_optimal).collect();
    pareto.sort_by(|a, b| a.latency.partial_cmp(&b.latency).unwrap());
    for p in &pareto {
        println!(
            "{:<28} {:>8.4} {:>12.1}",
            format!("L={} {}", p.layers, p.mapping),
            p.ps,
            p.latency
        );
    }
    println!(
        "({} of {} designs are Pareto-optimal)",
        pareto.len(),
        points.len()
    );
    println!();

    // --- Constrained optimization: best worst-case design that still
    //     answers within a latency budget. ---
    let profiles = vec![
        AttackProfile::new(
            "flooder",
            AttackConfig::OneBurst {
                budget: AttackBudget::congestion_only(6_000),
            },
        ),
        AttackProfile::new(
            "intruder",
            AttackConfig::Successive {
                budget: AttackBudget::new(2_000, 1_000),
                params: SuccessiveParams::new(5, 0.2)?,
            },
        ),
    ];
    for max_latency in [None, Some(4.0)] {
        let label = match max_latency {
            None => "unconstrained".to_string(),
            Some(l) => format!("clean latency ≤ {l} hops"),
        };
        let ranked = Optimizer::new(system, DesignSpace::paper_grid(), profiles.clone())
            .objective(Objective::WorstCase)
            .constraints(Constraints {
                max_clean_latency: max_latency,
                min_ps_per_profile: None,
            })
            .run()?;
        println!("best designs ({label}):");
        for d in ranked.iter().take(3) {
            println!(
                "  {d}  [flooder {:.3}, intruder {:.3}]",
                d.per_profile[0], d.per_profile[1]
            );
        }
        println!();
    }
    Ok(())
}
