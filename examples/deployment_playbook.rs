//! End-to-end deployment playbook: lint → optimize → validate →
//! plan recovery.
//!
//! Walks the full decision path an operator would take with this
//! library when standing up an SOS deployment for a protected service:
//!
//! 1. **lint** the naive design (the original SOS) against the threat
//!    catalogue and see it rejected;
//! 2. **optimize** over the design grid under a latency budget;
//! 3. **validate** the winner with a Monte Carlo run to a target
//!    precision;
//! 4. **plan recovery**: how much repair capacity keeps the service
//!    above an availability floor while under sustained attack.
//!
//! ```text
//! cargo run --release --example deployment_playbook
//! ```

use sos::analysis::{
    has_critical, review, AttackProfile, Constraints, DesignSpace, Optimizer,
};
use sos::core::{
    AttackBudget, AttackConfig, MappingDegree, Scenario, SuccessiveParams, SystemParams,
    ThreatPreset,
};
use sos::sim::engine::{Simulation, SimulationConfig};
use sos::sim::repair::{AttackerPersistence, RepairConfig, RepairSimulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemParams::paper_default();
    let threats = ThreatPreset::ALL.to_vec();

    // Step 1: lint the naive design.
    println!("== step 1: lint the original SOS design ==");
    let naive = Scenario::builder()
        .system(system)
        .layers(3)
        .mapping(MappingDegree::OneToAll)
        .build()?;
    let advice = review(&naive, &threats)?;
    for item in advice.iter().take(4) {
        println!("  {item}");
    }
    assert!(has_critical(&advice));
    println!("  -> rejected; searching the design grid instead\n");

    // Step 2: optimize under a latency budget (≤ 5 hop-times clean).
    println!("== step 2: optimize (worst case over {} threats, latency <= 5) ==", threats.len());
    let profiles: Vec<AttackProfile> = threats
        .iter()
        .map(|t| AttackProfile::new(t.label(), t.attack(&system)))
        .collect();
    let ranked = Optimizer::new(system, DesignSpace::paper_grid(), profiles)
        .constraints(Constraints {
            max_clean_latency: Some(5.0),
            min_ps_per_profile: None,
        })
        .run()?;
    let winner = &ranked[0];
    println!("  winner: {winner}");
    let chosen = Scenario::builder()
        .system(system)
        .layers(winner.layers)
        .distribution(winner.distribution.clone())
        .mapping(winner.mapping.clone())
        .build()?;
    let re_lint = review(&chosen, &threats)?;
    println!(
        "  re-lint: {} findings, critical = {}\n",
        re_lint.len(),
        has_critical(&re_lint)
    );

    // Step 3: validate the closed-form score with Monte Carlo at a
    // 1/10-scale population (ground truth within ±0.02).
    println!("== step 3: validate by simulation (target half-width 0.02) ==");
    let small = Scenario::builder()
        .system(SystemParams::new(1_000, 100, 0.5)?)
        .layers(winner.layers)
        .distribution(winner.distribution.clone())
        .mapping(winner.mapping.clone())
        .build()?;
    // The paper-intelligent threat scaled with the population (1/10 of
    // each budget), so the validation exercises the same relative
    // pressure as the full-scale closed form.
    let attack = AttackConfig::Successive {
        budget: AttackBudget::new(20, 200),
        params: SuccessiveParams::paper_default(),
    };
    let sim = Simulation::new(
        SimulationConfig::new(small.clone(), attack)
            .trials(50)
            .routes_per_trial(100)
            .seed(9),
    );
    let (result, trials_used) = sim.run_until_precision(0.02, 800);
    let ci = result.confidence_interval(0.95);
    println!(
        "  simulated P_S = {:.3} [{:.3}, {:.3}] after {trials_used} trials",
        result.success_rate(),
        ci.lower,
        ci.upper
    );
    println!(
        "  closed-form on realized states: {:.3} (binomial)\n",
        result.realized_ps_binomial
    );

    // Step 4: recovery planning — smallest repair capacity that keeps
    // P_S above 0.8 within 10 steps against an adaptive attacker with
    // identity-rotating churn.
    println!("== step 4: plan repair capacity (target P_S >= 0.8 by t = 10) ==");
    for capacity in [5u64, 10, 20, 40] {
        let timeline = RepairSimulation::new(
            small.clone(),
            attack,
            RepairConfig::new(capacity, 10, AttackerPersistence::Adaptive)
                .with_churn(sos::overlay::ChurnModel::new(0.02, true)),
            25,
            80,
            11,
        )
        .run();
        let verdict = if timeline.final_ps() >= 0.8 { "OK" } else { "insufficient" };
        println!(
            "  repair capacity {capacity:>2}/step: P_S(10) = {:.3}  [{verdict}]",
            timeline.final_ps()
        );
        if timeline.final_ps() >= 0.8 {
            println!("\nplaybook complete: deploy {winner} with {capacity} repairs/step");
            return Ok(());
        }
    }
    println!("\nno tested capacity met the target; provision more repair or harden nodes");
    Ok(())
}
