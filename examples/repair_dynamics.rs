//! Dynamic repair under an on-going attack — the paper's named future
//! work (§5), simulated.
//!
//! After a successive attack lands, the operator repairs a fixed number
//! of compromised nodes per time step. Two attacker models bound the
//! outcome: a *stale* attacker loses track of repaired nodes (they get
//! fresh identities), an *adaptive* one re-congests every repaired node
//! it knows about.
//!
//! ```text
//! cargo run --release --example repair_dynamics
//! ```

use sos::core::{
    AttackBudget, AttackConfig, MappingDegree, Scenario, SuccessiveParams, SystemParams,
};
use sos::sim::repair::{AttackerPersistence, RepairConfig, RepairSimulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::builder()
        .system(SystemParams::new(1_000, 100, 0.5)?)
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .build()?;
    let attack = AttackConfig::Successive {
        budget: AttackBudget::new(100, 300),
        params: SuccessiveParams::paper_default(),
    };

    println!("P_S(t) with 15 repairs per step (40 trials each):");
    println!("{:>4} {:>12} {:>12}", "t", "stale", "adaptive");

    let run = |persistence| {
        RepairSimulation::new(
            scenario.clone(),
            attack,
            RepairConfig::new(15, 12, persistence),
            40,
            100,
            11,
        )
        .run()
    };
    let stale = run(AttackerPersistence::Stale);
    let adaptive = run(AttackerPersistence::Adaptive);

    for (s, a) in stale.steps.iter().zip(&adaptive.steps) {
        println!("{:>4} {:>12.4} {:>12.4}", s.step, s.ps, a.ps);
    }

    println!();
    println!(
        "stale attacker:    service recovers to P_S = {:.3} (bad nodes {:.1} -> {:.1})",
        stale.final_ps(),
        stale.steps.first().unwrap().bad_infrastructure,
        stale.steps.last().unwrap().bad_infrastructure,
    );
    println!(
        "adaptive attacker: recovery capped at P_S = {:.3} — repairs of *known* nodes are re-congested immediately",
        adaptive.final_ps()
    );
    Ok(())
}
