//! Quickstart: price the paper's default configuration under both
//! intelligent attack models.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sos::analysis::{OneBurstAnalysis, SuccessiveAnalysis};
use sos::core::{
    AttackBudget, MappingDegree, PathEvaluator, Scenario, SuccessiveParams, SystemParams,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's default system: N = 10000 overlay nodes hiding n = 100
    // SOS nodes, P_B = 0.5, 10 filters, 3 layers, even distribution.
    let scenario = Scenario::builder()
        .system(SystemParams::paper_default())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .build()?;

    println!("generalized SOS architecture");
    println!("  layers:        {:?}", scenario.topology().layer_sizes());
    println!("  filters:       {}", scenario.topology().filter_count());
    println!("  mapping m_i:   {:?}", scenario.topology().degrees());
    println!();

    // Attack 1: one burst of 200 break-in trials, then 2000 congestion
    // slots (§3.1).
    let budget = AttackBudget::new(200, 2_000);
    let one_burst = OneBurstAnalysis::new(&scenario, budget)?.run();
    println!("one-burst attack (N_T = 200, N_C = 2000)");
    println!(
        "  expected broken-in nodes:  {:.2}",
        one_burst.total_broken
    );
    println!(
        "  expected disclosed nodes:  {:.2}",
        one_burst.total_disclosed
    );
    println!(
        "  P_S (binomial):            {:.4}",
        one_burst.success_probability(PathEvaluator::Binomial)
    );
    println!(
        "  P_S (hypergeometric):      {:.4}",
        one_burst.success_probability(PathEvaluator::Hypergeometric)
    );
    println!();

    // Attack 2: the same resources spread over R = 3 rounds with 20%
    // prior knowledge of the first layer (§3.2) — strictly more
    // dangerous.
    let successive =
        SuccessiveAnalysis::new(&scenario, budget, SuccessiveParams::paper_default())?.run();
    println!("successive attack (R = 3, P_E = 0.2)");
    println!("  rounds executed:           {}", successive.rounds_executed());
    println!(
        "  expected broken-in nodes:  {:.2}",
        successive.total_broken
    );
    println!(
        "  expected disclosed nodes:  {:.2}",
        successive.total_disclosed
    );
    println!(
        "  filters disclosed:         {:.2}",
        successive.filters_disclosed
    );
    println!(
        "  P_S (binomial):            {:.4}",
        successive.success_probability(PathEvaluator::Binomial)
    );

    let loss = one_burst
        .success_probability(PathEvaluator::Binomial)
        .value()
        - successive
            .success_probability(PathEvaluator::Binomial)
            .value();
    println!();
    println!("intelligence premium (one-burst → successive): {loss:+.4} P_S");
    Ok(())
}
