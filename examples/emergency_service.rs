//! Design-space exploration for an emergency-response service.
//!
//! The paper's motivation: emergency and medical services need reliable
//! communication with a protected target while an intelligent attacker
//! holds both break-in and congestion resources. This example searches
//! the generalized design space (layer count × mapping degree × node
//! distribution) for the configuration that maximizes the *worst-case*
//! `P_S` over a set of anticipated attack profiles — exactly the kind of
//! deployment decision the paper argues the original fixed 3-layer,
//! one-to-all SOS cannot make.
//!
//! ```text
//! cargo run --example emergency_service
//! ```

use sos::analysis::SuccessiveAnalysis;
use sos::core::{
    AttackBudget, MappingDegree, NodeDistribution, PathEvaluator, Scenario,
    SuccessiveParams, SystemParams,
};

/// Attack profiles the service anticipates (budget, rounds, prior
/// knowledge): a botnet that floods, a patient intruder, and a balanced
/// adversary.
const PROFILES: [(&str, u64, u64, u32, f64); 3] = [
    ("flooder", 0, 6_000, 1, 0.0),
    ("intruder", 2_000, 1_000, 5, 0.2),
    ("balanced", 500, 3_000, 3, 0.1),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemParams::paper_default();
    let mut best: Option<(f64, String)> = None;

    println!("design-space sweep: worst-case P_S over {} attack profiles", PROFILES.len());
    println!("{:<42} {:>9} {:>9} {:>9} {:>10}", "design", "flooder", "intruder", "balanced", "worst");

    for layers in [1usize, 2, 3, 4, 5, 6] {
        for mapping in [
            MappingDegree::ONE_TO_ONE,
            MappingDegree::OneTo(2),
            MappingDegree::OneTo(5),
            MappingDegree::OneToHalf,
            MappingDegree::OneToAll,
        ] {
            for distribution in [
                NodeDistribution::Even,
                NodeDistribution::Increasing,
                NodeDistribution::Decreasing,
            ] {
                // Multi-layer distributions only differ for L >= 3.
                if layers < 3 && distribution != NodeDistribution::Even {
                    continue;
                }
                let scenario = Scenario::builder()
                    .system(system)
                    .layers(layers)
                    .distribution(distribution.clone())
                    .mapping(mapping.clone())
                    .build()?;
                let mut scores = Vec::new();
                for &(_, n_t, n_c, r, p_e) in &PROFILES {
                    let report = SuccessiveAnalysis::new(
                        &scenario,
                        AttackBudget::new(n_t, n_c),
                        SuccessiveParams::new(r, p_e)?,
                    )?
                    .run();
                    scores.push(
                        report
                            .success_probability(PathEvaluator::Binomial)
                            .value(),
                    );
                }
                let worst = scores.iter().cloned().fold(f64::INFINITY, f64::min);
                let label = format!("L={layers} {mapping} {distribution}");
                println!(
                    "{:<42} {:>9.4} {:>9.4} {:>9.4} {:>10.4}",
                    label, scores[0], scores[1], scores[2], worst
                );
                if best.as_ref().map(|(b, _)| worst > *b).unwrap_or(true) {
                    best = Some((worst, label));
                }
            }
        }
    }

    let (score, label) = best.expect("the grid is non-empty");
    println!();
    println!("recommended design: {label}  (worst-case P_S = {score:.4})");
    println!(
        "original SOS for comparison: L=3 one-to-all even — collapses under the intruder profile"
    );
    Ok(())
}
