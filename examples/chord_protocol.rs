//! Watch the Chord maintenance protocol converge, break and heal.
//!
//! The SOS architecture rides on Chord; this example builds a ring node
//! by node through the *protocol* (joins + periodic stabilize /
//! fix-fingers over the discrete-event engine), kills a quarter of the
//! members, and reports how the strict successor-pointer convergence
//! recovers tick by tick — the routing substrate's own resilience story
//! underneath the SOS layers.
//!
//! ```text
//! cargo run --example chord_protocol
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sos::overlay::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
use sos::overlay::NodeId;
use sos_des::Scheduler;

fn main() {
    let mut rng = StdRng::seed_from_u64(2001); // SIGCOMM '01
    let mut proto = ChordProtocol::new(ProtocolConfig::default());
    let mut sched = Scheduler::new();

    // Build a 100-node ring via protocol joins.
    let mut ids: Vec<u64> = Vec::new();
    for i in 0..100u32 {
        let mut id = rng.gen::<u64>();
        while ids.contains(&id) {
            id = rng.gen::<u64>();
        }
        ids.push(id);
        if i == 0 {
            proto.bootstrap(id, NodeId(i), &mut sched);
        } else {
            let via = ids[rng.gen_range(0..i as usize)];
            proto.join(id, NodeId(i), via, &mut sched);
            let now = sched.now();
            run_maintenance(&mut proto, &mut sched, now + 30);
        }
    }
    let now = sched.now();
    run_maintenance(&mut proto, &mut sched, now + 2_000);
    println!(
        "ring built: {} nodes, converged = {}, {} maintenance lookups so far",
        proto.alive_count(),
        proto.is_converged(),
        proto.lookups_issued()
    );

    // Verify lookups against the oracle.
    let mut correct = 0;
    for _ in 0..500 {
        let key = rng.gen::<u64>();
        let from = ids[rng.gen_range(0..ids.len())];
        if proto.lookup(from, key) == proto.oracle_successor(key) {
            correct += 1;
        }
    }
    println!("lookup correctness on the converged ring: {correct}/500");

    // Kill 25% of the ring and watch the repair.
    for &id in ids.iter().take(25) {
        proto.kill(id);
    }
    println!(
        "\nkilled 25 nodes; strict convergence now {:.2}",
        proto.convergence_fraction()
    );
    println!("{:>6} {:>12} {:>14}", "t", "converged", "lookup-ok/100");
    let start = sched.now();
    for step in 1..=10u64 {
        run_maintenance(&mut proto, &mut sched, start + step * 30);
        let mut ok = 0;
        for _ in 0..100 {
            let key = rng.gen::<u64>();
            let from = *ids[25..].get(rng.gen_range(0..75usize)).unwrap();
            if proto.lookup(from, key) == proto.oracle_successor(key) {
                ok += 1;
            }
        }
        println!(
            "{:>6} {:>12.2} {:>14}",
            step * 30,
            proto.convergence_fraction(),
            ok
        );
    }
    println!(
        "\nring healed: converged = {}, survivors = {}",
        proto.is_converged(),
        proto.alive_count()
    );
}
