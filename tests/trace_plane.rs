//! Cross-crate properties of the request-tracing plane and the
//! Prometheus exposition.
//!
//! Tracing mirrors telemetry's contract: it observes but never steers.
//! Spans read the monotonic clock and a process-global id counter —
//! never the deterministic simulation RNG streams — so every entry
//! point must produce the same results with tracing on or off, at
//! every thread count. The guarantee is structural; these proptests
//! pin it against regression (same contract and thresholds as
//! `tests/telemetry.rs`).
//!
//! The exposition conformance test checks the daemon's `/metrics`
//! payload against the Prometheus text-format rules: every sample
//! belongs to a family with `# HELP` and `# TYPE` comments, metric
//! names match `[a-z_][a-z0-9_]*`, no series is emitted twice, and
//! every value parses as a float.

use proptest::prelude::*;
use sos::core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
use sos::sim::engine::{Simulation, SimulationConfig, SimulationResult, TransportKind};
use sos::sim::routing::RoutingPolicy;
use sos::sim::SweepExecutor;
use sos_observe::telemetry;
use sos_observe::trace;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// The enable flag is process-global; tests in this binary serialize
/// on it so one test's `set_enabled(false)` cannot race another's
/// instrumented run.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn scenario() -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(600, 50, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(10)
        .build()
        .unwrap()
}

/// Strategy: one small sweep point (kept tiny — every case runs the
/// full Monte Carlo twice at four thread counts).
fn point_strategy() -> impl Strategy<Value = SimulationConfig> {
    (
        0u64..120,  // congestion budget
        0u64..30,   // break-in budget
        1u64..6,    // trials
        0u64..1000, // seed
        prop_oneof![
            Just(RoutingPolicy::RandomGood),
            Just(RoutingPolicy::FirstGood),
            Just(RoutingPolicy::Backtracking),
        ],
        prop_oneof![Just(TransportKind::Direct), Just(TransportKind::Chord)],
    )
        .prop_map(|(n_c, n_t, trials, seed, policy, transport)| {
            SimulationConfig::new(
                scenario(),
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(n_t, n_c),
                },
            )
            .policy(policy)
            .transport(transport)
            .trials(trials)
            .routes_per_trial(10)
            .seed(seed)
        })
}

/// Byte-level equality on everything integer, merge-order slack on
/// float aggregates — the engine's own determinism contract (see
/// `tests/telemetry.rs` and `tests/sweep_executor.rs`).
fn assert_identical(
    off: &SimulationResult,
    on: &SimulationResult,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(off.successes, on.successes, "successes diverged: {}", ctx);
    prop_assert_eq!(off.attempts, on.attempts, "attempts diverged: {}", ctx);
    prop_assert_eq!(&off.failure_depths, &on.failure_depths, "depths diverged: {}", ctx);
    prop_assert_eq!(off.per_trial.count, on.per_trial.count, "trial count diverged: {}", ctx);
    prop_assert!((off.per_trial.mean - on.per_trial.mean).abs() < 1e-12, "{}", ctx);
    prop_assert!((off.mean_underlay_hops - on.mean_underlay_hops).abs() < 1e-12, "{}", ctx);
    prop_assert!((off.realized_ps_binomial - on.realized_ps_binomial).abs() < 1e-12, "{}", ctx);
    prop_assert!(
        (off.realized_ps_hypergeometric - on.realized_ps_hypergeometric).abs() < 1e-12,
        "{}", ctx
    );
    Ok(())
}

/// Runs `f` with the tracing plane live, then restores the disabled
/// state.
fn with_trace<T>(f: impl FnOnce() -> T) -> T {
    trace::set_enabled(true);
    let out = f();
    trace::set_enabled(false);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `run_parallel` with tracing on is byte-identical to tracing off
    /// at every thread count.
    #[test]
    fn run_parallel_is_bit_identical_with_tracing_on(cfg in point_strategy()) {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for threads in [1usize, 2, 4, 8] {
            trace::set_enabled(false);
            let off = Simulation::new(cfg.clone()).run_parallel(threads);
            let on = with_trace(|| Simulation::new(cfg.clone()).run_parallel(threads));
            assert_identical(&off, &on, &format!("run_parallel at {threads} threads"))?;
        }
    }

    /// A sweep through the executor with tracing on is byte-identical
    /// to tracing off at every thread count.
    #[test]
    fn run_sweep_is_bit_identical_with_tracing_on(
        configs in proptest::collection::vec(point_strategy(), 1..4),
    ) {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for threads in [1usize, 2, 4, 8] {
            trace::set_enabled(false);
            let off = SweepExecutor::with_threads(threads).run(&configs);
            let on = with_trace(|| SweepExecutor::with_threads(threads).run(&configs));
            for (point, (off, on)) in off.iter().zip(&on).enumerate() {
                assert_identical(off, on, &format!("sweep point {point} at {threads} threads"))?;
            }
        }
    }
}

/// The tracing plane is actually live during the identical runs above:
/// an instrumented sweep lands executor and pool spans in the flight
/// recorder.
#[test]
fn trace_plane_records_spans_during_instrumented_sweep() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SimulationConfig::new(
        scenario(),
        AttackConfig::OneBurst {
            budget: AttackBudget::new(10, 60),
        },
    )
    .trials(4)
    .routes_per_trial(10)
    .seed(7);
    trace::recorder().clear();
    with_trace(|| SweepExecutor::with_threads(2).run(&[cfg]));
    assert!(trace::recorder().recorded() > 0, "no spans recorded");
    let spans = trace::recorder().recent(usize::MAX);
    for name in ["cache-probe", "sweep-point", "pool-batch"] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "missing {name} span among {:?}",
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }
}

/// A metric name the Prometheus text format accepts (the exposition
/// sticks to the lowercase subset: `[a-z_][a-z0-9_]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// The `/metrics` payload conforms to the Prometheus text format:
/// every sample's family has `# HELP` and `# TYPE`, names are valid,
/// no duplicate series, every value parses as a float — including the
/// per-op request counters and the slow-request counter this plane
/// added.
#[test]
fn exposition_conforms_to_prometheus_text_format() {
    let text = telemetry::snapshot().to_exposition();
    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut seen: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            assert!(valid_metric_name(name), "invalid HELP name {name:?}");
            helped.insert(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped"),
                "unknown TYPE {kind:?} for {name}"
            );
            typed.insert(name.to_string(), kind.to_string());
        } else {
            assert!(!line.starts_with('#'), "unknown comment line {line:?}");
            let mut parts = line.split_whitespace();
            let sample = parts.next().expect("sample name");
            let value = parts.next().unwrap_or_else(|| panic!("sample without value: {line}"));
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("unparsable value {value:?} in {line}"));
            let (name, labels) = match sample.split_once('{') {
                Some((n, rest)) => (n, format!("{{{rest}")),
                None => (sample, String::new()),
            };
            assert!(valid_metric_name(name), "invalid metric name {name:?}");
            // Summary and histogram families declare HELP/TYPE on the
            // base name; their samples carry `_sum`/`_count`/`_bucket`
            // suffixes.
            let family = if typed.contains_key(name) {
                name
            } else {
                let base = name
                    .strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"))
                    .or_else(|| name.strip_suffix("_bucket"))
                    .unwrap_or(name);
                assert!(
                    matches!(
                        typed.get(base).map(String::as_str),
                        Some("summary") | Some("histogram")
                    ),
                    "sample {name} has no # TYPE (and no summary/histogram family)"
                );
                base
            };
            assert!(helped.contains(family), "sample {name} has no # HELP");
            let series = format!("{name}{labels}");
            assert!(seen.insert(series.clone()), "duplicate series {series}");
        }
    }
    assert!(!seen.is_empty(), "exposition is empty");
    for name in ["sos_serve_requests_total", "sos_serve_slow_requests_total"] {
        assert!(
            helped.contains(name) && typed.contains_key(name),
            "missing serve series {name}"
        );
    }
}
