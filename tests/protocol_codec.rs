//! Edge-case properties of the `sosd` frame codec: arbitrary payloads
//! round-trip, a frame truncated at *any* byte offset is a clean EOF
//! (boundary) or `UnexpectedEof` (mid-frame) — never a garbled decode;
//! the 16 MiB limit is exact on both sides; and the `"GET "` HTTP
//! sniff can never alias a legal length prefix.

use proptest::prelude::*;
use sos_serve::protocol::{self, HTTP_GET_PREFIX, MAX_FRAME_LEN};
use std::io::{self, Cursor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any payload (arbitrary bytes, any length up to a few frames'
    /// worth) round-trips bit-exactly, and consecutive frames on one
    /// stream stay delimited.
    #[test]
    fn arbitrary_payloads_round_trip(
        first in proptest::collection::vec(0u8..=255, 0usize..2048),
        second in proptest::collection::vec(0u8..=255, 0usize..512),
    ) {
        let mut buf = Vec::new();
        protocol::write_frame(&mut buf, &first).expect("write first");
        protocol::write_frame(&mut buf, &second).expect("write second");
        let mut cursor = Cursor::new(buf);
        prop_assert_eq!(protocol::read_frame(&mut cursor).unwrap().unwrap(), first);
        prop_assert_eq!(protocol::read_frame(&mut cursor).unwrap().unwrap(), second);
        prop_assert!(protocol::read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    /// A single frame cut at any byte offset decodes to exactly one of
    /// three outcomes — clean EOF at offset 0, `UnexpectedEof` anywhere
    /// mid-frame, the exact payload at full length. No fourth outcome
    /// (a short or corrupted payload) is possible.
    #[test]
    fn truncation_at_any_offset_is_detected(
        payload in proptest::collection::vec(0u8..=255, 1usize..512),
        frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        protocol::write_frame(&mut buf, &payload).expect("write");
        let cut = (frac * buf.len() as f64) as usize;
        let mut cursor = Cursor::new(&buf[..cut]);
        match protocol::read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at the frame boundary"),
            Ok(Some(got)) => {
                prop_assert_eq!(cut, buf.len(), "full decode only from the full frame");
                prop_assert_eq!(got, payload);
            }
            Err(e) => {
                prop_assert!(cut > 0 && cut < buf.len(), "error only mid-frame (cut {})", cut);
                prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
            }
        }
    }

    /// JSON values survive the value-level codec (`write_value` /
    /// `read_value`) byte-for-byte at the serialization level.
    #[test]
    fn json_values_round_trip(
        n in i64::MIN..i64::MAX,
        s in proptest::collection::vec(0u8..64, 0usize..64).prop_map(|picks| {
            const CHARSET: &[u8; 64] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _";
            picks.into_iter().map(|p| CHARSET[p as usize] as char).collect::<String>()
        }),
    ) {
        let text = format!("{{\"num\":{n},\"text\":{:?},\"nested\":[1,2,{{\"k\":null}}]}}", s);
        let value: serde_json::Value = serde_json::from_str(&text).expect("fixture JSON");
        let mut buf = Vec::new();
        protocol::write_value(&mut buf, &value).expect("write");
        let mut cursor = Cursor::new(buf);
        let back = protocol::read_value(&mut cursor).unwrap().unwrap();
        prop_assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&value).unwrap()
        );
    }
}

#[test]
fn frame_limit_is_exact_on_both_sides() {
    // Exactly at the limit: accepted by writer and reader.
    let max = vec![0x5Au8; MAX_FRAME_LEN];
    let mut buf = Vec::new();
    protocol::write_frame(&mut buf, &max).expect("a frame of exactly MAX_FRAME_LEN is legal");
    let mut cursor = Cursor::new(buf);
    let got = protocol::read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(got.len(), MAX_FRAME_LEN);
    assert!(got == max, "boundary frame must round-trip bit-exactly");

    // One byte over: rejected by the writer...
    let over = vec![0u8; MAX_FRAME_LEN + 1];
    let err = protocol::write_frame(&mut Vec::new(), &over).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

    // ...and by the reader, from the length prefix alone (no payload
    // allocation for a frame that can never be legal).
    let mut prefix_only = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
    prefix_only.extend_from_slice(&[0u8; 8]);
    let mut cursor = Cursor::new(prefix_only);
    let err = protocol::read_frame(&mut cursor).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

#[test]
fn http_sniff_prefix_cannot_alias_a_legal_frame() {
    // "GET " as a big-endian length is ~1.19 GiB — far beyond the
    // frame limit, so the protocol grammar and the HTTP grammar are
    // disjoint at the first four bytes.
    let as_len = u32::from_be_bytes(HTTP_GET_PREFIX) as usize;
    assert!(
        as_len > MAX_FRAME_LEN,
        "sniff prefix decodes to {as_len}, which must exceed {MAX_FRAME_LEN}"
    );
    assert!(protocol::frame_len(HTTP_GET_PREFIX).is_err());

    // Every legal length, including both boundaries, is accepted.
    assert_eq!(protocol::frame_len([0, 0, 0, 0]).unwrap(), 0);
    assert_eq!(
        protocol::frame_len((MAX_FRAME_LEN as u32).to_be_bytes()).unwrap(),
        MAX_FRAME_LEN
    );
}
