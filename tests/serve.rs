//! End-to-end tests for the resident `sosd` service (`sos-serve`):
//! daemon answers over the wire protocol, results are byte-identical
//! to direct executor runs, repeats are served from the warm cache,
//! the same port speaks HTTP for `/metrics` + `/healthz` +
//! `/debug/trace`, every response carries a `request_id`/`timing`/
//! `served_from` envelope, protocol errors carry stable codes, and
//! shutdown drains cleanly.
//!
//! Global-counter caveat: these tests share one process, so telemetry
//! counters (per-op requests, cache hits) and the flight recorder are
//! cross-contaminated between concurrently-running daemons —
//! assertions on them are monotone (`>=`), while executor-local facts
//! (`served_from`, stats deltas) are exact.

use serde_json::Value;
use sos_serve::{protocol, Client, ClientError, Server, ServerHandle, ServerOptions, SimSpec};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};

fn small_spec(seed: u64) -> SimSpec {
    SimSpec {
        overlay_nodes: 400,
        sos_nodes: 40,
        nt: 10,
        nc: 40,
        trials: 3,
        routes: 10,
        seed,
        ..SimSpec::default()
    }
}

fn start(opts: ServerOptions) -> (SocketAddr, ServerHandle) {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, server.spawn())
}

fn compact(value: &Value) -> String {
    serde_json::to_string(value).expect("serialize")
}

#[test]
fn ping_and_analyze_match_direct_evaluation() {
    let (addr, handle) = start(ServerOptions::default());
    let mut client = Client::connect(addr).expect("connect");

    let pong = client.ping().expect("ping");
    assert_eq!(pong["server"].as_str(), Some("sosd"));
    assert_eq!(pong["protocol"].as_u64(), Some(1));

    // The daemon's analyze document is exactly what direct in-process
    // evaluation of the same spec produces.
    let spec = SimSpec {
        layers: 4,
        ..SimSpec::default()
    };
    let mut served = client.analyze(&spec).expect("analyze");
    // Strip the per-request envelope (request_id, timing): the
    // payload underneath must be byte-identical to direct evaluation.
    if let Value::Map(entries) = &mut served {
        entries.retain(|(k, _)| k != "request_id" && k != "timing");
    }
    let scenario = spec.scenario().expect("scenario");
    let attack = spec.attack().expect("attack");
    let evaluator = spec.evaluator().expect("evaluator");
    let outcome = sos_serve::analyze_outcome(&scenario, &attack, evaluator).expect("outcome");
    let direct = sos_serve::analyze_doc(&scenario, &attack, evaluator, &outcome);
    assert_eq!(compact(&served), compact(&direct));

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    assert!(report.requests >= 3, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
}

#[test]
fn single_thread_simulate_is_byte_identical_and_cached_on_repeat() {
    // One worker thread → the cold execution is deterministic, so the
    // served result must match a direct single-threaded run byte for
    // byte (the repeat must match verbatim regardless: it is answered
    // from the result memory).
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let spec = small_spec(7);
    let config = spec.sim_config().expect("config");

    let cold = client.simulate(&spec).expect("cold simulate");
    assert_eq!(cold["cached"], Value::Bool(false));
    assert_eq!(
        cold["fingerprint"].as_str(),
        Some(format!("{:016x}", sos_sim::config_fingerprint(&config)).as_str())
    );
    let direct = sos_sim::SweepExecutor::with_threads(1).run_one(&config);
    assert_eq!(compact(&cold["result"]), compact(&serde_json::to_value(&direct)));

    let warm = client.simulate(&spec).expect("warm simulate");
    assert_eq!(warm["cached"], Value::Bool(true));
    assert_eq!(compact(&cold["result"]), compact(&warm["result"]));

    // The sweep op answers the same point from cache too and says so
    // in its stats.
    let sweep = client.sweep(&[spec.clone(), small_spec(8)]).expect("sweep");
    let results = sweep["results"].as_array().expect("results");
    assert_eq!(results.len(), 2);
    assert_eq!(compact(&results[0]["result"]), compact(&cold["result"]));
    assert!(sweep["stats"]["cache_hits"].as_u64().expect("stats") >= 1);

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn concurrent_clients_share_the_warm_cache() {
    let cache = std::env::temp_dir().join(format!(
        "sos-serve-test-concurrent-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);

    // Pre-warm the cache file with direct single-threaded runs; the
    // daemon then starts warm and every concurrent client must get the
    // stored bytes back verbatim.
    let specs: Vec<SimSpec> = (0..4).map(|i| small_spec(100 + i)).collect();
    let mut exec = sos_sim::SweepExecutor::with_threads(1);
    exec.attach_cache(&cache).expect("attach cache");
    let direct: Vec<String> = specs
        .iter()
        .map(|s| compact(&serde_json::to_value(&exec.run_one(&s.sim_config().expect("config")))))
        .collect();
    drop(exec);

    let (addr, handle) = start(ServerOptions {
        threads: Some(2),
        cache: Some(cache.clone()),
        ..ServerOptions::default()
    });
    let workers: Vec<_> = specs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, spec)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let body = client.simulate(&spec).expect("simulate");
                (
                    i,
                    compact(&body["result"]),
                    body["cached"] == Value::Bool(true),
                )
            })
        })
        .collect();
    for worker in workers {
        let (i, result, cached) = worker.join().expect("client thread");
        assert!(cached, "point {i} should be a warm cache hit");
        assert_eq!(result, direct[i], "point {i} bytes differ");
    }

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let report = handle.join().expect("join");
    assert!(report.connections >= 5, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    let _ = std::fs::remove_file(&cache);
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: sosd\r\n\r\n").expect("write");
    let mut body = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut body).expect("read");
    String::from_utf8(body).expect("utf8 response")
}

#[test]
fn http_metrics_and_healthz_share_the_protocol_port() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });

    // Run one simulate first so the phase/worker series have samples.
    Client::connect(addr)
        .expect("connect")
        .simulate(&small_spec(17))
        .expect("simulate");

    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4"),
        "{metrics}"
    );
    for series in [
        "sos_trials_total",
        "sos_routes_total",
        "sos_sweep_points_done",
        "sos_worker_trials_total",
        "sos_phase_seconds_total{phase=\"build\"}",
        "sos_phase_ns{phase=\"routing\",quantile=\"0.95\"}",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    let body = health.split("\r\n\r\n").nth(1).expect("health body");
    let doc: Value = serde_json::from_str(body).expect("health JSON parses");
    assert_eq!(doc["status"].as_str(), Some("ok"));
    assert!(doc["requests"].as_u64().expect("requests") >= 1);
    assert_eq!(doc["in_flight"].as_u64(), Some(0));
    assert_eq!(doc["queue_depth"].as_u64(), Some(16));
    assert_eq!(
        doc["last_persist_age_s"],
        Value::Null,
        "no cache attached, so never persisted"
    );
    assert_eq!(doc["sweep"]["points"].as_u64(), Some(1));
    assert!(doc["telemetry"]["trials"].as_u64().is_some());
    assert!(doc["telemetry"]["serve_shed"].as_u64().is_some());

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let report = handle.join().expect("join");
    assert!(report.http_requests >= 3, "{report:?}");
}

#[test]
fn responses_carry_request_id_timing_and_served_from() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let spec = small_spec(907);
    let cold_started = std::time::Instant::now();
    let cold = client.simulate(&spec).expect("cold simulate");
    let cold_rtt_ns = u64::try_from(cold_started.elapsed().as_nanos()).unwrap();
    let warm = client.simulate(&spec).expect("warm simulate");

    // served_from reflects the executor's own stats deltas: a cold
    // point is computed, its repeat is answered from the memo.
    assert_eq!(cold["served_from"].as_str(), Some("computed"));
    assert_eq!(warm["served_from"].as_str(), Some("cache"));

    // Request ids are monotonic per daemon and echoed per response.
    let cold_id = cold["request_id"].as_u64().expect("cold request_id");
    let warm_id = warm["request_id"].as_u64().expect("warm request_id");
    assert!(warm_id > cold_id, "ids must increase: {cold_id} then {warm_id}");

    // The timing doc is a complete breakdown, and the server's total
    // is bounded by what this client observed around the call.
    for body in [&cold, &warm] {
        for key in [
            "total_ns",
            "queue_ns",
            "lock_ns",
            "build_ns",
            "break_in_ns",
            "congestion_ns",
            "routing_ns",
            "trials",
            "cache_hits",
            "builds_reused",
        ] {
            assert!(
                body["timing"][key].as_u64().is_some(),
                "missing timing key {key}: {body:?}"
            );
        }
    }
    let cold_total = cold["timing"]["total_ns"].as_u64().expect("total_ns");
    assert!(cold_total > 0, "a computed request takes measurable time");
    assert!(
        cold_total <= cold_rtt_ns,
        "server-attributed time ({cold_total} ns) cannot exceed the \
         client-observed RTT ({cold_rtt_ns} ns)"
    );
    assert!(
        cold["timing"]["trials"].as_u64().expect("trials") >= 3,
        "the cold request executed the spec's trials"
    );

    // Sweep classification: all-warm → cache, warm+cold mix → partial.
    let mixed = client
        .sweep(&[spec.clone(), small_spec(908)])
        .expect("mixed sweep");
    assert_eq!(mixed["served_from"].as_str(), Some("partial"));
    let all_warm = client.sweep(std::slice::from_ref(&spec)).expect("warm sweep");
    assert_eq!(all_warm["served_from"].as_str(), Some("cache"));
    let all_cold = client.sweep(&[small_spec(909)]).expect("cold sweep");
    assert_eq!(all_cold["served_from"].as_str(), Some("computed"));

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn trace_op_and_debug_trace_serve_chrome_trace_json() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    // One cold simulate populates the flight recorder with a request
    // root span plus executor child spans.
    client.simulate(&small_spec(611)).expect("simulate");

    let body = client.trace().expect("trace op");
    assert!(body["spans"].as_u64().expect("spans") >= 1);
    assert!(body["recorded"].as_u64().expect("recorded") >= 1);
    let events = body["trace"]["traceEvents"].as_array().expect("traceEvents");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e["name"].as_str())
        .collect();
    assert!(
        names.contains(&"request:simulate"),
        "missing request root span in {names:?}"
    );
    assert!(
        names.contains(&"cache-probe"),
        "missing cache-probe span in {names:?}"
    );

    // The HTTP endpoint serves the same document shape.
    let http = http_get(addr, "/debug/trace");
    assert!(http.starts_with("HTTP/1.1 200 OK"), "{http}");
    let doc_body = http.split("\r\n\r\n").nth(1).expect("trace body");
    let doc: Value = serde_json::from_str(doc_body).expect("Chrome trace JSON parses");
    assert_eq!(doc["displayTimeUnit"].as_str(), Some("ms"));
    assert!(!doc["traceEvents"].as_array().expect("array").is_empty());

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn healthz_reports_per_op_counters_and_slow_requests() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        // Threshold 0: every request counts as slow, so the counter
        // and the log line provably fire.
        slow_ms: Some(0),
        slow_log: Some(std::env::temp_dir().join(format!(
            "sos-serve-test-slowlog-{}.jsonl",
            std::process::id()
        ))),
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    client.simulate(&small_spec(713)).expect("simulate");

    let health = http_get(addr, "/healthz");
    let body = health.split("\r\n\r\n").nth(1).expect("health body");
    let doc: Value = serde_json::from_str(body).expect("health JSON parses");
    // Counters are process-global (shared with concurrent tests), so
    // assert presence and monotone floors only.
    for op in ["ping", "analyze", "simulate", "sweep", "profile", "shutdown", "trace"] {
        assert!(
            doc["requests_by_op"][op].as_u64().is_some(),
            "missing per-op counter {op}: {doc:?}"
        );
    }
    assert!(doc["requests_by_op"]["ping"].as_u64().expect("ping count") >= 1);
    assert!(doc["requests_by_op"]["simulate"].as_u64().expect("simulate count") >= 1);
    assert!(doc["slow_requests_total"].as_u64().expect("slow total") >= 2);

    // The slow log got structured JSONL lines for both requests.
    let log_path = std::env::temp_dir().join(format!(
        "sos-serve-test-slowlog-{}.jsonl",
        std::process::id()
    ));
    let log = std::fs::read_to_string(&log_path).expect("slow log exists");
    let slow_lines: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"slow_request\""))
        .collect();
    assert!(slow_lines.len() >= 2, "expected slow lines, got:\n{log}");
    for line in slow_lines {
        let parsed: Value = serde_json::from_str(line).expect("slow line parses");
        assert!(parsed["slow_request"]["request_id"].as_u64().is_some());
        assert!(parsed["slow_request"]["timing"]["total_ns"].as_u64().is_some());
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
    let _ = std::fs::remove_file(&log_path);
}

/// Sends one raw frame and reads the error response's code.
fn error_code_for(addr: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    protocol::write_frame(&mut stream, payload).expect("write frame");
    let reply = protocol::read_value(&mut stream)
        .expect("read reply")
        .expect("reply frame");
    assert_eq!(reply["ok"], Value::Bool(false), "{reply:?}");
    reply["error"]["code"].as_str().expect("code").to_string()
}

#[test]
fn protocol_errors_carry_stable_codes() {
    let (addr, handle) = start(ServerOptions::default());

    assert_eq!(error_code_for(addr, b"{not json"), "bad-json");
    assert_eq!(
        error_code_for(addr, br#"{"v":2,"op":"ping"}"#),
        "bad-version"
    );
    assert_eq!(
        error_code_for(addr, br#"{"v":1,"op":"dance"}"#),
        "unknown-op"
    );
    assert_eq!(
        error_code_for(addr, br#"{"v":1,"op":"simulate","spec":{"trials":0}}"#),
        "bad-spec"
    );

    // An oversized length prefix is answered with bad-frame, then the
    // connection is closed without reading the body.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&(u32::try_from(protocol::MAX_FRAME_LEN + 1).unwrap()).to_be_bytes())
        .expect("write prefix");
    let reply = protocol::read_value(&mut stream)
        .expect("read reply")
        .expect("reply frame");
    assert_eq!(reply["error"]["code"].as_str(), Some("bad-frame"));
    assert!(protocol::read_value(&mut stream)
        .expect("closed cleanly")
        .is_none());

    // A typed client surfaces remote errors as ClientError::Remote.
    let mut client = Client::connect(addr).expect("connect");
    let bad = SimSpec {
        mapping: "one-to-zero".into(),
        ..small_spec(1)
    };
    match client.simulate(&bad) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code.as_str(), "bad-spec"),
        other => panic!("expected a remote bad-spec error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    assert!(report.errors >= 5, "{report:?}");
}

#[test]
fn shutdown_drains_persists_and_releases_the_port() {
    let cache = std::env::temp_dir().join(format!(
        "sos-serve-test-shutdown-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);

    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: Some(cache.clone()),
        ..ServerOptions::default()
    });
    let spec = small_spec(55);
    let config = spec.sim_config().expect("config");
    let served = {
        let mut client = Client::connect(addr).expect("connect");
        let body = client.simulate(&spec).expect("simulate");
        client.shutdown().expect("shutdown");
        compact(&body["result"])
    };
    let report = handle.join().expect("join");
    assert!(report.cached_points >= 1, "{report:?}");

    // The persisted cache warm-starts a fresh executor: the same point
    // is answered without executing, with the served bytes.
    let mut exec = sos_sim::SweepExecutor::with_threads(1);
    let loaded = exec.attach_cache(&cache).expect("attach persisted cache");
    assert!(loaded >= 1, "cache file should hold the executed point");
    let executed_before = exec.stats().points_executed;
    let replayed = exec.run_one(&config);
    assert_eq!(exec.stats().points_executed, executed_before);
    assert_eq!(compact(&serde_json::to_value(&replayed)), served);

    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
    let _ = std::fs::remove_file(&cache);
}
