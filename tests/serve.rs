//! End-to-end tests for the resident `sosd` service (`sos-serve`):
//! daemon answers over the wire protocol, results are byte-identical
//! to direct executor runs, repeats are served from the warm cache,
//! the same port speaks HTTP for `/metrics` + `/healthz`, protocol
//! errors carry stable codes, and shutdown drains cleanly.

use serde_json::Value;
use sos_serve::{protocol, Client, ClientError, Server, ServerHandle, ServerOptions, SimSpec};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};

fn small_spec(seed: u64) -> SimSpec {
    SimSpec {
        overlay_nodes: 400,
        sos_nodes: 40,
        nt: 10,
        nc: 40,
        trials: 3,
        routes: 10,
        seed,
        ..SimSpec::default()
    }
}

fn start(opts: ServerOptions) -> (SocketAddr, ServerHandle) {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, server.spawn())
}

fn compact(value: &Value) -> String {
    serde_json::to_string(value).expect("serialize")
}

#[test]
fn ping_and_analyze_match_direct_evaluation() {
    let (addr, handle) = start(ServerOptions::default());
    let mut client = Client::connect(addr).expect("connect");

    let pong = client.ping().expect("ping");
    assert_eq!(pong["server"].as_str(), Some("sosd"));
    assert_eq!(pong["protocol"].as_u64(), Some(1));

    // The daemon's analyze document is exactly what direct in-process
    // evaluation of the same spec produces.
    let spec = SimSpec {
        layers: 4,
        ..SimSpec::default()
    };
    let served = client.analyze(&spec).expect("analyze");
    let scenario = spec.scenario().expect("scenario");
    let attack = spec.attack().expect("attack");
    let evaluator = spec.evaluator().expect("evaluator");
    let outcome = sos_serve::analyze_outcome(&scenario, &attack, evaluator).expect("outcome");
    let direct = sos_serve::analyze_doc(&scenario, &attack, evaluator, &outcome);
    assert_eq!(compact(&served), compact(&direct));

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    assert!(report.requests >= 3, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
}

#[test]
fn single_thread_simulate_is_byte_identical_and_cached_on_repeat() {
    // One worker thread → the cold execution is deterministic, so the
    // served result must match a direct single-threaded run byte for
    // byte (the repeat must match verbatim regardless: it is answered
    // from the result memory).
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let spec = small_spec(7);
    let config = spec.sim_config().expect("config");

    let cold = client.simulate(&spec).expect("cold simulate");
    assert_eq!(cold["cached"], Value::Bool(false));
    assert_eq!(
        cold["fingerprint"].as_str(),
        Some(format!("{:016x}", sos_sim::config_fingerprint(&config)).as_str())
    );
    let direct = sos_sim::SweepExecutor::with_threads(1).run_one(&config);
    assert_eq!(compact(&cold["result"]), compact(&serde_json::to_value(&direct)));

    let warm = client.simulate(&spec).expect("warm simulate");
    assert_eq!(warm["cached"], Value::Bool(true));
    assert_eq!(compact(&cold["result"]), compact(&warm["result"]));

    // The sweep op answers the same point from cache too and says so
    // in its stats.
    let sweep = client.sweep(&[spec.clone(), small_spec(8)]).expect("sweep");
    let results = sweep["results"].as_array().expect("results");
    assert_eq!(results.len(), 2);
    assert_eq!(compact(&results[0]["result"]), compact(&cold["result"]));
    assert!(sweep["stats"]["cache_hits"].as_u64().expect("stats") >= 1);

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn concurrent_clients_share_the_warm_cache() {
    let cache = std::env::temp_dir().join(format!(
        "sos-serve-test-concurrent-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);

    // Pre-warm the cache file with direct single-threaded runs; the
    // daemon then starts warm and every concurrent client must get the
    // stored bytes back verbatim.
    let specs: Vec<SimSpec> = (0..4).map(|i| small_spec(100 + i)).collect();
    let mut exec = sos_sim::SweepExecutor::with_threads(1);
    exec.attach_cache(&cache).expect("attach cache");
    let direct: Vec<String> = specs
        .iter()
        .map(|s| compact(&serde_json::to_value(&exec.run_one(&s.sim_config().expect("config")))))
        .collect();
    drop(exec);

    let (addr, handle) = start(ServerOptions {
        threads: Some(2),
        cache: Some(cache.clone()),
        ..ServerOptions::default()
    });
    let workers: Vec<_> = specs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, spec)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let body = client.simulate(&spec).expect("simulate");
                (
                    i,
                    compact(&body["result"]),
                    body["cached"] == Value::Bool(true),
                )
            })
        })
        .collect();
    for worker in workers {
        let (i, result, cached) = worker.join().expect("client thread");
        assert!(cached, "point {i} should be a warm cache hit");
        assert_eq!(result, direct[i], "point {i} bytes differ");
    }

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let report = handle.join().expect("join");
    assert!(report.connections >= 5, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    let _ = std::fs::remove_file(&cache);
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: sosd\r\n\r\n").expect("write");
    let mut body = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut body).expect("read");
    String::from_utf8(body).expect("utf8 response")
}

#[test]
fn http_metrics_and_healthz_share_the_protocol_port() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });

    // Run one simulate first so the phase/worker series have samples.
    Client::connect(addr)
        .expect("connect")
        .simulate(&small_spec(17))
        .expect("simulate");

    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4"),
        "{metrics}"
    );
    for series in [
        "sos_trials_total",
        "sos_routes_total",
        "sos_sweep_points_done",
        "sos_worker_trials_total",
        "sos_phase_seconds_total{phase=\"build\"}",
        "sos_phase_ns{phase=\"routing\",quantile=\"0.95\"}",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    let body = health.split("\r\n\r\n").nth(1).expect("health body");
    let doc: Value = serde_json::from_str(body).expect("health JSON parses");
    assert_eq!(doc["status"].as_str(), Some("ok"));
    assert!(doc["requests"].as_u64().expect("requests") >= 1);
    assert_eq!(doc["in_flight"].as_u64(), Some(0));
    assert_eq!(doc["queue_depth"].as_u64(), Some(16));
    assert_eq!(
        doc["last_persist_age_s"],
        Value::Null,
        "no cache attached, so never persisted"
    );
    assert_eq!(doc["sweep"]["points"].as_u64(), Some(1));
    assert!(doc["telemetry"]["trials"].as_u64().is_some());
    assert!(doc["telemetry"]["serve_shed"].as_u64().is_some());

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let report = handle.join().expect("join");
    assert!(report.http_requests >= 3, "{report:?}");
}

/// Sends one raw frame and reads the error response's code.
fn error_code_for(addr: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    protocol::write_frame(&mut stream, payload).expect("write frame");
    let reply = protocol::read_value(&mut stream)
        .expect("read reply")
        .expect("reply frame");
    assert_eq!(reply["ok"], Value::Bool(false), "{reply:?}");
    reply["error"]["code"].as_str().expect("code").to_string()
}

#[test]
fn protocol_errors_carry_stable_codes() {
    let (addr, handle) = start(ServerOptions::default());

    assert_eq!(error_code_for(addr, b"{not json"), "bad-json");
    assert_eq!(
        error_code_for(addr, br#"{"v":2,"op":"ping"}"#),
        "bad-version"
    );
    assert_eq!(
        error_code_for(addr, br#"{"v":1,"op":"dance"}"#),
        "unknown-op"
    );
    assert_eq!(
        error_code_for(addr, br#"{"v":1,"op":"simulate","spec":{"trials":0}}"#),
        "bad-spec"
    );

    // An oversized length prefix is answered with bad-frame, then the
    // connection is closed without reading the body.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&(u32::try_from(protocol::MAX_FRAME_LEN + 1).unwrap()).to_be_bytes())
        .expect("write prefix");
    let reply = protocol::read_value(&mut stream)
        .expect("read reply")
        .expect("reply frame");
    assert_eq!(reply["error"]["code"].as_str(), Some("bad-frame"));
    assert!(protocol::read_value(&mut stream)
        .expect("closed cleanly")
        .is_none());

    // A typed client surfaces remote errors as ClientError::Remote.
    let mut client = Client::connect(addr).expect("connect");
    let bad = SimSpec {
        mapping: "one-to-zero".into(),
        ..small_spec(1)
    };
    match client.simulate(&bad) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code.as_str(), "bad-spec"),
        other => panic!("expected a remote bad-spec error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    assert!(report.errors >= 5, "{report:?}");
}

#[test]
fn shutdown_drains_persists_and_releases_the_port() {
    let cache = std::env::temp_dir().join(format!(
        "sos-serve-test-shutdown-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);

    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: Some(cache.clone()),
        ..ServerOptions::default()
    });
    let spec = small_spec(55);
    let config = spec.sim_config().expect("config");
    let served = {
        let mut client = Client::connect(addr).expect("connect");
        let body = client.simulate(&spec).expect("simulate");
        client.shutdown().expect("shutdown");
        compact(&body["result"])
    };
    let report = handle.join().expect("join");
    assert!(report.cached_points >= 1, "{report:?}");

    // The persisted cache warm-starts a fresh executor: the same point
    // is answered without executing, with the served bytes.
    let mut exec = sos_sim::SweepExecutor::with_threads(1);
    let loaded = exec.attach_cache(&cache).expect("attach persisted cache");
    assert!(loaded >= 1, "cache file should hold the executed point");
    let executed_before = exec.stats().points_executed;
    let replayed = exec.run_one(&config);
    assert_eq!(exec.stats().points_executed, executed_before);
    assert_eq!(compact(&serde_json::to_value(&replayed)), served);

    // The listener is gone: new connections are refused.
    assert!(TcpStream::connect(addr).is_err());
    let _ = std::fs::remove_file(&cache);
}
