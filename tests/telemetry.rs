//! Cross-crate property: the live telemetry plane observes but never
//! steers. With telemetry and the progress reporter enabled, every
//! simulation entry point — `run_parallel` at 1/2/4/8 threads and a
//! sweep through the executor — must produce the same results as the
//! telemetry-off run: integer counts exactly, float aggregates within
//! the engine's own merge-order slack. The guarantee is structural
//! (telemetry never touches the RNG streams); this pins it against
//! regression.

use proptest::prelude::*;
use sos::core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
use sos::sim::engine::{Simulation, SimulationConfig, SimulationResult, TransportKind};
use sos::sim::routing::RoutingPolicy;
use sos::sim::SweepExecutor;
use sos_observe::telemetry;
use sos_observe::{ProgressReporter, ReporterOptions};
use std::sync::Mutex;
use std::time::Duration;

/// The enable flag is process-global; tests in this binary serialize
/// on it so one test's `set_enabled(false)` cannot race another's
/// instrumented run.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn scenario() -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(600, 50, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(10)
        .build()
        .unwrap()
}

/// Strategy: one small sweep point (kept tiny — every case runs the
/// full Monte Carlo twice at four thread counts).
fn point_strategy() -> impl Strategy<Value = SimulationConfig> {
    (
        0u64..120,  // congestion budget
        0u64..30,   // break-in budget
        1u64..6,    // trials
        0u64..1000, // seed
        prop_oneof![
            Just(RoutingPolicy::RandomGood),
            Just(RoutingPolicy::FirstGood),
            Just(RoutingPolicy::Backtracking),
        ],
        prop_oneof![Just(TransportKind::Direct), Just(TransportKind::Chord)],
    )
        .prop_map(|(n_c, n_t, trials, seed, policy, transport)| {
            SimulationConfig::new(
                scenario(),
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(n_t, n_c),
                },
            )
            .policy(policy)
            .transport(transport)
            .trials(trials)
            .routes_per_trial(10)
            .seed(seed)
        })
}

/// Byte-level equality on everything integer (who delivered what),
/// and merge-order slack on float aggregates: at >1 thread the racy
/// batch-to-worker assignment reorders float sums by ~1e-16 with or
/// without telemetry, so exact float equality is not the engine's
/// guarantee (see `tests/sweep_executor.rs`, which uses the same
/// contract).
fn assert_identical(off: &SimulationResult, on: &SimulationResult, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(off.successes, on.successes, "successes diverged: {}", ctx);
    prop_assert_eq!(off.attempts, on.attempts, "attempts diverged: {}", ctx);
    prop_assert_eq!(&off.failure_depths, &on.failure_depths, "depths diverged: {}", ctx);
    prop_assert_eq!(off.per_trial.count, on.per_trial.count, "trial count diverged: {}", ctx);
    prop_assert!((off.per_trial.mean - on.per_trial.mean).abs() < 1e-12, "{}", ctx);
    prop_assert!((off.mean_underlay_hops - on.mean_underlay_hops).abs() < 1e-12, "{}", ctx);
    prop_assert!((off.realized_ps_binomial - on.realized_ps_binomial).abs() < 1e-12, "{}", ctx);
    prop_assert!(
        (off.realized_ps_hypergeometric - on.realized_ps_hypergeometric).abs() < 1e-12,
        "{}", ctx
    );
    Ok(())
}

/// Runs `f` under an active progress reporter (telemetry enabled,
/// background snapshot thread live), then restores the disabled state.
fn with_telemetry<T>(f: impl FnOnce() -> T) -> T {
    let reporter = ProgressReporter::start(ReporterOptions {
        interval: Duration::from_millis(5),
        progress: false,
        out: None,
    });
    let out = f();
    reporter.finish();
    telemetry::set_enabled(false);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `run_parallel` with telemetry + reporter on is byte-identical
    /// to telemetry off at every thread count.
    #[test]
    fn run_parallel_is_bit_identical_with_telemetry_on(cfg in point_strategy()) {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for threads in [1usize, 2, 4, 8] {
            telemetry::set_enabled(false);
            let off = Simulation::new(cfg.clone()).run_parallel(threads);
            let on = with_telemetry(|| Simulation::new(cfg.clone()).run_parallel(threads));
            assert_identical(&off, &on, &format!("run_parallel at {threads} threads"))?;
        }
    }

    /// A sweep through the executor with telemetry + reporter on is
    /// byte-identical to telemetry off at every thread count.
    #[test]
    fn run_sweep_is_bit_identical_with_telemetry_on(
        configs in proptest::collection::vec(point_strategy(), 1..4),
    ) {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for threads in [1usize, 2, 4, 8] {
            telemetry::set_enabled(false);
            let off = SweepExecutor::with_threads(threads).run(&configs);
            let on = with_telemetry(|| SweepExecutor::with_threads(threads).run(&configs));
            for (point, (off, on)) in off.iter().zip(&on).enumerate() {
                assert_identical(off, on, &format!("sweep point {point} at {threads} threads"))?;
            }
        }
    }
}

/// Telemetry counters actually move while the guarantee holds: the
/// plane is live (not accidentally compiled out) during the identical
/// runs above.
#[test]
fn telemetry_counters_advance_during_instrumented_runs() {
    let cfg = SimulationConfig::new(
        scenario(),
        AttackConfig::OneBurst {
            budget: AttackBudget::new(10, 60),
        },
    )
    .trials(4)
    .routes_per_trial(10)
    .seed(7);
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let before = telemetry::snapshot();
    with_telemetry(|| Simulation::new(cfg).run_parallel(2));
    let after = telemetry::snapshot();
    assert!(
        after.trials >= before.trials + 4,
        "trial counter did not advance: {} -> {}",
        before.trials,
        after.trials
    );
    assert!(
        after.routes >= before.routes + 40,
        "route counter did not advance"
    );
}
