//! Cross-crate properties of the sweep executor: at any thread count,
//! running a sweep through the persistent pool must reproduce the
//! per-point `run_parallel` results (counts exactly, float aggregates
//! within merge-order slack), and a warm cache must reproduce a cold
//! run byte-for-byte.

use proptest::prelude::*;
use sos::core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
use sos::sim::engine::{Simulation, SimulationConfig, TransportKind};
use sos::sim::routing::RoutingPolicy;
use sos::sim::SweepExecutor;

fn scenario() -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(600, 50, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(10)
        .build()
        .unwrap()
}

/// Strategy: one small sweep point (kept tiny — every proptest case
/// runs the full Monte Carlo at four thread counts).
fn point_strategy() -> impl Strategy<Value = SimulationConfig> {
    (
        0u64..120,  // congestion budget
        0u64..30,   // break-in budget
        1u64..6,    // trials
        0u64..1000, // seed
        prop_oneof![
            Just(RoutingPolicy::RandomGood),
            Just(RoutingPolicy::FirstGood),
            Just(RoutingPolicy::Backtracking),
        ],
        prop_oneof![Just(TransportKind::Direct), Just(TransportKind::Chord)],
    )
        .prop_map(|(n_c, n_t, trials, seed, policy, transport)| {
            SimulationConfig::new(
                scenario(),
                AttackConfig::OneBurst {
                    budget: AttackBudget::new(n_t, n_c),
                },
            )
            .policy(policy)
            .transport(transport)
            .trials(trials)
            .routes_per_trial(10)
            .seed(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The executor's output for a random sweep equals running each
    /// point on its own via `run_parallel`, at every thread count: the
    /// pool/queue/dedup machinery decides only who runs a trial, never
    /// what the trial computes.
    #[test]
    fn sweep_matches_per_point_run_parallel_at_any_thread_count(
        configs in proptest::collection::vec(point_strategy(), 1..4),
    ) {
        let reference: Vec<_> = configs
            .iter()
            .map(|cfg| Simulation::new(cfg.clone()).run_parallel(2))
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let swept = SweepExecutor::with_threads(threads).run(&configs);
            for (point, (swept, reference)) in swept.iter().zip(&reference).enumerate() {
                // Integer counts are exact at any thread count.
                prop_assert_eq!(swept.successes, reference.successes,
                    "{} threads, point {}", threads, point);
                prop_assert_eq!(swept.attempts, reference.attempts);
                prop_assert_eq!(&swept.failure_depths, &reference.failure_depths);
                prop_assert_eq!(swept.per_trial.count, reference.per_trial.count);
                // Float aggregates carry merge-order slack only.
                prop_assert!((swept.per_trial.mean - reference.per_trial.mean).abs() < 1e-12);
                prop_assert!((swept.mean_underlay_hops - reference.mean_underlay_hops).abs() < 1e-12);
                prop_assert!(
                    (swept.realized_ps_binomial - reference.realized_ps_binomial).abs() < 1e-12
                );
                prop_assert!(
                    (swept.realized_ps_hypergeometric - reference.realized_ps_hypergeometric)
                        .abs() < 1e-12
                );
            }
        }
    }

    /// A warm cache reproduces the cold run byte-for-byte: the stored
    /// result round-trips through the cache file with identical f64
    /// bits, so downstream CSVs cannot drift between cold and warm runs.
    #[test]
    fn warm_cache_is_byte_identical_to_cold_run(
        configs in proptest::collection::vec(point_strategy(), 1..3),
        case in 0u64..u64::MAX,
    ) {
        let dir = std::env::temp_dir().join("sos-sweep-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cache-{}-{case}.json", std::process::id()));
        // Clear both the cache file and its append journal: a journal
        // left by an earlier run would warm-start the "cold" executor.
        let journal = dir.join(format!("cache-{}-{case}.json.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&journal);

        let mut cold = SweepExecutor::with_threads(2);
        cold.attach_cache(&path).unwrap();
        let cold_results = cold.run(&configs);
        prop_assert!(cold.stats().points_executed > 0);
        drop(cold);

        let mut warm = SweepExecutor::with_threads(2);
        let loaded = warm.attach_cache(&path).unwrap();
        prop_assert!(loaded > 0);
        let warm_results = warm.run(&configs);
        prop_assert_eq!(warm.stats().points_executed, 0,
            "warm run must answer every point from the cache");
        prop_assert_eq!(
            serde_json::to_string(&cold_results).unwrap(),
            serde_json::to_string(&warm_results).unwrap(),
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&journal);
    }
}
