//! Property-based tests for the executable attackers: resource and
//! consistency invariants over random configurations and seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sos::attack::{MonitoringAttacker, OneBurstAttacker, SuccessiveAttacker};
use sos::core::{
    AttackBudget, MappingDegree, NodeDistribution, Scenario, SuccessiveParams,
    SystemParams,
};
use sos::overlay::{NodeStatus, Overlay};
use std::collections::HashSet;

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        300u64..2_000,
        30u64..120,
        1usize..5,
        prop_oneof![
            Just(MappingDegree::ONE_TO_ONE),
            (2u64..6).prop_map(MappingDegree::OneTo),
            Just(MappingDegree::OneToHalf),
        ],
        0.05f64..1.0,
    )
        .prop_filter_map("valid scenario", |(n, sos, l, mapping, p_b)| {
            let system = SystemParams::new(n, sos, p_b).ok()?;
            Scenario::builder()
                .system(system)
                .layers(l)
                .distribution(NodeDistribution::Even)
                .mapping(mapping)
                .filters(8)
                .build()
                .ok()
        })
}

fn check_invariants(
    overlay: &Overlay,
    outcome: &sos::attack::AttackOutcome,
    budget: AttackBudget,
) -> Result<(), TestCaseError> {
    // Budgets respected.
    prop_assert!(outcome.total_attempts() as u64 <= budget.break_in_trials);
    prop_assert!(outcome.total_congested() as u64 <= budget.congestion_capacity);

    // No node both broken and congested; outcome lists are duplicate-free.
    let broken: HashSet<_> = outcome.broken.iter().collect();
    let congested: HashSet<_> = outcome.congested.iter().collect();
    prop_assert_eq!(broken.len(), outcome.broken.len());
    prop_assert_eq!(congested.len(), outcome.congested.len());
    prop_assert!(broken.is_disjoint(&congested));

    // Outcome statuses agree with the overlay.
    for &b in &outcome.broken {
        prop_assert_eq!(overlay.status(b), NodeStatus::Broken);
    }
    for &c in &outcome.congested {
        prop_assert_eq!(overlay.status(c), NodeStatus::Congested);
    }
    // Every bad node on the overlay is accounted for.
    let bad_on_overlay = overlay.total_bad();
    prop_assert_eq!(bad_on_overlay, outcome.broken.len() + outcome.congested.len());

    // Disclosed nodes are always infrastructure at layer ≥ 1 (never
    // bystanders — neighbor tables only contain SOS/filters).
    for &d in &outcome.disclosed {
        prop_assert!(overlay.layer_of(d).is_some(), "{d} disclosed but bystander");
    }

    // Attempts never target filters.
    for &a in &outcome.attempted {
        prop_assert!(
            overlay.role(a) != sos::overlay::Role::Filter,
            "{a} is a filter"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn one_burst_attacker_invariants(
        scenario in scenario_strategy(),
        nt_frac in 0.0f64..0.5,
        nc_frac in 0.0f64..0.5,
        seed in 0u64..10_000,
    ) {
        let n = scenario.system().overlay_nodes();
        let budget = AttackBudget::new(
            (n as f64 * nt_frac) as u64,
            (n as f64 * nc_frac) as u64,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::build(&scenario, &mut rng);
        let outcome = OneBurstAttacker::new(budget).execute(&mut overlay, &mut rng);
        // One-burst spends the whole break-in budget (uniform over N).
        prop_assert_eq!(outcome.total_attempts() as u64, budget.break_in_trials);
        check_invariants(&overlay, &outcome, budget)?;
    }

    #[test]
    fn successive_attacker_invariants(
        scenario in scenario_strategy(),
        nt in 0u64..300,
        nc in 0u64..300,
        rounds in 1u32..6,
        p_e in 0.0f64..=1.0,
        seed in 0u64..10_000,
    ) {
        let budget = AttackBudget::new(nt, nc);
        let params = SuccessiveParams::new(rounds, p_e).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::build(&scenario, &mut rng);
        let outcome =
            SuccessiveAttacker::new(budget, params).execute(&mut overlay, &mut rng);
        prop_assert!(outcome.rounds.len() <= rounds as usize);
        check_invariants(&overlay, &outcome, budget)?;
    }

    #[test]
    fn monitoring_attacker_invariants(
        scenario in scenario_strategy(),
        nt in 0u64..300,
        nc in 0u64..300,
        tap in 0.0f64..=1.0,
        seed in 0u64..10_000,
    ) {
        let budget = AttackBudget::new(nt, nc);
        let params = SuccessiveParams::paper_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::build(&scenario, &mut rng);
        let result = MonitoringAttacker::new(budget, params, tap)
            .execute(&mut overlay, &mut rng);
        check_invariants(&overlay, &result.outcome, budget)?;
        // The layering model never invents nodes.
        prop_assert!(result.layering.mapped_nodes()
            <= overlay.total_node_count());
        prop_assert!((0.0..=1.0).contains(&result.layering.accuracy(&overlay)));
    }
}
