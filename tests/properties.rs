//! Cross-crate property tests: model invariants over randomized
//! scenarios and attacks.

use proptest::prelude::*;
use sos::analysis::{OneBurstAnalysis, SuccessiveAnalysis};
use sos::core::{
    AttackBudget, MappingDegree, NodeDistribution, PathEvaluator, Scenario,
    SuccessiveParams, SystemParams,
};

/// Strategy: a valid scenario drawn from the space the paper sweeps.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        1_000u64..20_000,     // N
        50u64..200,           // n
        1usize..8,            // L
        prop_oneof![
            Just(MappingDegree::ONE_TO_ONE),
            (2u64..10).prop_map(MappingDegree::OneTo),
            Just(MappingDegree::OneToHalf),
            Just(MappingDegree::OneToAll),
        ],
        prop_oneof![
            Just(NodeDistribution::Even),
            Just(NodeDistribution::Increasing),
            Just(NodeDistribution::Decreasing),
        ],
        0.05f64..1.0, // P_B
        2u64..20,     // filters
    )
        .prop_filter_map("valid scenario", |(n, sos, l, mapping, dist, p_b, filters)| {
            let system = SystemParams::new(n, sos, p_b).ok()?;
            Scenario::builder()
                .system(system)
                .layers(l)
                .distribution(dist)
                .mapping(mapping)
                .filters(filters)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn one_burst_ps_is_probability(
        scenario in scenario_strategy(),
        n_t_frac in 0.0f64..=1.0,
        n_c_frac in 0.0f64..=1.0,
    ) {
        let n = scenario.system().overlay_nodes();
        let budget = AttackBudget::new(
            (n as f64 * n_t_frac) as u64,
            (n as f64 * n_c_frac) as u64,
        );
        let report = OneBurstAnalysis::new(&scenario, budget).unwrap().run();
        for eval in [PathEvaluator::Hypergeometric, PathEvaluator::Binomial] {
            let ps = report.success_probability(eval).value();
            prop_assert!((0.0..=1.0).contains(&ps), "{eval}: {ps}");
        }
        // Per-layer counts stay within layer sizes.
        let topo = scenario.topology();
        for i in 1..=topo.layer_count() + 1 {
            prop_assert!(report.state.bad(i) <= topo.size_of_layer(i) as f64 + 1e-6);
            prop_assert!(report.state.bad(i) >= -1e-9);
        }
    }

    #[test]
    fn successive_ps_is_probability(
        scenario in scenario_strategy(),
        n_t in 0u64..2_000,
        n_c in 0u64..2_000,
        rounds in 1u32..8,
        p_e in 0.0f64..=1.0,
    ) {
        let n = scenario.system().overlay_nodes();
        let budget = AttackBudget::new(n_t.min(n), n_c.min(n));
        let params = SuccessiveParams::new(rounds, p_e).unwrap();
        let report = SuccessiveAnalysis::new(&scenario, budget, params)
            .unwrap()
            .run();
        for eval in [PathEvaluator::Hypergeometric, PathEvaluator::Binomial] {
            let ps = report.success_probability(eval).value();
            prop_assert!((0.0..=1.0).contains(&ps));
        }
        prop_assert!(report.rounds_executed() >= 1);
        prop_assert!(report.rounds_executed() <= rounds);
        prop_assert!(report.total_broken >= -1e-9);
        prop_assert!(report.filters_disclosed
            <= scenario.topology().filter_count() as f64 + 1e-9);
    }

    #[test]
    fn successive_with_r1_pe0_equals_one_burst(
        scenario in scenario_strategy(),
        n_t in 0u64..1_000,
        n_c in 0u64..1_000,
    ) {
        let budget = AttackBudget::new(n_t, n_c);
        let ob = OneBurstAnalysis::new(&scenario, budget).unwrap().run();
        let succ = SuccessiveAnalysis::new(
            &scenario,
            budget,
            SuccessiveParams::new(1, 0.0).unwrap(),
        )
        .unwrap()
        .run();
        let topo = scenario.topology();
        for i in 1..=topo.layer_count() + 1 {
            prop_assert!(
                (ob.state.bad(i) - succ.state.bad(i)).abs() < 1e-6,
                "layer {i}: one-burst {} vs successive {}",
                ob.state.bad(i),
                succ.state.bad(i)
            );
        }
    }

    #[test]
    fn ps_monotone_in_congestion_budget(
        scenario in scenario_strategy(),
        n_t in 0u64..500,
        base in 0u64..500,
        extra in 0u64..500,
    ) {
        let light = OneBurstAnalysis::new(&scenario, AttackBudget::new(n_t, base))
            .unwrap()
            .run()
            .success_probability(PathEvaluator::Binomial)
            .value();
        let heavy = OneBurstAnalysis::new(&scenario, AttackBudget::new(n_t, base + extra))
            .unwrap()
            .run()
            .success_probability(PathEvaluator::Binomial)
            .value();
        prop_assert!(heavy <= light + 1e-9, "N_C+{extra}: {heavy} > {light}");
    }

    #[test]
    fn ps_monotone_in_break_in_budget_when_congestion_is_ample(
        scenario in scenario_strategy(),
        n_c in 300u64..900,
        base in 0u64..500,
        extra in 0u64..500,
    ) {
        // In the under-provisioned regime (N_C < N_D) the paper's
        // proportional congestion allocation (eq. (9)) is *not* monotone
        // in N_T: extra disclosures dilute the congestion of
        // already-disclosed filters, so P_S can tick up. EXPERIMENTS.md
        // discusses this artifact. With N_C comfortably above the
        // largest possible disclosure set (n + filters ≤ 220 here),
        // every disclosed node is congested and monotonicity holds.
        let light = OneBurstAnalysis::new(&scenario, AttackBudget::new(base, n_c))
            .unwrap()
            .run()
            .success_probability(PathEvaluator::Binomial)
            .value();
        let heavy = OneBurstAnalysis::new(&scenario, AttackBudget::new(base + extra, n_c))
            .unwrap()
            .run()
            .success_probability(PathEvaluator::Binomial)
            .value();
        prop_assert!(heavy <= light + 1e-9, "N_T+{extra}: {heavy} > {light}");
    }

    #[test]
    fn prior_knowledge_never_helps_the_defender(
        scenario in scenario_strategy(),
        p_e in 0.0f64..=1.0,
    ) {
        let budget = AttackBudget::new(200, 800.min(scenario.system().overlay_nodes()));
        let without = SuccessiveAnalysis::new(
            &scenario,
            budget,
            SuccessiveParams::new(3, 0.0).unwrap(),
        )
        .unwrap()
        .run()
        .success_probability(PathEvaluator::Binomial)
        .value();
        let with = SuccessiveAnalysis::new(
            &scenario,
            budget,
            SuccessiveParams::new(3, p_e).unwrap(),
        )
        .unwrap()
        .run()
        .success_probability(PathEvaluator::Binomial)
        .value();
        prop_assert!(with <= without + 1e-6, "P_E={p_e}: {with} > {without}");
    }

    #[test]
    fn hypergeometric_never_below_binomial_ps(
        scenario in scenario_strategy(),
        n_t in 0u64..500,
        n_c in 0u64..1_000,
    ) {
        // Per-layer failure is smaller under the hypergeometric form
        // (sampling without replacement), so P_S is larger.
        let report =
            OneBurstAnalysis::new(&scenario, AttackBudget::new(n_t, n_c))
                .unwrap()
                .run();
        let hyper = report
            .success_probability(PathEvaluator::Hypergeometric)
            .value();
        let binom = report.success_probability(PathEvaluator::Binomial).value();
        // Rounding of fractional m can perturb by a hair; allow slack.
        prop_assert!(hyper >= binom - 0.02, "hyper {hyper} < binom {binom}");
    }

    #[test]
    fn zero_budget_attack_is_harmless(scenario in scenario_strategy()) {
        let report = OneBurstAnalysis::new(&scenario, AttackBudget::new(0, 0))
            .unwrap()
            .run();
        prop_assert_eq!(
            report
                .success_probability(PathEvaluator::Binomial)
                .value(),
            1.0
        );
    }
}
