//! Chaos tests for the resident `sosd` service: a deterministic fault
//! proxy (connection drops, truncated frames, read stalls) between
//! client and daemon, overload shedding, and request deadlines. The
//! invariants under test:
//!
//! - results obtained *through* faults and retries are byte-identical
//!   to direct in-process execution;
//! - shed requests are answered promptly with `busy` + `retry_after_ms`
//!   and never corrupt executor state;
//! - expired deadlines are refused with `deadline-exceeded`, and the
//!   deadline (point-by-point) sweep path returns the same bytes as
//!   the batched path.

use serde_json::Value;
use sos_serve::{
    ChaosConfig, ChaosProxy, Client, ClientError, ErrorCode, RetryClient, RetryPolicy, Server,
    ServerHandle, ServerOptions, SimSpec,
};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn small_spec(seed: u64) -> SimSpec {
    SimSpec {
        overlay_nodes: 400,
        sos_nodes: 40,
        nt: 10,
        nc: 40,
        trials: 3,
        routes: 10,
        seed,
        ..SimSpec::default()
    }
}

fn start(opts: ServerOptions) -> (SocketAddr, ServerHandle) {
    let server = Server::bind("127.0.0.1:0", opts).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, server.spawn())
}

fn compact(value: &Value) -> String {
    serde_json::to_string(value).expect("serialize")
}

fn direct_bytes(spec: &SimSpec) -> String {
    let config = spec.sim_config().expect("config");
    let result = sos_sim::SweepExecutor::with_threads(1).run_one(&config);
    compact(&serde_json::to_value(&result))
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: sosd\r\n\r\n").expect("write");
    let mut body = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut body).expect("read");
    String::from_utf8(body).expect("utf8 response")
}

#[test]
fn retried_results_through_a_faulty_proxy_equal_direct_results() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });
    // Aggressive but recoverable chaos: under seed 15 the schedule is
    // truncate, drop, drop, then clean — both fault classes hit before
    // the first request can succeed (deterministically — a failure
    // here replays bit-for-bit).
    let proxy = ChaosProxy::start(
        addr,
        ChaosConfig {
            seed: 15,
            drop_rate: 0.4,
            truncate_rate: 0.4,
            ..ChaosConfig::default()
        },
    )
    .expect("start proxy");

    let policy = RetryPolicy::new(16, 1, u64::MAX);
    let mut client = RetryClient::new(proxy.addr().to_string(), policy);
    let spec = small_spec(21);
    // The truncated connection tears the *response*: the server has
    // already executed and memoized the point, so the successful retry
    // may legally answer `cached: true`. What must hold is the bytes.
    let cold = client.simulate_with(&spec, None).expect("simulate through chaos");
    assert_eq!(compact(&cold["result"]), direct_bytes(&spec));

    let warm = client.simulate_with(&spec, None).expect("repeat through chaos");
    assert_eq!(warm["cached"], Value::Bool(true));
    assert_eq!(compact(&warm["result"]), compact(&cold["result"]));

    let stats = proxy.stop();
    assert!(
        stats.dropped + stats.truncated >= 1,
        "the chaos schedule should have injected at least one fault: {stats:?}"
    );
    assert!(
        client.retries() >= 1,
        "at least one retry should have been needed ({stats:?})"
    );

    // Drain directly (not through the now-stopped proxy).
    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn shed_requests_get_busy_with_retry_hint_and_never_corrupt_state() {
    // queue_depth 0 sheds every executor request deterministically.
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        queue_depth: 0,
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let started = Instant::now();
    match client.simulate(&small_spec(3)) {
        Err(ClientError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::Busy);
            let hint = e.retry_after_ms.expect("busy carries retry_after_ms");
            assert!(hint >= 1, "hint must be a positive pause: {hint}");
        }
        other => panic!("expected a busy rejection, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shedding must answer promptly, not queue"
    );

    // A retrying client keeps hitting the gate, honors the hint, and
    // surfaces the final busy error after its attempts run out.
    let mut retrying = RetryClient::new(addr.to_string(), RetryPolicy::new(3, 1, u64::MAX));
    match retrying.simulate_with(&small_spec(3), None) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::Busy),
        other => panic!("expected busy after retries, got {other:?}"),
    }
    assert_eq!(retrying.retries(), 2, "3 attempts = 2 retries");

    // Shedding is visible on the metrics plane.
    let metrics = http_get(addr, "/metrics");
    let shed = metrics
        .lines()
        .find_map(|l| l.strip_prefix("sos_serve_shed_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("sos_serve_shed_total series present");
    assert!(shed >= 4, "4 shed requests so far, counter says {shed}");

    // The executor (and every non-executor op) is untouched: cheap ops
    // still work and the daemon drains cleanly with an empty memory.
    client.ping().expect("ping still served");
    client.shutdown().expect("shutdown");
    let report = handle.join().expect("join");
    assert_eq!(report.cached_points, 0, "{report:?}");
}

#[test]
fn expired_deadlines_are_refused_and_the_executor_stays_warm() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let spec = small_spec(31);

    // A zero budget is always already expired: refused before any work.
    match client.simulate_with(&spec, Some(0)) {
        Err(ClientError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::DeadlineExceeded);
        }
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }
    match client.sweep_with(&[spec.clone(), small_spec(32)], Some(0)) {
        Err(ClientError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::DeadlineExceeded);
            assert!(
                e.message.contains("0 of 2"),
                "cooperative cancellation names its progress: {}",
                e.message
            );
        }
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }

    // The rejections left no residue: the same spec computes cold (not
    // poisoned, not partially cached) and matches direct execution.
    let body = client.simulate_with(&spec, None).expect("simulate after rejections");
    assert_eq!(body["cached"], Value::Bool(false));
    assert_eq!(compact(&body["result"]), direct_bytes(&spec));

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn deadline_sweep_path_is_byte_identical_to_the_batched_path() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let specs: Vec<SimSpec> = (0..3).map(|i| small_spec(300 + i)).collect();

    // A generous deadline exercises the point-by-point cooperative
    // path; no deadline exercises the batched pool submission. Results
    // must agree byte for byte (the stats may differ only for
    // duplicate specs, and these are distinct).
    let deadlined = client
        .sweep_with(&specs, Some(120_000))
        .expect("sweep under generous deadline");
    // Same points again without a deadline: answered from the result
    // memory, so bytes must match the deadlined execution.
    let batched = client.sweep_with(&specs, None).expect("batched sweep");
    assert_eq!(
        compact(&deadlined["results"]),
        compact(&batched["results"]),
        "deadline path and batched path disagree"
    );
    assert_eq!(
        deadlined["stats"]["points_executed"].as_u64(),
        Some(3),
        "first sweep executed everything"
    );
    assert_eq!(
        batched["stats"]["cache_hits"].as_u64(),
        Some(3),
        "repeat sweep is fully warm"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn stalled_responses_are_tolerated_within_the_frame_deadline() {
    let (addr, handle) = start(ServerOptions {
        threads: Some(1),
        cache: None,
        ..ServerOptions::default()
    });
    let proxy = ChaosProxy::start(
        addr,
        ChaosConfig {
            seed: 5,
            stall_rate: 1.0,
            stall_ms: 200,
            ..ChaosConfig::default()
        },
    )
    .expect("start proxy");

    let mut client = Client::connect(proxy.addr()).expect("connect through proxy");
    let spec = small_spec(41);
    let body = client.simulate(&spec).expect("stalled but served");
    assert_eq!(compact(&body["result"]), direct_bytes(&spec));
    let stats = proxy.stop();
    assert!(stats.stalled >= 1, "{stats:?}");

    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}
