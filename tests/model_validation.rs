//! Integration tests: the closed-form average-case model against the
//! Monte Carlo ground truth, across the regimes where each evaluator is
//! supposed to be accurate.

use sos::core::{
    AttackBudget, AttackConfig, MappingDegree, Scenario, SuccessiveParams, SystemParams,
};
use sos::sim::compare_models;

fn scenario(mapping: MappingDegree, layers: usize) -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(1_000, 100, 0.5).unwrap())
        .layers(layers)
        .mapping(mapping)
        .filters(10)
        .build()
        .unwrap()
}

#[test]
fn one_to_one_pure_congestion_all_three_agree() {
    // The cleanest regime: degree-1 mapping makes the hypergeometric and
    // binomial forms identical, and random congestion matches the
    // average-case assumptions.
    for n_c in [100u64, 300, 500] {
        let row = compare_models(
            format!("N_C={n_c}"),
            &scenario(MappingDegree::ONE_TO_ONE, 3),
            AttackConfig::OneBurst {
                budget: AttackBudget::congestion_only(n_c),
            },
            150,
            80,
            17,
        )
        .unwrap();
        assert!(
            row.binomial_gap() < 0.05,
            "binomial vs sim at N_C={n_c}: {row}"
        );
        assert!(
            row.hypergeometric_gap() < 0.05,
            "hypergeometric vs sim at N_C={n_c}: {row}"
        );
    }
}

#[test]
fn break_in_regime_binomial_tracks_simulation() {
    // With break-ins the model discounts overlaps approximately; the
    // binomial evaluator should still land within a few points of the
    // simulation for modest mapping degrees.
    for (mapping, layers) in [
        (MappingDegree::ONE_TO_ONE, 3),
        (MappingDegree::OneTo(2), 3),
        (MappingDegree::OneTo(2), 5),
    ] {
        let row = compare_models(
            format!("{mapping} L={layers}"),
            &scenario(mapping.clone(), layers),
            AttackConfig::OneBurst {
                budget: AttackBudget::new(100, 300),
            },
            150,
            80,
            23,
        )
        .unwrap();
        assert!(
            row.binomial_gap() < 0.10,
            "binomial gap for {mapping} L={layers}: {row}"
        );
    }
}

#[test]
fn successive_model_tracks_simulation() {
    let row = compare_models(
        "successive",
        &scenario(MappingDegree::OneTo(2), 3),
        AttackConfig::Successive {
            budget: AttackBudget::new(100, 300),
            params: SuccessiveParams::paper_default(),
        },
        150,
        80,
        29,
    )
    .unwrap();
    assert!(
        row.binomial_gap() < 0.10,
        "successive binomial gap: {row}"
    );
}

#[test]
fn hypergeometric_saturation_documented_gap() {
    // The known blind spot of the paper's evaluator: one-to-half under
    // moderate pure congestion reads as exactly P_S = 1 while the ground
    // truth is below 1. This test pins the *direction* of the error so a
    // regression in either the evaluator or the simulator shows up.
    let row = compare_models(
        "one-to-half saturation",
        &scenario(MappingDegree::OneToHalf, 3),
        AttackConfig::OneBurst {
            budget: AttackBudget::congestion_only(300),
        },
        150,
        80,
        31,
    )
    .unwrap();
    assert_eq!(row.analytic_hypergeometric, 1.0);
    assert!(row.simulated <= 1.0);
    // The binomial form never hits exactly 1 under positive congestion
    // (here it is ~1 − 3e-9, while the hypergeometric form is exactly 1).
    assert!(
        row.analytic_binomial < 1.0,
        "binomial must not saturate exactly: {row}"
    );
}

#[test]
fn simulation_reproducible_across_runs() {
    let run = || {
        compare_models(
            "repro",
            &scenario(MappingDegree::OneTo(2), 3),
            AttackConfig::OneBurst {
                budget: AttackBudget::new(50, 200),
            },
            40,
            40,
            99,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.simulated, b.simulated);
    assert_eq!(a.analytic_binomial, b.analytic_binomial);
}
