//! Integration tests for attack traces: consistency between the trace,
//! the outcome summary and the overlay state.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sos::attack::{
    AttackEvent, CongestionReason, MonitoringAttacker, OneBurstAttacker,
    SuccessiveAttacker,
};
use sos::core::{AttackBudget, MappingDegree, Scenario, SuccessiveParams, SystemParams};
use sos::overlay::Overlay;

fn overlay(seed: u64) -> Overlay {
    let scenario = Scenario::builder()
        .system(SystemParams::new(1_500, 90, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(3))
        .filters(10)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    Overlay::build(&scenario, &mut rng)
}

#[test]
fn trace_matches_outcome_summary() {
    let mut o = overlay(1);
    let mut rng = StdRng::seed_from_u64(2);
    let outcome = SuccessiveAttacker::new(
        AttackBudget::new(200, 300),
        SuccessiveParams::paper_default(),
    )
    .execute(&mut o, &mut rng);

    // Break-in events match the attempted list exactly, in order.
    let trace_attempts: Vec<_> = outcome
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            AttackEvent::BreakInAttempt { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    assert_eq!(trace_attempts, outcome.attempted);

    // Successful break-in events match the broken list.
    let trace_broken: Vec<_> = outcome
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            AttackEvent::BreakInAttempt {
                node,
                succeeded: true,
                ..
            } => Some(*node),
            _ => None,
        })
        .collect();
    assert_eq!(trace_broken, outcome.broken);

    // Congestion events match the congested list.
    let trace_congested: Vec<_> = outcome
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            AttackEvent::Congestion { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    assert_eq!(trace_congested, outcome.congested);

    // Per-round trace accounting matches the round summaries.
    let by_round = outcome.trace.break_ins_by_round();
    for r in &outcome.rounds {
        let (attempts, captures) = by_round.get(&r.round).copied().unwrap_or((0, 0));
        assert_eq!(
            attempts as usize,
            r.attempted_disclosed + r.attempted_random,
            "round {}",
            r.round
        );
        assert_eq!(captures as usize, r.broken, "round {}", r.round);
    }
}

#[test]
fn disclosure_cascade_grows_with_rounds() {
    // P_B = 1 guarantees chains; with 3 rounds + prior knowledge the
    // cascade should reach depth ≥ 2 (layer1 capture → layer2 → layer3).
    let scenario = Scenario::builder()
        .system(SystemParams::new(1_500, 90, 1.0).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(3))
        .filters(10)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut o = Overlay::build(&scenario, &mut rng);
    let outcome = SuccessiveAttacker::new(
        AttackBudget::new(200, 0),
        SuccessiveParams::new(4, 0.3).unwrap(),
    )
    .execute(&mut o, &mut rng);
    assert!(
        outcome.trace.max_cascade_depth() >= 2,
        "cascade depth {} too shallow",
        outcome.trace.max_cascade_depth()
    );
}

#[test]
fn one_burst_trace_uses_single_round_and_random_spill() {
    let mut o = overlay(4);
    let mut rng = StdRng::seed_from_u64(5);
    let outcome =
        OneBurstAttacker::new(AttackBudget::new(100, 400)).execute(&mut o, &mut rng);
    let rounds = outcome.trace.break_ins_by_round();
    assert_eq!(rounds.len(), 1);
    assert!(rounds.contains_key(&1));
    let (targeted, random) = outcome.trace.congestion_split();
    assert_eq!((targeted + random) as usize, outcome.congested.len());
    assert!(random > 0, "one-burst with ample N_C must spill randomly");
    // Targeted congestion only ever hits disclosed nodes.
    let disclosed: std::collections::HashSet<_> =
        outcome.disclosed.iter().collect();
    for e in outcome.trace.events() {
        if let AttackEvent::Congestion {
            node,
            reason: CongestionReason::Targeted,
        } = e
        {
            assert!(disclosed.contains(node), "{node} targeted but never disclosed");
        }
    }
}

#[test]
fn monitoring_trace_contains_backward_disclosures() {
    let mut o = overlay(6);
    let mut rng = StdRng::seed_from_u64(7);
    let result = MonitoringAttacker::new(
        AttackBudget::new(150, 200),
        SuccessiveParams::paper_default(),
        1.0,
    )
    .execute(&mut o, &mut rng);
    let disclosures = result
        .outcome
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, AttackEvent::Disclosure { .. }))
        .count();
    assert!(
        disclosures >= result.backward_disclosed,
        "trace must contain at least the backward disclosures"
    );
    assert!(result.backward_disclosed > 0);
    // CSV export parses back to the same row count (+1 header).
    let csv = result.outcome.trace.to_csv();
    assert_eq!(csv.lines().count(), result.outcome.trace.len() + 1);
}
