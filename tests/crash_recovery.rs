//! Crash-safety properties of the sweep cache: a cache file or journal
//! truncated at *any* byte offset (a torn write, a crash mid-rename)
//! or hit by a single flipped bit must never make a warm executor
//! return a wrong answer. Damaged state may cost recomputation — it
//! must never cost correctness.
//!
//! The fixture is built once: a warm executor persists three points to
//! the main cache file, computes a fourth (durable only in the append
//! journal), and records the byte-exact results. Each property case
//! then damages a copy of that on-disk state, attaches a fresh
//! executor, and re-asks for all four points.

use proptest::prelude::*;
use sos::core::{AttackBudget, AttackConfig, MappingDegree, Scenario, SystemParams};
use sos::sim::engine::SimulationConfig;
use sos::sim::SweepExecutor;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn scenario() -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(600, 50, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(10)
        .build()
        .unwrap()
}

/// The i-th sweep point of the fixture grid (tiny on purpose — damaged
/// entries are recomputed live in every property case).
fn point(i: u64) -> SimulationConfig {
    SimulationConfig::new(
        scenario(),
        AttackConfig::OneBurst {
            budget: AttackBudget::new(8, 30 + i),
        },
    )
    .trials(2)
    .routes_per_trial(5)
    .seed(1_000 + i)
}

const POINTS: u64 = 4;

struct Fixture {
    /// Main cache file after persisting points 0..3.
    cache_bytes: Vec<u8>,
    /// Append journal holding point 3 (computed after the persist).
    journal_bytes: Vec<u8>,
    /// Byte-exact serialized result for each of the four points.
    baselines: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("sos-crash-fixture-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create fixture dir");
        let cache = dir.join("cache.json");

        let mut exec = SweepExecutor::with_threads(1);
        exec.attach_cache(&cache).expect("attach empty cache");
        let mut baselines = Vec::new();
        for i in 0..POINTS - 1 {
            let result = exec.run_one(&point(i));
            baselines.push(serde_json::to_string(&result).expect("serialize"));
        }
        // Drain the journal into the main file, then compute one more
        // point so the journal is the *only* durable copy of it.
        exec.persist();
        let result = exec.run_one(&point(POINTS - 1));
        baselines.push(serde_json::to_string(&result).expect("serialize"));
        drop(exec); // crash: no final persist

        let cache_bytes = fs::read(&cache).expect("read cache file");
        let journal = PathBuf::from(format!("{}.journal", cache.display()));
        let journal_bytes = fs::read(&journal).expect("read journal file");
        assert!(!cache_bytes.is_empty() && !journal_bytes.is_empty());
        fs::remove_dir_all(&dir).ok();
        Fixture { cache_bytes, journal_bytes, baselines }
    })
}

/// Writes a (possibly damaged) cache + journal pair into a fresh
/// directory and returns the cache path.
fn stage(cache_bytes: &[u8], journal_bytes: &[u8]) -> (PathBuf, PathBuf) {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "sos-crash-case-{}-{case}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create case dir");
    let cache = dir.join("cache.json");
    fs::write(&cache, cache_bytes).expect("write cache");
    fs::write(format!("{}.journal", cache.display()), journal_bytes).expect("write journal");
    (dir, cache)
}

/// Attaches a fresh executor to the staged state and checks every
/// fixture point still answers with the byte-exact baseline result —
/// whether the answer came warm from surviving entries or was
/// recomputed because the damaged ones were skipped or quarantined.
fn assert_every_answer_correct(cache: &Path) -> Result<(), TestCaseError> {
    let f = fixture();
    let mut exec = SweepExecutor::with_threads(1);
    exec.attach_cache(cache)
        .map_err(|e| TestCaseError::fail(format!("attach must not error: {e}")))?;
    for i in 0..POINTS {
        let result = exec.run_one(&point(i));
        let got = serde_json::to_string(&result).expect("serialize");
        prop_assert_eq!(
            &got,
            &f.baselines[i as usize],
            "point {} answered wrong bytes after damage",
            i
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Main cache file truncated at any byte offset (journal intact):
    /// attach never fails and never serves a wrong warm answer.
    #[test]
    fn truncated_cache_file_never_yields_wrong_answers(frac in 0.0f64..1.0) {
        let f = fixture();
        let cut = (frac * f.cache_bytes.len() as f64) as usize;
        let (dir, cache) = stage(&f.cache_bytes[..cut], &f.journal_bytes);
        let outcome = assert_every_answer_correct(&cache);
        fs::remove_dir_all(&dir).ok();
        outcome?;
    }

    /// Journal truncated at any byte offset (main file intact): the
    /// torn tail is dropped or quarantined, never trusted.
    #[test]
    fn truncated_journal_never_yields_wrong_answers(frac in 0.0f64..1.0) {
        let f = fixture();
        let cut = (frac * f.journal_bytes.len() as f64) as usize;
        let (dir, cache) = stage(&f.cache_bytes, &f.journal_bytes[..cut]);
        let outcome = assert_every_answer_correct(&cache);
        fs::remove_dir_all(&dir).ok();
        outcome?;
    }

    /// A single flipped bit anywhere in the main cache file: the
    /// per-entry checksum catches damage that still parses as JSON.
    #[test]
    fn bit_flipped_cache_never_yields_wrong_answers(
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let f = fixture();
        let mut bytes = f.cache_bytes.clone();
        let at = ((frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[at] ^= 1 << bit;
        let (dir, cache) = stage(&bytes, &f.journal_bytes);
        let outcome = assert_every_answer_correct(&cache);
        fs::remove_dir_all(&dir).ok();
        outcome?;
    }
}

/// The non-property baseline: with the fixture state intact, *all*
/// four points are warm (three from the main file, one recovered from
/// the journal) and byte-identical to the recorded results.
#[test]
fn intact_state_restores_every_point_warm() {
    let f = fixture();
    let (dir, cache) = stage(&f.cache_bytes, &f.journal_bytes);
    let mut exec = SweepExecutor::with_threads(1);
    let report = exec.attach_cache_report(&cache).expect("attach");
    assert_eq!(report.loaded, (POINTS - 1) as usize, "{report:?}");
    assert_eq!(report.journal_recovered, 1, "{report:?}");
    assert_eq!(report.skipped, 0, "{report:?}");
    assert_eq!(report.quarantined, None, "{report:?}");
    for i in 0..POINTS {
        let got = serde_json::to_string(&exec.run_one(&point(i))).expect("serialize");
        assert_eq!(got, f.baselines[i as usize], "point {i}");
    }
    assert_eq!(exec.stats().cache_hits, POINTS, "every point must be warm");
    fs::remove_dir_all(&dir).ok();
}
