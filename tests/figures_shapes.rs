//! Integration tests: every figure regenerates and matches the
//! qualitative shapes the paper reports (who wins, what declines, where
//! the collapse happens). Exact magnitudes are recorded in
//! `EXPERIMENTS.md`, not asserted here.

use sos::math::series::{trend, Trend};
use sos_bench::figures;

#[test]
fn fig4a_regenerates_with_expected_grid() {
    let t = figures::fig4a();
    assert_eq!(t.title, "fig4a");
    assert_eq!(t.series.len(), 6, "3 mappings x 2 congestion budgets");
    for s in &t.series {
        assert_eq!(s.points.len(), 10, "L = 1..=10");
        assert!(s.ys().iter().all(|y| (0.0..=1.0).contains(y)));
    }
}

#[test]
fn fig4a_ps_declines_with_layers_under_pure_congestion() {
    let t = figures::fig4a();
    for s in &t.series {
        assert_eq!(
            trend(&s.ys(), 1e-9),
            Trend::NonIncreasing,
            "{} must decline with L",
            s.label
        );
    }
}

#[test]
fn fig4a_higher_mapping_degree_wins_without_break_in() {
    let t = figures::fig4a();
    for n_c in [2_000, 6_000] {
        let one = t
            .series_by_label(&format!("one-to-one N_C={n_c}"))
            .unwrap();
        let half = t
            .series_by_label(&format!("one-to-half N_C={n_c}"))
            .unwrap();
        let all = t.series_by_label(&format!("one-to-all N_C={n_c}")).unwrap();
        for i in 0..10 {
            assert!(half.points[i].y >= one.points[i].y - 1e-9);
            assert!(all.points[i].y >= half.points[i].y - 1e-9);
        }
    }
}

#[test]
fn fig4a_heavier_congestion_is_strictly_worse_somewhere() {
    let t = figures::fig4a();
    let light = t.series_by_label("one-to-one N_C=2000").unwrap();
    let heavy = t.series_by_label("one-to-one N_C=6000").unwrap();
    let mut strict = false;
    for (l, h) in light.points.iter().zip(&heavy.points) {
        assert!(h.y <= l.y + 1e-12);
        if h.y < l.y - 1e-6 {
            strict = true;
        }
    }
    assert!(strict);
}

#[test]
fn fig4b_mapping_ranking_flips_under_break_in() {
    // The paper's headline: one-to-all dominates under pure congestion
    // but collapses under break-in.
    let t = figures::fig4b();
    let all = t.series_by_label("one-to-all N_T=2000").unwrap();
    let one = t.series_by_label("one-to-one N_T=2000").unwrap();
    for (a, o) in all.points.iter().zip(&one.points) {
        assert!(a.y < 0.05, "one-to-all should be dead at L={}", a.x);
        assert!(o.y > a.y, "one-to-one must beat one-to-all at L={}", o.x);
    }
}

#[test]
fn fig4b_break_in_intensity_hurts() {
    let t = figures::fig4b();
    for mapping in ["one-to-one", "one-to-half", "one-to-all"] {
        let light = t.series_by_label(&format!("{mapping} N_T=200")).unwrap();
        let heavy = t.series_by_label(&format!("{mapping} N_T=2000")).unwrap();
        for (l, h) in light.points.iter().zip(&heavy.points) {
            assert!(h.y <= l.y + 1e-9, "{mapping} at L={}", l.x);
        }
    }
}

#[test]
fn fig6a_moderate_mapping_beats_extremes_overall() {
    // Paper: "the one with L=4 and mapping degree one to two provides
    // the best overall performance" — assert that some moderate-mapping
    // configuration beats both extremes' best, and record the argmax.
    let t = figures::fig6a();
    let best_of = |label: &str| -> f64 {
        t.series_by_label(label)
            .unwrap()
            .ys()
            .into_iter()
            .fold(f64::MIN, f64::max)
    };
    let best_two = best_of("one-to-2");
    assert!(best_two > best_of("one-to-all"));
    assert!(best_two > best_of("one-to-half"));
    assert!(best_two > best_of("one-to-one"));
}

#[test]
fn fig6a_one_to_two_peaks_at_moderate_layer_count() {
    let t = figures::fig6a();
    let s = t.series_by_label("one-to-2").unwrap();
    let ys = s.ys();
    let best = sos::math::series::argmax(&ys).unwrap();
    let best_l = s.points[best].x;
    assert!(
        (3.0..=6.0).contains(&best_l),
        "interior optimum expected near L=4, got L={best_l}"
    );
    // And it is an interior optimum: both L=1 and L=10 are worse.
    assert!(ys[0] < ys[best]);
    assert!(ys[9] < ys[best]);
}

#[test]
fn fig6b_distribution_sensitivity_rises_with_mapping_degree() {
    let t = figures::fig6b();
    let spread_at = |mapping: &str| -> f64 {
        let dists = ["even", "increasing", "decreasing"];
        let series: Vec<Vec<f64>> = dists
            .iter()
            .map(|d| t.series_by_label(&format!("{mapping} {d}")).unwrap().ys())
            .collect();
        (0..series[0].len())
            .map(|i| {
                let vals: Vec<f64> = series.iter().map(|s| s[i]).collect();
                vals.iter().cloned().fold(f64::MIN, f64::max)
                    - vals.iter().cloned().fold(f64::MAX, f64::min)
            })
            .fold(0.0, f64::max)
    };
    assert!(spread_at("one-to-5") > spread_at("one-to-2"));
}

#[test]
fn fig7_more_rounds_hurt_and_layers_protect() {
    let t = figures::fig7();
    for s in &t.series {
        assert_eq!(trend(&s.ys(), 1e-6), Trend::NonIncreasing, "{}", s.label);
    }
    // More layers = less sensitivity to R: the drop from R=1 to R=10
    // shrinks with L.
    let drop = |label: &str| {
        let ys = t.series_by_label(label).unwrap().ys();
        ys[0] - ys[ys.len() - 1]
    };
    assert!(
        drop("L=7") <= drop("L=3") + 1e-9,
        "L=7 drop {} vs L=3 drop {}",
        drop("L=7"),
        drop("L=3")
    );
}

#[test]
fn fig8a_bigger_overlay_dilutes_the_attack() {
    let t = figures::fig8a();
    for mapping in ["one-to-2", "one-to-5"] {
        let small = t.series_by_label(&format!("{mapping} N=10000")).unwrap();
        let large = t.series_by_label(&format!("{mapping} N=20000")).unwrap();
        // Strictly better somewhere, never materially worse.
        let mut strict = false;
        for (s, l) in small.points.iter().zip(&large.points) {
            assert!(l.y >= s.y - 1e-9, "{mapping} at N_T={}", s.x);
            if l.y > s.y + 1e-6 {
                strict = true;
            }
        }
        assert!(strict, "{mapping}: N=20000 never strictly better");
    }
}

#[test]
fn fig8_shows_stable_plateau_then_decline() {
    // Paper: "there is a portion of the curve where P_S almost remains
    // unchanged for increasing N_T" followed by a slide.
    let t = figures::fig8b();
    let s = t.series_by_label("one-to-2 L=5").unwrap();
    let ys = s.ys();
    assert_eq!(trend(&ys, 1e-6), Trend::NonIncreasing);
    // Total decline is significant…
    assert!(ys[0] - ys[ys.len() - 1] > 0.1);
    // …but some adjacent step is nearly flat (the plateau).
    let min_step = ys
        .windows(2)
        .map(|w| w[0] - w[1])
        .fold(f64::MAX, f64::min);
    let max_step = ys
        .windows(2)
        .map(|w| w[0] - w[1])
        .fold(f64::MIN, f64::max);
    assert!(
        min_step < max_step / 4.0,
        "expected a plateau: min step {min_step}, max step {max_step}"
    );
}

#[test]
fn fig8b_higher_mapping_more_sensitive_to_break_in() {
    let t = figures::fig8b();
    for l in [3, 5] {
        let two = t.series_by_label(&format!("one-to-2 L={l}")).unwrap().ys();
        let five = t.series_by_label(&format!("one-to-5 L={l}")).unwrap().ys();
        // Relative drop from N_T=0 to the heaviest budget.
        let rel_drop = |ys: &[f64]| (ys[0] - ys[ys.len() - 1]) / ys[0].max(1e-12);
        assert!(
            rel_drop(&five) >= rel_drop(&two) - 1e-9,
            "L={l}: one-to-5 should be more sensitive"
        );
    }
}

#[test]
fn all_figures_emit_parseable_csv() {
    for table in figures::all() {
        let csv = table.to_string();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), format!("# {}", table.title));
        let header = lines.next().unwrap();
        assert!(header.starts_with("series,"));
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), 3, "bad row {line:?}");
            let y: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&y));
            rows += 1;
        }
        assert!(rows > 0, "{} has no data", table.title);
    }
}
