//! End-to-end integration tests spanning overlay construction, attack
//! execution, routing, and the analytical pricing of realized states.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sos::attack::{OneBurstAttacker, SuccessiveAttacker};
use sos::core::{
    AttackBudget, MappingDegree, NodeDistribution, PathEvaluator, Scenario,
    SuccessiveParams, SystemParams,
};
use sos::overlay::{ChordRing, NodeId, Overlay, Transport};
use sos::sim::routing::{route_message, RoutingPolicy};

fn scenario() -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(1_000, 90, 0.5).unwrap())
        .layers(3)
        .distribution(NodeDistribution::Increasing)
        .mapping(MappingDegree::OneTo(3))
        .filters(10)
        .build()
        .unwrap()
}

#[test]
fn attack_outcome_and_overlay_state_are_consistent() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut overlay = Overlay::build(&scenario(), &mut rng);
    let outcome =
        OneBurstAttacker::new(AttackBudget::new(150, 250)).execute(&mut overlay, &mut rng);

    // Every broken node in the outcome is Broken on the overlay; every
    // congested node is Congested; totals agree with the compromise
    // state.
    for &b in &outcome.broken {
        assert_eq!(overlay.status(b), sos::overlay::NodeStatus::Broken);
    }
    for &c in &outcome.congested {
        assert_eq!(overlay.status(c), sos::overlay::NodeStatus::Congested);
    }
    let state = overlay.compromise_state();
    let sos_broken: usize = outcome
        .broken
        .iter()
        .filter(|&&b| overlay.layer_of(b).is_some())
        .count();
    assert_eq!(state.total_broken(), sos_broken as f64);
    let infra_congested: usize = outcome
        .congested
        .iter()
        .filter(|&&c| overlay.layer_of(c).is_some())
        .count();
    assert_eq!(state.total_congested(), infra_congested as f64);
}

#[test]
fn routing_respects_attack_damage() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut overlay = Overlay::build(&scenario(), &mut rng);
    SuccessiveAttacker::new(
        AttackBudget::new(150, 250),
        SuccessiveParams::paper_default(),
    )
    .execute(&mut overlay, &mut rng);

    for _ in 0..200 {
        let result = route_message(
            &overlay,
            &Transport::Direct,
            RoutingPolicy::RandomGood,
            &mut rng,
        );
        // Whatever path was taken, every node on it must be good.
        for node in &result.path {
            assert!(overlay.is_good(*node), "routed through bad node {node}");
        }
        if result.delivered {
            assert_eq!(result.deepest_layer, 4);
            assert_eq!(result.path.len(), 4);
        }
    }
}

#[test]
fn realized_state_pricing_brackets_empirical_rate() {
    // Price the *realized* compromise state with eq.(1) and check the
    // empirical delivery rate on the same overlay is in the same
    // neighbourhood (binomial evaluator, random-good routing).
    let mut rng = StdRng::seed_from_u64(3);
    let mut hits = 0u32;
    let mut total = 0u32;
    let mut predicted = 0.0f64;
    let overlays = 40;
    for seed in 0..overlays {
        let mut rng_build = StdRng::seed_from_u64(1_000 + seed);
        let mut overlay = Overlay::build(&scenario(), &mut rng_build);
        OneBurstAttacker::new(AttackBudget::new(100, 200))
            .execute(&mut overlay, &mut rng_build);
        predicted += PathEvaluator::Binomial
            .success_probability(overlay.scenario().topology(), &overlay.compromise_state())
            .value();
        for _ in 0..100 {
            total += 1;
            if route_message(
                &overlay,
                &Transport::Direct,
                RoutingPolicy::RandomGood,
                &mut rng,
            )
            .delivered
            {
                hits += 1;
            }
        }
    }
    let empirical = hits as f64 / total as f64;
    let predicted = predicted / overlays as f64;
    assert!(
        (empirical - predicted).abs() < 0.08,
        "empirical {empirical} vs eq.(1)-on-realized {predicted}"
    );
}

#[test]
fn chord_ring_covers_overlay_and_routes() {
    let mut rng = StdRng::seed_from_u64(4);
    let overlay = Overlay::build(&scenario(), &mut rng);
    let members: Vec<NodeId> = overlay.overlay_ids().collect();
    let ring = ChordRing::build(&mut rng, &members);
    assert_eq!(ring.len(), 1_000);
    // Every SOS neighbor relationship is routable over the clean ring.
    let transport = Transport::Chord(ring);
    for layer in 1..=2usize {
        for &node in overlay.layer_members(layer).iter().take(10) {
            for &next in overlay.neighbors(node) {
                assert!(
                    transport.deliver(&overlay, node, next).is_delivered(),
                    "{node} -> {next} not routable on a clean ring"
                );
            }
        }
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = |seed: u64| -> (usize, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut overlay = Overlay::build(&scenario(), &mut rng);
        let outcome = SuccessiveAttacker::new(
            AttackBudget::new(120, 220),
            SuccessiveParams::paper_default(),
        )
        .execute(&mut overlay, &mut rng);
        let state = overlay.compromise_state();
        let per_layer: Vec<f64> = (1..=4).map(|i| state.bad(i)).collect();
        (outcome.total_attempts(), per_layer)
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn increasing_distribution_shapes_the_overlay() {
    let mut rng = StdRng::seed_from_u64(5);
    let overlay = Overlay::build(&scenario(), &mut rng);
    let sizes: Vec<usize> = (1..=3).map(|l| overlay.layer_members(l).len()).collect();
    assert_eq!(sizes.iter().sum::<usize>(), 90);
    assert_eq!(sizes[0], 30, "first layer fixed at n/L");
    assert!(sizes[1] < sizes[2], "increasing distribution toward target");
}
