//! Integration tests for the beyond-the-paper extensions: exact
//! congestion analysis, latency/optimizer, traffic monitoring, and
//! churn dynamics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sos::analysis::{
    exact_ps, AttackProfile, DesignSpace, ExactCongestionAnalysis, ForwardingDiscipline,
    LatencyModel, Optimizer,
};
use sos::attack::MonitoringAttacker;
use sos::core::{
    AttackBudget, AttackConfig, MappingDegree, PathEvaluator, Scenario, SuccessiveParams,
    SystemParams,
};
use sos::overlay::{ChurnModel, Overlay};
use sos::sim::engine::{Simulation, SimulationConfig};
use sos::sim::measure_latency;
use sos::sim::routing::RoutingPolicy;
use sos::overlay::Transport;

fn small_scenario(mapping: MappingDegree) -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(1_000, 100, 0.5).unwrap())
        .layers(3)
        .mapping(mapping)
        .filters(10)
        .build()
        .unwrap()
}

#[test]
fn exact_congestion_matches_simulation_for_high_mapping() {
    // The whole point of the exact analysis: for one-to-all pure
    // congestion, where the average-case model saturates at 1, the
    // exact analysis must track the Monte Carlo ground truth.
    let scenario = small_scenario(MappingDegree::OneToAll);
    for n_c in [300u64, 600, 800] {
        let exact = exact_ps(&scenario, AttackBudget::congestion_only(n_c))
            .unwrap()
            .value();
        let sim = Simulation::new(
            SimulationConfig::new(
                scenario.clone(),
                AttackConfig::OneBurst {
                    budget: AttackBudget::congestion_only(n_c),
                },
            )
            .trials(120)
            .routes_per_trial(60)
            .seed(41),
        )
        .run_parallel(8);
        assert!(
            (exact - sim.success_rate()).abs() < 0.05,
            "N_C={n_c}: exact {exact} vs sim {}",
            sim.success_rate()
        );
    }
}

#[test]
fn exact_beats_average_case_against_ground_truth() {
    // Quantify the headline claim of DESIGN.md §1: at one-to-half/heavy
    // congestion the exact analysis is closer to the simulation than
    // the average-case hypergeometric form.
    let scenario = small_scenario(MappingDegree::OneToHalf);
    let n_c = 700u64;
    let exact = exact_ps(&scenario, AttackBudget::congestion_only(n_c))
        .unwrap()
        .value();
    let avg = sos::analysis::OneBurstAnalysis::new(
        &scenario,
        AttackBudget::congestion_only(n_c),
    )
    .unwrap()
    .run()
    .success_probability(PathEvaluator::Hypergeometric)
    .value();
    let sim = Simulation::new(
        SimulationConfig::new(
            scenario,
            AttackConfig::OneBurst {
                budget: AttackBudget::congestion_only(n_c),
            },
        )
        .trials(150)
        .routes_per_trial(60)
        .seed(43),
    )
    .run_parallel(8);
    let truth = sim.success_rate();
    assert!(
        (exact - truth).abs() <= (avg - truth).abs() + 1e-9,
        "exact {exact} should beat average-case {avg} against truth {truth}"
    );
}

#[test]
fn monitoring_tap_reduces_ps_in_engine() {
    let scenario = small_scenario(MappingDegree::OneTo(2));
    let attack = AttackConfig::Successive {
        budget: AttackBudget::new(100, 300),
        params: SuccessiveParams::paper_default(),
    };
    let base = Simulation::new(
        SimulationConfig::new(scenario.clone(), attack)
            .trials(80)
            .routes_per_trial(60)
            .seed(47),
    )
    .run_parallel(8);
    let tapped = Simulation::new(
        SimulationConfig::new(scenario, attack)
            .trials(80)
            .routes_per_trial(60)
            .seed(47)
            .monitoring_tap(1.0),
    )
    .run_parallel(8);
    assert!(
        tapped.success_rate() < base.success_rate(),
        "taps {} should reduce P_S vs base {}",
        tapped.success_rate(),
        base.success_rate()
    );
}

#[test]
fn monitoring_layering_model_maps_the_architecture() {
    let scenario = small_scenario(MappingDegree::OneTo(3));
    let mut rng = StdRng::seed_from_u64(51);
    let mut overlay = Overlay::build(&scenario, &mut rng);
    let result = MonitoringAttacker::new(
        AttackBudget::new(200, 0),
        SuccessiveParams::new(4, 0.2).unwrap(),
        1.0,
    )
    .execute(&mut overlay, &mut rng);
    assert!(result.layering.mapped_nodes() > 10);
    assert!(result.layering.accuracy(&overlay) > 0.9);
}

#[test]
fn optimizer_and_frontier_agree_on_the_winner() {
    // The optimizer's best unconstrained design must be Pareto-optimal
    // on the frontier computed for the same (single) attack.
    let system = SystemParams::paper_default();
    let budget = AttackBudget::paper_default();
    let params = SuccessiveParams::paper_default();
    let profiles = vec![AttackProfile::new(
        "successive",
        AttackConfig::Successive { budget, params },
    )];
    let space = DesignSpace {
        layers: (1..=8).collect(),
        mappings: MappingDegree::paper_named_set(),
        distributions: vec![sos::core::NodeDistribution::Even],
        filters: 10,
    };
    let ranked = Optimizer::new(system, space, profiles).run().unwrap();
    let best = &ranked[0];

    let frontier = sos::analysis::latency_resilience_frontier(
        system,
        sos::core::NodeDistribution::Even,
        budget,
        params,
        LatencyModel {
            per_hop_mean: 1.0,
            chord_transport: false,
            discipline: ForwardingDiscipline::Oblivious,
        },
        1..=8,
        &MappingDegree::paper_named_set(),
    )
    .unwrap();
    let winner = frontier
        .iter()
        .find(|p| p.layers == best.layers && p.mapping == best.mapping.to_string())
        .expect("winner present on the frontier grid");
    assert!(
        winner.pareto_optimal,
        "the P_S-optimal design must be on the Pareto front: {winner:?}"
    );
}

#[test]
fn churned_overlay_remains_routable() {
    let scenario = small_scenario(MappingDegree::OneTo(2));
    let mut rng = StdRng::seed_from_u64(53);
    let mut overlay = Overlay::build(&scenario, &mut rng);
    let churn = ChurnModel::new(0.05, true);
    for _ in 0..20 {
        churn.step(&mut overlay, &mut rng);
    }
    // Still 100 SOS nodes, still fully routable.
    let total: usize = (1..=3).map(|l| overlay.layer_members(l).len()).sum();
    assert_eq!(total, 100);
    let d = measure_latency(
        &overlay,
        &Transport::Direct,
        RoutingPolicy::RandomGood,
        1.0,
        500,
        &mut rng,
    );
    assert_eq!(d.failures(), 0, "churned-but-promoted overlay must route");
    assert_eq!(d.mean_hops(), 4.0);
}

#[test]
fn exact_layer_successes_multiply() {
    let scenario = small_scenario(MappingDegree::OneTo(5));
    let exact = ExactCongestionAnalysis::new(&scenario, 500).unwrap();
    let product: f64 = (1..=4).map(|b| exact.layer_success(b)).product();
    assert!((product - exact.success_probability().value()).abs() < 1e-12);
}
