//! Offline shim for the subset of the `serde_json` 1.x API this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`Value`], and the [`json!`] macro.
//!
//! Values route through the vendored serde shim's owned `Content` tree
//! ([`Value`] is an alias for it). The emitted JSON matches real
//! serde_json for the shapes this workspace serializes: transparent
//! newtypes emit their inner value, enums use the externally-tagged
//! encoding, floats with no fractional part print as `1.0`, and maps
//! preserve field order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Content, Serialize};

/// A parsed/buildable JSON value — the serde shim's owned data model.
pub type Value = Content;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// (The real serde_json returns `Result`; the shim's conversion is
/// infallible because the data model is owned.)
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in the shim; the `Result` matches the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in the shim; the `Result` matches the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_content(&value)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // serde_json refuses non-finite floats; emitting null keeps the
        // output parseable.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match value {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Content::Null),
            b't' => self.literal("true", Content::Bool(true)),
            b'f' => self.literal("false", Content::Bool(false)),
            b'"' => self.string().map(Content::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII-ish output.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        c => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                c as char
                            )))
                        }
                    }
                }
                c if c < 0x80 => s.push(c as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Accumulates `json!` object entries; implementation detail of the
/// macro (a distinct type keeps macro expansions lint-clean).
#[doc(hidden)]
#[derive(Default)]
pub struct MapEntries(pub Vec<(String, Value)>);

impl MapEntries {
    /// Appends one `"key": value` pair.
    pub fn push(&mut self, entry: (String, Value)) {
        self.0.push(entry);
    }
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports object literals (nested to any depth), array literals of
/// expressions, `null`, and arbitrary serializable expressions as
/// values — the subset of the real `json!` grammar this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut entries = $crate::MapEntries::default();
        $crate::json_internal!(entries $($body)*);
        $crate::Value::Map(entries.0)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    ($entries:ident) => {};
    ($entries:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::Value::Null));
        $( $crate::json_internal!($entries $($rest)*); )?
    };
    ($entries:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $( $crate::json_internal!($entries $($rest)*); )?
    };
    ($entries:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $( $crate::json_internal!($entries $($rest)*); )?
    };
    ($entries:ident $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::to_value(&$value)));
        $( $crate::json_internal!($entries $($rest)*); )?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_matches_serde_json() {
        assert_eq!(to_string(&0.375f64).unwrap(), "0.375");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}, "e": -7}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["b"]["c"], Content::Bool(true));
        assert_eq!(v["e"], Content::I64(-7));
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn json_macro_shapes() {
        let files = vec!["a.csv".to_string(), "b.csv".to_string()];
        let doc = json!({
            "suite": "s",
            "nested": { "trials": 5u64, "seed": 42u64 },
            "files": files,
            "none": null,
        });
        assert_eq!(doc["suite"], Content::Str("s".into()));
        assert_eq!(doc["nested"]["trials"].as_u64(), Some(5));
        assert_eq!(doc["files"].as_array().unwrap().len(), 2);
        assert_eq!(doc["none"], Content::Null);
        assert_eq!(json!(null), Content::Null);
        assert_eq!(json!([1u32, 2u32]).as_array().unwrap().len(), 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\ttab \"quote\" back\\slash ünïcode";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
