//! Offline shim for the subset of the `proptest` 1.x API this
//! workspace's property tests use: the [`proptest!`] macro,
//! [`Strategy`](strategy::Strategy) with `prop_map` /
//! `prop_filter_map`, [`prop_oneof!`], `Just`, tuple and
//! `prop::collection::vec` strategies, `prop_assert*` / `prop_assume!`,
//! and `TestCaseError`.
//!
//! Differences from real proptest, deliberate and documented:
//!
//! - **No shrinking.** A failing case reports its deterministic case
//!   seed instead of a minimized counterexample.
//! - **Deterministic seeding.** Case `i` of test `name` always draws
//!   from `fnv1a(name) ⊕ i·SPLIT` — runs are reproducible without a
//!   `proptest-regressions` directory.
//! - **Rejection budget.** `prop_assume!` / `prop_filter_map`
//!   rejections retry with fresh draws, capped at 50× the case count;
//!   exhausting the cap fails the test like upstream.
//! - Default case count is 64 (upstream: 256) to keep offline CI fast;
//!   every statistically heavy block in this workspace sets its own
//!   `ProptestConfig::with_cases` anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// The generator RNG used for all draws.
    pub type TestRng = StdRng;

    /// A recipe for generating values of [`Self::Value`].
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values `f` maps to `Some`, retrying (with fresh
        /// draws) otherwise. `whence` names the filter in the
        /// exhaustion panic.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe view of [`Strategy`], for heterogeneous unions.
    pub trait DynStrategy<T> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted sub-strategies (backs
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map `{}` rejected 10000 draws in a row", self.whence);
        }
    }

    /// Builds the generator RNG from a case seed (used by the
    /// [`proptest!`](crate::proptest) expansion, which cannot assume
    /// `rand` is in the caller's scope).
    pub fn rng_from_seed(seed: u64) -> TestRng {
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }

    // Numeric ranges are strategies (e.g. `0u64..100`, `0.0f64..=1.0`).
    // Implemented per type rather than blanket-over-SampleRange so the
    // impls cannot overlap the combinator impls above.
    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A/0);
    tuple_strategy!(A/0, B/1);
    tuple_strategy!(A/0, B/1, C/2);
    tuple_strategy!(A/0, B/1, C/2, D/3);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
}

/// Collection strategies (`prop::collection` in the real crate).
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::{Rng, SampleRange};

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `vec(element, 1..200)`: vectors of 1–199 elements.
    pub fn vec<S, R>(element: S, size: R) -> VecStrategy<S, R>
    where
        S: Strategy,
        R: SampleRange<usize> + Clone,
    {
        VecStrategy { element, size }
    }

    impl<S, R> Strategy for VecStrategy<S, R>
    where
        S: Strategy,
        R: SampleRange<usize> + Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner types: configuration and case-level error signalling.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the shim halves twice to keep
            // offline CI fast (workspace-heavy blocks set their own).
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed — the property is violated.
        Fail(String),
        /// The case was rejected (`prop_assume!`) — draw another.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (does not count against the property).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            }
        }
    }

    /// FNV-1a hash of a test name — the per-test base seed.
    pub fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "{} != {} failed: both {:?}",
            stringify!($lhs), stringify!($rhs), lhs
        );
    }};
}

/// Rejects the current case unless the condition holds; rejected cases
/// are redrawn and do not count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($strategy) as $crate::strategy::BoxedStrategy<_> ),+
        ])
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: munches `fn` items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base_seed = $crate::test_runner::name_seed(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            while accepted < config.cases {
                if attempt > config.cases as u64 * 50 {
                    panic!(
                        "proptest {}: gave up after {} draws ({} accepted of {} wanted)",
                        stringify!($name), attempt, accepted, config.cases
                    );
                }
                let case_seed = base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                attempt += 1;
                let mut proptest_rng = $crate::strategy::rng_from_seed(case_seed);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(proptest_rng, ($($params)*), $body);
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case seed {:#x}: {}",
                            stringify!($name), case_seed, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: binds `name in strategy`
/// parameters, then runs the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, (), $body:block) => { $body };
    ($rng:ident, (mut $name:ident in $strategy:expr $(, $($rest:tt)*)?), $body:block) => {
        let mut $name =
            $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng, ($($($rest)*)?), $body)
    };
    ($rng:ident, ($name:ident in $strategy:expr $(, $($rest:tt)*)?), $body:block) => {
        let $name =
            $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng, ($($($rest)*)?), $body)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::{Strategy, TestRng};
    use rand::SeedableRng;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let (a, b) = ((0u32..4), (10i64..20)).generate(&mut rng);
            assert!(a < 4 && (10..20).contains(&b));
            let v = crate::collection::vec(0u64..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()) && v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn oneof_map_and_filter_map() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = prop_oneof![
            Just(0u64),
            (1u64..5).prop_map(|v| v * 100),
        ];
        let mut saw_just = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            let v: u64 = s.generate(&mut rng);
            match v {
                0 => saw_just = true,
                v if (100..500).contains(&v) && v % 100 == 0 => saw_mapped = true,
                v => panic!("unexpected {v}"),
            }
        }
        assert!(saw_just && saw_mapped);
        let evens = (0u64..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires bindings, assume, and asserts together.
        fn macro_end_to_end(a in 0u64..50, mut v in prop::collection::vec(0u64..10, 1..6)) {
            prop_assume!(a != 13);
            v.push(a);
            prop_assert!(v.len() >= 2);
            prop_assert_eq!(*v.last().unwrap(), a);
            prop_assert_ne!(v.last().unwrap(), &13);
        }
    }
}
