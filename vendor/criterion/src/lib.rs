//! Offline shim for the subset of the `criterion` 0.5 API this
//! workspace's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's bootstrap statistics, the shim runs a short
//! calibrated timing loop per benchmark and prints the median
//! per-iteration time. That is enough to (a) keep every bench target
//! compiling and runnable offline and (b) give comparable
//! order-of-magnitude numbers between runs on the same machine; it does
//! not attempt criterion's regression analysis or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (holds run-wide settings).
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Final hook for criterion compatibility (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and parameter (`name/param`).
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take (criterion-compatible).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            budget: self.criterion.measurement,
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        report(&self.name, &id.label, bencher.result);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            budget: self.criterion.measurement,
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher, input);
        report(&self.name, &id.label, bencher.result);
        self
    }

    /// Ends the group (criterion-compatible; prints nothing extra).
    pub fn finish(&mut self) {}
}

fn report(group: &str, label: &str, median: Option<Duration>) {
    match median {
        Some(d) => println!("{group}/{label:<28} {}", humanize(d)),
        None => println!("{group}/{label:<28} (no measurement)"),
    }
}

fn humanize(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns/iter")
    } else if ns < 1_000_000 {
        format!("{:.2} µs/iter", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms/iter", ns as f64 / 1e6)
    } else {
        format!("{:.3} s/iter", ns as f64 / 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    ///
    /// Calibrates an iteration count so each sample runs long enough to
    /// be measurable, then takes `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the per-sample iteration count until one
        // sample takes ≥ budget / (4 · samples).
        let target = (self.budget / (4 * self.samples as u32)).max(Duration::from_micros(10));
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).max((iters as f64 * target.as_secs_f64()
                / elapsed.as_secs_f64().max(1e-9)) as u64);
        }
        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        per_iter.sort_unstable();
        self.result = Some(per_iter[per_iter.len() / 2]);
    }
}

/// Declares a benchmark group function list (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("build", 512).label, "build/512");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
