//! Offline shim for the subset of the `serde` 1.x API this workspace
//! uses: the [`Serialize`]/[`Deserialize`] traits, derive macros, and
//! `serde::de::DeserializeOwned`.
//!
//! The real serde serializes through a zero-copy visitor architecture;
//! this shim routes everything through an owned [`Content`] tree (the
//! JSON data model: null, bool, numbers, strings, sequences, maps).
//! That is dramatically simpler, costs one intermediate allocation per
//! value, and is fully sufficient for this workspace's needs — JSON
//! experiment manifests and result files measured in kilobytes.
//!
//! The derive macros (re-exported from the sibling `serde_derive`
//! shim) cover named structs, tuple structs (including
//! `#[serde(transparent)]` newtypes), and enums with unit, newtype,
//! tuple and struct variants — encoded exactly like serde_json encodes
//! them (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//! `{"Variant": {..}}`), so files written by earlier builds against
//! real serde parse unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned tree in the JSON data model — the intermediate
/// representation every shimmed (de)serialization routes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// A key-ordered map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a key, if this is a map.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;

    /// Map lookup; a missing key or non-map indexes to `Null` (matching
    /// `serde_json::Value` semantics).
    fn index(&self, key: &str) -> &Content {
        const NULL: Content = Content::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Deserialization marker traits, mirroring `serde::de`.
pub mod de {
    pub use super::Deserialize;

    /// Marker for types deserializable without borrowing — all shimmed
    /// types, since the shim's data model is owned.
    pub trait DeserializeOwned: Deserialize {}

    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Looks up a required field in map entries (used by derived code).
///
/// # Errors
///
/// Returns [`DeError`] naming the missing field.
pub fn field<'a>(
    entries: &'a [(String, Content)],
    name: &str,
) -> Result<&'a Content, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| DeError::new(format!(
                        "expected unsigned integer, got {content:?}"
                    )))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::new(format!("{v} out of range")))
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! sint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match *content {
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::new(format!("{v} out of range")))?,
                    Content::I64(v) => v,
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::new(format!("{v} out of range")))
            }
        }
    )*};
}

sint_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                content
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| DeError::new(format!(
                        "expected number, got {content:?}"
                    )))
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {content:?}")))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {content:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = content
            .as_array()
            .filter(|v| v.len() == 2)
            .ok_or_else(|| DeError::new("expected 2-element array"))?;
        Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort for a stable representation (HashMap iteration order is
        // arbitrary).
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::new(format!("expected map, got {content:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_content()).unwrap(),
            "hi".to_string()
        );
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn index_and_helpers() {
        let map = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert_eq!(map["a"], Content::U64(1));
        assert_eq!(map["missing"], Content::Null);
        assert_eq!(map.get("a").and_then(Content::as_u64), Some(1));
        assert!(field(map.as_map().unwrap(), "b").is_err());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Content::F64(3.0).as_u64(), Some(3));
        assert_eq!(Content::F64(3.5).as_u64(), None);
        assert_eq!(Content::I64(-1).as_u64(), None);
        assert_eq!(Content::U64(9).as_f64(), Some(9.0));
    }
}
