//! Offline shim for `serde_derive`: hand-written `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` macros targeting the vendored `serde`
//! shim's `Content` data model.
//!
//! The real serde_derive depends on `syn`/`quote`, which cannot be
//! fetched offline; this shim parses the item's `TokenStream` directly.
//! Supported shapes — exactly what this workspace derives on:
//!
//! - named-field structs (no generics)
//! - tuple structs; single-field newtypes serialize as their inner
//!   value (serde's newtype behavior, with or without
//!   `#[serde(transparent)]`)
//! - enums with unit, newtype, tuple, and struct variants, encoded in
//!   serde_json's externally-tagged form (`"Variant"`,
//!   `{"Variant": value}`, `{"Variant": [..]}`, `{"Variant": {..}}`)
//!
//! Field-level serde attributes are not supported (none are used in
//! the workspace); unknown shapes fail the build with a clear
//! `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item the derive is attached to.
enum Item {
    /// `struct Name { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T, U);` — arity recorded, types irrelevant.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { ... }`
    Enum { name: String, variants: Vec<Variant> },
}

enum VariantKind {
    Unit,
    /// Tuple variant with this arity (arity 1 = newtype).
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Derives `serde::Serialize` (shim) for structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (shim) for structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive shim generated invalid Rust")
}

/// Skips one attribute (`#` + bracket group, or `#!` + group) if the
/// cursor is on one. Returns true if something was skipped.
fn skip_attr(tokens: &[TokenTree], pos: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() == '#' {
            *pos += 1;
            if let Some(TokenTree::Punct(bang)) = tokens.get(*pos) {
                if bang.as_char() == '!' {
                    *pos += 1;
                }
            }
            *pos += 1; // the [...] group
            return true;
        }
    }
    false
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    while skip_attr(&tokens, &mut pos) {}
    skip_vis(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("derive shim: expected struct/enum, got {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("derive shim: expected item name, got {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive shim: generic item `{name}` is not supported"
            ));
        }
    }

    match (keyword.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct {
                name,
                arity: count_top_level_fields(g.stream()),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        (kw, other) => Err(format!(
            "derive shim: unsupported item shape `{kw}` followed by {other:?}"
        )),
    }
}

/// Field names of a brace-delimited field list.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        while skip_attr(&tokens, &mut pos) {}
        if pos >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("derive shim: expected field name, got {other:?}")),
        }
        pos += 1; // field name
        pos += 1; // ':'
        // Skip the type: everything up to a comma at angle-bracket
        // depth 0. Parens/brackets are atomic `Group` tokens, so only
        // `<`/`>` need explicit depth tracking.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a paren-delimited (tuple) field list.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        while skip_attr(&tokens, &mut pos) {}
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("derive shim: expected variant, got {other:?}")),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating
        // comma.
        while let Some(tok) = tokens.get(pos) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({f:?}.to_string(), ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            // Newtype structs serialize as their inner value (serde's
            // behavior both with and without #[serde(transparent)]).
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str({vn:?}.to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Content::Map(vec![({vn:?}.to_string(), ::serde::Serialize::to_content(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![({vn:?}.to_string(), ::serde::Content::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![({vn:?}.to_string(), ::serde::Content::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(::serde::field(entries, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                         let entries = content.as_map().ok_or_else(|| ::serde::DeError::new(\
                             format!(\"{name}: expected map, got {{content:?}}\")))?;\n\
                         Ok(Self {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                     Ok(Self(::serde::Deserialize::from_content(content)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                         let items = content.as_array().filter(|v| v.len() == {arity})\
                             .ok_or_else(|| ::serde::DeError::new(\
                                 format!(\"{name}: expected {arity}-element array\")))?;\n\
                         Ok(Self({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_content(value)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let items = value.as_array().filter(|v| v.len() == {n})\
                                         .ok_or_else(|| ::serde::DeError::new(\
                                             format!(\"{name}::{vn}: expected {n}-element array\")))?;\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(::serde::field(entries, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let entries = value.as_map().ok_or_else(|| ::serde::DeError::new(\
                                         format!(\"{name}::{vn}: expected map\")))?;\n\
                                     return Ok({name}::{vn} {{ {} }});\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                         if let Some(s) = content.as_str() {{\n\
                             match s {{\n{}\n_ => {{}}\n}}\n\
                         }}\n\
                         if let Some(entries) = content.as_map() {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, value) = &entries[0];\n\
                                 let _ = value;\n\
                                 match tag.as_str() {{\n{}\n_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::DeError::new(format!(\
                             \"{name}: unrecognized variant encoding {{content:?}}\")))\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
