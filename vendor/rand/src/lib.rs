//! Offline shim for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`].
//!
//! The real `rand` crate cannot be fetched in the offline build
//! environment, so this crate re-implements the same API over a
//! xoshiro256++ generator (Blackman & Vigna) seeded through SplitMix64.
//! Semantics match `rand` for everything the workspace relies on:
//! deterministic streams under [`SeedableRng::seed_from_u64`], uniform
//! `gen::<u64>()` / `gen::<f64>()` (53-bit mantissa in `[0, 1)`), and
//! unbiased `gen_range` over integer and float ranges. The *numerical
//! streams* differ from upstream `rand` (different generator, different
//! range algorithm), so seeds produce different — but equally valid —
//! sample paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word (high bits of
    /// [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw generator output
/// (the shim's equivalent of sampling from `rand`'s `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1) — the same construction
        // rand uses for its `Standard` f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly. Generic over the element type
/// (rather than using an associated type) so the element can be
/// inferred from the *use site* — `rng.gen_range(0..n)` used as a slice
/// index infers `usize`, matching real `rand`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire): maps a uniform 64-bit word
/// onto `0..span` with at most 2⁻⁶⁴ bias — indistinguishable from exact
/// at simulation scale.
fn bounded(rng_word: u64, span: u64) -> u64 {
    ((rng_word as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // Dividing by 2^53 - 1 makes the endpoint reachable.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + u * (end - start)
    }
}

/// Convenience sampling methods over any [`RngCore`] — the shim's
/// equivalent of `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. (The real `rand::rngs::StdRng` is
    /// ChaCha-based; this shim trades cryptographic strength — which no
    /// simulation here needs — for a dependency-free implementation.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers (the shim's `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place shuffling and element choice for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean {}", sum / 10_000.0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            seen_lo |= y == 0;
            seen_hi |= y == 3;
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints reachable");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is shuffled");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
