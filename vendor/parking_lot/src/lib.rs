//! Offline shim for the subset of the `parking_lot` 0.12 API this
//! workspace uses: [`Mutex`] with panic-free `lock()` and
//! `into_inner()`.
//!
//! Wraps `std::sync::Mutex`; poisoning (which parking_lot does not
//! have) is erased by unwrapping — a poisoned lock means a worker
//! already panicked, and propagating that panic matches parking_lot's
//! observable behavior for this workspace (the panic surfaces through
//! the thread join either way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1u32]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
