//! Offline shim for the subset of the `crossbeam` 0.8 API this
//! workspace uses: [`thread::scope`] with closure-taking
//! [`thread::Scope::spawn`].
//!
//! Implemented over `std::thread::scope` (stable since 1.63), which
//! crossbeam's scoped threads predate. The only semantic adaptations:
//! crossbeam's `spawn` passes the scope to the worker closure (so
//! workers can spawn more workers), and `scope` returns
//! `Result<R, payload>` instead of propagating worker panics directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped-thread shim matching `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle: workers spawned through it may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker; the closure receives the scope (crossbeam's
        /// signature) so it can spawn nested workers.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed;
    /// joins all workers before returning.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if any worker panicked (matching
    /// crossbeam's `Result` API; `std::thread::scope` itself would
    /// resume the panic).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn workers_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let data = vec![1u64, 2, 3, 4];
        let counter = &counter;
        let result = super::thread::scope(|scope| {
            for &x in &data {
                scope.spawn(move |_| {
                    counter.fetch_add(x, Ordering::Relaxed);
                });
            }
            "done"
        })
        .unwrap();
        assert_eq!(result, "done");
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
