//! `sos` — a reproduction of *"Analyzing the Secure Overlay Services
//! Architecture under Intelligent DDoS Attacks"* (Xuan, Chellappan,
//! Wang & Wang, ICDCS 2004) as a production-quality Rust workspace.
//!
//! This facade re-exports the workspace crates under stable module
//! names; depend on it to get the whole stack, or on individual crates
//! for a narrower dependency:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `sos-core` | scenario/topology/mapping/distribution model, `P_S` evaluators |
//! | [`analysis`] | `sos-analysis` | closed-form one-burst & successive models, baselines, sweeps |
//! | [`overlay`] | `sos-overlay` | concrete overlays, Chord DHT, transports |
//! | [`attack`] | `sos-attack` | executable one-burst & successive attackers |
//! | [`sim`] | `sos-sim` | Monte Carlo engine, model comparison, repair dynamics |
//! | [`math`] | `sos-math` | special functions, combinatorics, statistics |
//! | [`des`] | `sos-des` | deterministic discrete-event engine (Chord protocol, flow sims) |
//!
//! # Quickstart
//!
//! ```
//! use sos::core::{AttackBudget, MappingDegree, PathEvaluator, Scenario, SystemParams};
//! use sos::analysis::OneBurstAnalysis;
//!
//! // The paper's default system, 3 layers, one-to-two mapping.
//! let scenario = Scenario::builder()
//!     .system(SystemParams::paper_default())
//!     .layers(3)
//!     .mapping(MappingDegree::OneTo(2))
//!     .build()?;
//!
//! // A moderate intelligent attack: 200 break-in trials, 2000
//! // congestion slots.
//! let report = OneBurstAnalysis::new(&scenario, AttackBudget::new(200, 2_000))?.run();
//! let ps = report.success_probability(PathEvaluator::Binomial);
//! assert!(ps.value() > 0.0 && ps.value() < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sos_analysis as analysis;
pub use sos_attack as attack;
pub use sos_core as core;
pub use sos_des as des;
pub use sos_math as math;
pub use sos_overlay as overlay;
pub use sos_sim as sim;
