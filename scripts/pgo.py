#!/usr/bin/env python3
"""Profile-guided-optimization lane for the sos workspace.

Four stages, each a plain cargo/rustc invocation:

  1. build the workspace release binaries with `-Cprofile-generate`,
  2. run `bench_baseline` (the committed perf workload set) plus the
     routing and congestion ablation binaries (`ablation_routing`,
     `fig4a`) so the instrumented binaries write `.profraw` counters
     covering the batched route-evaluation and congestion kernels,
  3. merge the counters with `llvm-profdata` into one `.profdata`,
  4. rebuild with `-Cprofile-use` and verify the optimized binary is
     *observationally identical* to a plain release build: the
     deterministic replay workload (`ext_faults --quick`) and the
     delivery counts inside the fresh `BENCH_trials` JSON must match
     byte for byte.  PGO may only move time, never results.

The script needs `llvm-profdata` (rustup: `rustup component add
llvm-tools`, or any system LLVM).  When the tool is absent the script
prints how to get it and exits 0 (skip), so the lane is safe to call
from environments without LLVM tooling; pass `--strict` to turn that
skip into a failure (CI does).

Usage:
  python3 scripts/pgo.py [--strict] [--target-dir DIR] [--keep]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
# Workloads whose *results* (not timings) must survive PGO unchanged.
REPLAY_BIN = "ext_faults"
BENCH_BIN = "bench_baseline"
# Extra profiling-only workloads: the routing-policy ablation and the
# pure-congestion one-burst figure, so the merged profile covers the
# batched route-evaluation kernel and the congestion phase, not just
# the bench_baseline mix.
PROFILE_BINS = ("ablation_routing", "fig4a")
# Result-bearing keys inside a BENCH_trials workload row.  Timing keys
# (before/after/speedup/phases) legitimately change under PGO; these
# must not.
RESULT_KEYS = ("name", "trials", "threads", "build_reused")


def run(cmd: list[str], *, env: dict[str, str] | None = None,
        capture: bool = False) -> subprocess.CompletedProcess:
    print(f"+ {' '.join(cmd)}", flush=True)
    return subprocess.run(
        cmd, cwd=REPO, env=env, check=True,
        stdout=subprocess.PIPE if capture else None)


def find_llvm_profdata() -> str | None:
    """Locate llvm-profdata: the rustc sysroot first, then PATH.

    The sysroot copy (rustup component `llvm-tools`) is built from the
    same LLVM as rustc and is the only one guaranteed to read rustc's
    `.profraw` format; a system LLVM on PATH is a best-effort fallback
    that may reject the profiles even at a matching major version.
    """
    try:
        sysroot = subprocess.run(
            ["rustc", "--print", "sysroot"], check=True,
            stdout=subprocess.PIPE, text=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        sysroot = None
    if sysroot:
        for candidate in Path(sysroot).glob(
                "lib/rustlib/*/bin/llvm-profdata"):
            return str(candidate)
    return shutil.which("llvm-profdata")


def cargo_build(target_dir: Path, rustflags: str) -> Path:
    env = dict(os.environ)
    env["CARGO_TARGET_DIR"] = str(target_dir)
    env["RUSTFLAGS"] = rustflags
    cmd = ["cargo", "build", "--release", "-p", "sos-bench",
           "--bin", BENCH_BIN, "--bin", REPLAY_BIN]
    for b in PROFILE_BINS:
        cmd += ["--bin", b]
    run(cmd, env=env)
    return target_dir / "release"


def result_view(bench_json: Path) -> str:
    """Project a BENCH_trials document onto its result-bearing fields.

    Timings differ run to run (that is the point of PGO); trial counts,
    thread counts and build-reuse counters are seeded and must not.
    """
    doc = json.loads(bench_json.read_text())
    rows = [{k: w[k] for k in RESULT_KEYS if k in w}
            for w in doc.get("workloads", [])]
    return json.dumps(rows, sort_keys=True, indent=1)


def run_workloads(bindir: Path, tag: str, scratch: Path) -> tuple[bytes, str]:
    """Run the verification workloads; return (replay stdout, results)."""
    replay = run([str(bindir / REPLAY_BIN), "--quick"], capture=True)
    bench_out = scratch / f"BENCH_trials.{tag}.json"
    run([str(bindir / BENCH_BIN), "--out", str(bench_out)])
    return replay.stdout, result_view(bench_out)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--strict", action="store_true",
                    help="fail (exit 2) instead of skipping when "
                         "llvm-profdata is unavailable")
    ap.add_argument("--target-dir", default=None,
                    help="cargo target dir for the PGO builds "
                         "(default: target/pgo under the repo)")
    ap.add_argument("--keep", action="store_true",
                    help="keep the scratch profile directory")
    args = ap.parse_args()

    profdata_tool = find_llvm_profdata()
    if profdata_tool is None:
        msg = ("pgo: llvm-profdata not found (PATH or rustc sysroot); "
               "install with `rustup component add llvm-tools`")
        if args.strict:
            print(msg, file=sys.stderr)
            return 2
        print(f"{msg} — skipping the PGO lane")
        return 0

    target_dir = Path(args.target_dir) if args.target_dir \
        else REPO / "target" / "pgo"
    scratch = Path(tempfile.mkdtemp(prefix="sos-pgo-"))
    profraw_dir = scratch / "profraw"
    profraw_dir.mkdir()
    profdata = scratch / "merged.profdata"

    try:
        # Stage 0: the plain release reference the PGO build must match.
        plain_dir = cargo_build(target_dir / "plain", "")
        plain_replay, plain_results = run_workloads(
            plain_dir, "plain", scratch)

        # Stage 1+2: instrumented build, then profile the bench workloads
        # plus the routing/congestion ablations (output discarded — only
        # their execution profile matters here).
        gen_dir = cargo_build(
            target_dir / "gen", f"-Cprofile-generate={profraw_dir}")
        run([str(gen_dir / BENCH_BIN), "--out",
             str(scratch / "BENCH_trials.profiled.json")])
        for b in PROFILE_BINS:
            run([str(gen_dir / b)], capture=True)
        raws = sorted(profraw_dir.glob("*.profraw"))
        if not raws:
            print("pgo: instrumented run produced no .profraw files",
                  file=sys.stderr)
            return 2

        # Stage 3: merge counters.  A PATH llvm-profdata from a
        # different LLVM build can reject rustc's profraw format; that
        # is an environment gap, not a PGO failure, so treat it like a
        # missing tool unless --strict.
        try:
            run([profdata_tool, "merge", "-o", str(profdata)]
                + [str(r) for r in raws])
        except subprocess.CalledProcessError:
            msg = (f"pgo: {profdata_tool} cannot merge rustc's .profraw "
                   "files (LLVM build mismatch); install the matching "
                   "tool with `rustup component add llvm-tools`")
            if args.strict:
                print(msg, file=sys.stderr)
                return 2
            print(f"{msg} — skipping the PGO lane")
            return 0

        # Stage 4: optimized build, then the identity check.
        use_dir = cargo_build(
            target_dir / "use", f"-Cprofile-use={profdata}")
        pgo_replay, pgo_results = run_workloads(use_dir, "pgo", scratch)

        if pgo_replay != plain_replay:
            print("pgo: ext_faults replay output differs from the plain "
                  "release build — PGO changed results", file=sys.stderr)
            return 1
        if pgo_results != plain_results:
            print("pgo: bench workload results differ from the plain "
                  "release build — PGO changed results", file=sys.stderr)
            print(f"plain:\n{plain_results}\npgo:\n{pgo_results}",
                  file=sys.stderr)
            return 1

        print("pgo: optimized binary is byte-identical on the replay and "
              f"bench workloads ({len(raws)} profile(s) merged)")
        print(f"pgo: optimized binaries left in {use_dir}")
        return 0
    finally:
        if args.keep:
            print(f"pgo: scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
