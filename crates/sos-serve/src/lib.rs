//! `sos-serve` — the resident `sosd` analysis service.
//!
//! Every one-shot `sos` invocation pays full process startup for work
//! the workspace already knows how to amortize: a persistent
//! process-wide worker pool (`sos_sim::pool`), a content-addressed
//! sweep cache (`sos_sim::sweep`), and a lock-free telemetry plane
//! (`sos_observe::telemetry`). This crate turns those pieces into a
//! long-running daemon:
//!
//! * [`Server`] — a stdlib-TCP accept loop; each connection gets a
//!   reader thread, all requests share one warm
//!   [`SweepExecutor`](sos_sim::SweepExecutor), so repeated and
//!   overlapping requests are answered
//!   from the content-addressed result memory instead of re-simulated.
//! * [`protocol`] — the wire format: length-prefixed JSON frames,
//!   [`Request`]/[`Response`] types, error codes. `PROTOCOL.md` at the
//!   repository root is the field-by-field reference.
//! * [`spec`] — [`SimSpec`], the shared experiment grammar: the same
//!   field names, value grammar and defaults as the `sos` CLI flags,
//!   so a config described over the wire builds the same
//!   `SimulationConfig` (and hits the same cache entry) as the same
//!   config described with flags.
//! * [`Client`] — a blocking client (what `sos client` wraps).
//! * The same listener answers HTTP `GET /metrics` (Prometheus text
//!   exposition) and `GET /healthz` (JSON health/progress snapshot),
//!   so one port serves both protocol clients and scrapers.
//!
//! `OPERATIONS.md` at the repository root is the operator guide
//! (start/stop, cache persistence, scraping, capacity notes).
//!
//! # End-to-end example
//!
//! Bind to an ephemeral port, serve in the background, drive it with a
//! client, and shut it down gracefully:
//!
//! ```
//! use sos_serve::{Client, Server, ServerOptions, SimSpec};
//!
//! // Bind port 0 → the OS picks a free port; run in the background.
//! let server = Server::bind("127.0.0.1:0", ServerOptions::default())?;
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = Client::connect(addr)?;
//!
//! // Liveness + version handshake.
//! let pong = client.ping().expect("ping");
//! assert_eq!(pong["protocol"].as_u64(), Some(1));
//!
//! // Closed-form analysis of the paper's default configuration.
//! let doc = client.analyze(&SimSpec::default()).expect("analyze");
//! let ps = doc["ps"].as_f64().expect("ps");
//! assert!(ps > 0.0 && ps < 1.0);
//!
//! // Monte Carlo: the first run computes, the repeat is a cache hit
//! // with a byte-identical result.
//! let spec = SimSpec {
//!     overlay_nodes: 500,
//!     sos_nodes: 50,
//!     nt: 10,
//!     nc: 50,
//!     trials: 4,
//!     routes: 10,
//!     ..SimSpec::default()
//! };
//! let cold = client.simulate(&spec).expect("simulate");
//! let warm = client.simulate(&spec).expect("simulate again");
//! assert_eq!(cold["cached"], serde_json::Value::Bool(false));
//! assert_eq!(warm["cached"], serde_json::Value::Bool(true));
//! assert_eq!(
//!     serde_json::to_string(&cold["result"]).unwrap(),
//!     serde_json::to_string(&warm["result"]).unwrap(),
//! );
//!
//! // Drain and stop.
//! client.shutdown().expect("shutdown");
//! let report = handle.join()?;
//! assert!(report.requests >= 4);
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod spec;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats};
pub use client::{Client, ClientError, RetryClient};
pub use sos_faults::RetryPolicy;
pub use protocol::{ErrorCode, Request, Response, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use server::{Server, ServerHandle, ServerOptions, ServerReport};
pub use spec::{analyze_doc, analyze_outcome, AnalyzeOutcome, SimSpec, SpecError};
