//! The `sosd` server: a TCP accept loop multiplexing protocol clients
//! and HTTP scrapers onto one shared [`SweepExecutor`].
//!
//! Ownership: the server owns one executor for its whole lifetime —
//! a warm, content-addressed result memory over the process-wide
//! worker pool (or a private pool when
//! [`ServerOptions::threads`] pins the count). Each accepted
//! connection gets a reader thread; execution itself is serialized on
//! the executor mutex, and every run uses the *full* pool, so requests
//! queue rather than fight over cores. Identical concurrent requests
//! collapse into one execution through the executor's fingerprint
//! memory.
//!
//! Overload: the executor queue is *bounded*
//! ([`ServerOptions::queue_depth`]). A `simulate`/`sweep` request that
//! arrives when the queue is full is shed immediately with a `busy`
//! error carrying a `retry_after_ms` hint, instead of silently pinning
//! a reader thread on the mutex. Requests may also carry a
//! `deadline_ms` budget: an expired deadline is answered with
//! `deadline-exceeded` rather than computed; a `sweep` under deadline
//! executes point by point and stops cooperatively between points,
//! with every completed point already durable in the cache journal.
//!
//! Failure: a panic inside the executor fails only the request that
//! triggered it (`internal`); the poisoned lock is detected on the
//! next access and the executor is rebuilt from the persisted cache
//! file, so one bad request cannot corrupt the daemon's warm state.
//!
//! Observability: every protocol request gets a monotonic
//! `request_id` (echoed in the response along with a `timing`
//! breakdown computed from telemetry snapshot deltas bracketing the
//! request), and doubles it as the trace id of a request-scoped span
//! tree — admission, executor-lock wait, cache probes, sweep points,
//! pool batches — kept in `sos_observe::trace`'s bounded flight
//! recorder and served as Chrome trace-event JSON at
//! `GET /debug/trace` (or the `trace` op). Requests slower than
//! [`ServerOptions::slow_ms`] are counted and logged as structured
//! JSONL; anomalies (internal errors, shedding, executor rebuilds,
//! shutdown drain) dump the recorder's recent spans to the same sink.
//!
//! Shutdown: a `shutdown` request (there is no portable stdlib signal
//! handling) flips a flag and wakes the accept loop; the server stops
//! accepting, drains in-flight connections, persists the sweep cache,
//! and [`Server::run`] returns a [`ServerReport`].

use crate::protocol::{
    self, ErrorCode, Request, Response, WireError, HTTP_GET_PREFIX, PROTOCOL_VERSION,
};
use crate::spec::{analyze_doc, analyze_outcome};
use serde_json::Value;
use sos_observe::telemetry::{self, PhaseKind, TelemetrySnapshot};
use sos_observe::trace;
use sos_sim::{config_fingerprint, SweepExecutor};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a connection may sit idle between requests during normal
/// operation: forever. The read loop polls at this interval only to
/// notice the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Deadline for finishing a frame or HTTP head once its first byte has
/// arrived — a stalled peer must not pin a reader thread forever.
const FRAME_DEADLINE: Duration = Duration::from_secs(30);

/// Default [`ServerOptions::queue_depth`].
const DEFAULT_QUEUE_DEPTH: usize = 16;

/// Per-queued-request slice behind a `busy` error's `retry_after_ms`
/// hint: a shed client is told to come back after roughly this long
/// per request ahead of it.
const RETRY_AFTER_SLICE_MS: u64 = 100;

/// Ceiling for the `retry_after_ms` hint.
const RETRY_AFTER_MAX_MS: u64 = 5_000;

/// Most recent spans included in a flight-recorder anomaly dump.
const ANOMALY_DUMP_SPANS: usize = 64;

/// Floor between two flight-recorder anomaly dumps: a shed storm or a
/// rebuild loop must not turn the slow log into a span firehose.
const ANOMALY_DUMP_INTERVAL: Duration = Duration::from_secs(1);

/// Construction-time knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads for a *private* pool; `None` shares the
    /// process-global pool (sized by `sos_sim::num_threads`).
    pub threads: Option<usize>,
    /// Persistent sweep-cache file: loaded at bind (warm start),
    /// journaled after every executed point, compacted on shutdown.
    pub cache: Option<PathBuf>,
    /// Admission bound for `simulate`/`sweep`: at most this many such
    /// requests may be executing or waiting on the executor at once;
    /// the rest are shed with `busy` + `retry_after_ms`. `0` sheds
    /// every executor request (useful for drills and tests).
    pub queue_depth: usize,
    /// Slow-request threshold, in milliseconds of total service time:
    /// a protocol request at or over it bumps
    /// `sos_serve_slow_requests_total` and writes one structured JSONL
    /// line (request id, op, timing breakdown) to the slow log.
    /// `None` disables slow-request logging.
    pub slow_ms: Option<u64>,
    /// File receiving slow-request lines and flight-recorder anomaly
    /// dumps (created/appended); `None` sends them to stderr.
    pub slow_log: Option<PathBuf>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            threads: None,
            cache: None,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            slow_ms: None,
            slow_log: None,
        }
    }
}

/// What a drained server did with its life; returned by
/// [`Server::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerReport {
    /// Connections accepted (protocol and HTTP alike).
    pub connections: u64,
    /// Protocol requests answered (including error responses).
    pub requests: u64,
    /// HTTP requests answered (`/metrics`, `/healthz`, 404s).
    pub http_requests: u64,
    /// Error responses among `requests`.
    pub errors: u64,
    /// Results held in the executor memory at shutdown (persisted to
    /// the cache file when one is attached).
    pub cached_points: u64,
}

/// Counters and flags shared by the accept loop and every connection
/// thread.
struct Shared {
    exec: Mutex<SweepExecutor>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    http_requests: AtomicU64,
    errors: AtomicU64,
    /// Admitted executor requests (executing + waiting on the mutex).
    in_flight: AtomicU64,
    /// Admission bound ([`ServerOptions::queue_depth`]).
    queue_depth: usize,
    /// Private-pool thread count, kept so a poisoned executor can be
    /// rebuilt with the same shape it was bound with.
    threads: Option<usize>,
    /// Cache file, kept for executor rebuilds after poisoning.
    cache_path: Option<PathBuf>,
    /// Monotonic protocol request ids; each doubles as the trace id
    /// every span of that request carries.
    request_ids: AtomicU64,
    /// Slow-request threshold ([`ServerOptions::slow_ms`]).
    slow_ms: Option<u64>,
    /// Slow-log / anomaly-dump sink ([`ServerOptions::slow_log`]);
    /// stderr when `None`.
    slow_log: Option<PathBuf>,
    /// Nanoseconds (since `started`) of the last anomaly dump, for
    /// [`ANOMALY_DUMP_INTERVAL`] throttling; 0 = never.
    last_dump_ns: AtomicU64,
    started: Instant,
    addr: SocketAddr,
}

impl Shared {
    fn new(exec: SweepExecutor, opts: &ServerOptions, addr: SocketAddr) -> Shared {
        Shared {
            exec: Mutex::new(exec),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            queue_depth: opts.queue_depth,
            threads: opts.threads,
            cache_path: opts.cache.clone(),
            request_ids: AtomicU64::new(0),
            slow_ms: opts.slow_ms,
            slow_log: opts.slow_log.clone(),
            last_dump_ns: AtomicU64::new(0),
            started: Instant::now(),
            addr,
        }
    }
}

/// RAII slot in the bounded executor queue; dropping it releases the
/// slot (including on panic unwind, so a crashed request can never
/// leak queue capacity).
struct AdmissionPermit<'a> {
    shared: &'a Shared,
}

impl std::fmt::Debug for AdmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("in_flight", &self.shared.in_flight.load(Ordering::SeqCst))
            .finish()
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Claims a queue slot for one executor request, or sheds the request
/// with `busy` + `retry_after_ms` when the queue is full.
fn try_admit(shared: &Shared) -> Result<AdmissionPermit<'_>, WireError> {
    let mut current = shared.in_flight.load(Ordering::SeqCst);
    loop {
        if current >= shared.queue_depth as u64 {
            telemetry::serve_shed();
            anomaly_dump(shared, "shed");
            let retry_after = RETRY_AFTER_SLICE_MS
                .saturating_mul(current.max(1))
                .min(RETRY_AFTER_MAX_MS);
            return Err(WireError::busy(
                format!(
                    "executor queue full ({current} in flight, depth {})",
                    shared.queue_depth
                ),
                retry_after,
            ));
        }
        match shared.in_flight.compare_exchange(
            current,
            current + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Ok(AdmissionPermit { shared }),
            Err(observed) => current = observed,
        }
    }
}

/// A bound, not-yet-running `sosd` server. See the crate docs for an
/// end-to-end example.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    cache_loaded: usize,
}

impl Server {
    /// Binds the listener and prepares the executor (loading the cache
    /// file when [`ServerOptions::cache`] is set). Bind to port 0 for
    /// an ephemeral port, then read it back with [`local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures and cache-file I/O errors. A corrupt
    /// cache is *not* an error: `SweepExecutor::attach_cache`
    /// quarantines the damaged file to `<path>.corrupt` and starts
    /// cold (journal-recovered entries are counted in telemetry as
    /// `sos_serve_recovered_entries`).
    ///
    /// [`local_addr`]: Server::local_addr
    pub fn bind(addr: impl ToSocketAddrs, opts: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // A resident service's metrics plane is always live: telemetry
        // observes but never steers (results are identical either
        // way), and `GET /metrics` must show real counters without
        // requiring a reporter.
        telemetry::set_enabled(true);
        // The request-tracing plane is likewise always on: spans
        // observe but never steer (results stay byte-identical), and
        // the flight recorder is what `GET /debug/trace` and the
        // `trace` op serve.
        trace::set_enabled(true);
        let mut exec = match opts.threads {
            Some(t) => SweepExecutor::with_threads(t),
            None => SweepExecutor::new(),
        };
        let cache_loaded = match &opts.cache {
            Some(path) => exec.attach_cache(path)?,
            None => 0,
        };
        telemetry::serve_recovered(exec.load_report().journal_recovered as u64);
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared::new(exec, &opts, addr)),
            cache_loaded,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Cache entries loaded at bind time (warm-start size).
    pub fn cache_entries_loaded(&self) -> usize {
        self.cache_loaded
    }

    /// Runs the accept loop on the calling thread until a `shutdown`
    /// request arrives, then drains in-flight connections, persists
    /// the sweep cache, and returns the final counters.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors (per-connection errors are
    /// counted, not propagated).
    pub fn run(self) -> io::Result<ServerReport> {
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // Transient accept errors (peer reset mid-handshake)
                // must not kill the daemon.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            // Request/response frames are small and latency-bound;
            // never let Nagle batch them.
            stream.set_nodelay(true).ok();
            self.shared.connections.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            handles.retain(|h| !h.is_finished());
            handles.push(std::thread::spawn(move || handle_connection(stream, &shared)));
        }
        // Drain: every reader thread finishes its in-flight request
        // (idle connections notice the flag within POLL_INTERVAL).
        for handle in handles {
            let _ = handle.join();
        }
        // The drain report includes a flight-recorder dump so the last
        // requests before shutdown survive for post-mortem.
        anomaly_dump(&self.shared, "shutdown-drain");
        let mut exec = lock_executor(&self.shared);
        exec.persist();
        Ok(ServerReport {
            connections: self.shared.connections.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
            http_requests: self.shared.http_requests.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            cached_points: exec.cached_points() as u64,
        })
    }

    /// Runs the accept loop on a background thread; the returned
    /// handle joins it. For embedding the daemon in tests or larger
    /// programs — the CLI calls blocking [`run`](Server::run) instead.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        ServerHandle {
            addr,
            join: std::thread::spawn(move || self.run()),
        }
    }
}

/// Handle to a [`Server::spawn`]ed accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<io::Result<ServerReport>>,
}

impl ServerHandle {
    /// The served address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to drain (after a `shutdown` request) and
    /// returns its report.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::run`]'s error, or
    /// [`io::ErrorKind::Other`] if the server thread panicked.
    pub fn join(self) -> io::Result<ServerReport> {
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Locks the shared executor, containing the blast radius of a panic
/// in a previous request: a poisoned lock means some request unwound
/// mid-execution and the in-memory executor state (pool bookkeeping,
/// result memory, journal counters) cannot be trusted. Instead of
/// ignoring the poison and serving from that state, the executor is
/// rebuilt from scratch and re-warmed from the persisted cache file —
/// the crash-safe store that journaled every completed point — so the
/// daemon loses at most the panicking request, never its memory.
fn lock_executor<'a>(shared: &'a Shared) -> std::sync::MutexGuard<'a, SweepExecutor> {
    match shared.exec.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            shared.exec.clear_poison();
            let mut fresh = match shared.threads {
                Some(t) => SweepExecutor::with_threads(t),
                None => SweepExecutor::new(),
            };
            if let Some(path) = &shared.cache_path {
                if let Err(e) = fresh.attach_cache(path) {
                    eprintln!(
                        "warning: executor rebuild could not reload cache {}: {e}",
                        path.display()
                    );
                }
            }
            *guard = fresh;
            telemetry::serve_rebuild();
            anomaly_dump(shared, "executor-rebuild");
            eprintln!(
                "warning: executor lock was poisoned by a panicked request; \
                 rebuilt from persisted cache ({} points)",
                guard.cached_points()
            );
            guard
        }
    }
}

/// Appends diagnostic text (slow-request lines, anomaly dumps) to the
/// slow-log sink: the `--slow-log` file when configured, stderr
/// otherwise. Sink failures are swallowed — the observability plane
/// must never fail a request.
fn sink_text(shared: &Shared, text: &str) {
    match &shared.slow_log {
        Some(path) => {
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
                let _ = f.write_all(text.as_bytes());
            }
        }
        None => eprint!("{text}"),
    }
}

/// Dumps the flight recorder's most recent spans (JSONL, one Chrome
/// event per line) to the slow-log sink, prefixed with a reason line.
/// Called on anomalies — internal errors, shedding, executor rebuilds,
/// shutdown drain — so the spans leading up to the event survive for
/// post-mortem. Throttled to one dump per [`ANOMALY_DUMP_INTERVAL`]
/// (a shed storm must not flood the sink) and a no-op while tracing is
/// disabled.
fn anomaly_dump(shared: &Shared, reason: &str) {
    if !trace::enabled() {
        return;
    }
    // Shedding and the shutdown drain are *expected* operational
    // events: dump their context only into an explicitly configured
    // sink, never onto a clean stderr. Internal errors and executor
    // rebuilds always dump — they are the post-mortems this exists
    // for.
    if matches!(reason, "shed" | "shutdown-drain") && shared.slow_log.is_none() {
        return;
    }
    let now_ns = shared.started.elapsed().as_nanos() as u64;
    let last = shared.last_dump_ns.load(Ordering::Relaxed);
    if last != 0 && now_ns.saturating_sub(last) < ANOMALY_DUMP_INTERVAL.as_nanos() as u64 {
        return;
    }
    if shared
        .last_dump_ns
        .compare_exchange(last, now_ns.max(1), Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return; // another thread won the dump
    }
    let spans = trace::recorder().recent(ANOMALY_DUMP_SPANS);
    let mut text = format!(
        "{{\"flight_recorder_dump\":\"{reason}\",\"spans\":{}}}\n",
        spans.len()
    );
    text.push_str(&trace::spans_jsonl(&spans));
    sink_text(shared, &text);
}

/// Server-attributed wall-clock split of one request, measured at the
/// two points a request can block: the admission queue and the
/// executor mutex. The rest of the `timing` doc comes from telemetry
/// snapshot deltas bracketing the request.
#[derive(Debug, Default)]
struct RequestTiming {
    /// Wall time spent claiming an admission slot.
    queue_ns: u64,
    /// Wall time blocked on the executor mutex.
    lock_ns: u64,
}

/// Attributed wall clock of `phase` between two snapshots (summed over
/// workers, so parallel phases may exceed request wall time).
fn phase_delta_ns(before: &TelemetrySnapshot, after: &TelemetrySnapshot, phase: PhaseKind) -> u64 {
    let total = |snap: &TelemetrySnapshot| {
        snap.phases
            .iter()
            .find(|p| p.phase == phase)
            .map_or(0, |p| p.total_ns)
    };
    total(after).saturating_sub(total(before))
}

/// Builds the `timing` doc attached to every successful response: the
/// request's total service time, its queue/lock waits, per-phase
/// attributed wall clock, and work counters — all from the measured
/// waits plus telemetry snapshot deltas bracketing the request.
fn timing_doc(
    timing: &RequestTiming,
    before: &TelemetrySnapshot,
    after: &TelemetrySnapshot,
    total_ns: u64,
) -> Value {
    serde_json::json!({
        "total_ns": total_ns,
        "queue_ns": timing.queue_ns,
        "lock_ns": timing.lock_ns,
        "build_ns": phase_delta_ns(before, after, PhaseKind::Build),
        "break_in_ns": phase_delta_ns(before, after, PhaseKind::BreakIn),
        "congestion_ns": phase_delta_ns(before, after, PhaseKind::Congestion),
        "routing_ns": phase_delta_ns(before, after, PhaseKind::Routing),
        "trials": after.trials - before.trials,
        "cache_hits": after.cache_hits - before.cache_hits,
        "builds_reused": after.build_reused - before.build_reused,
    })
}

/// What the first four bytes of a connection turned out to be.
enum Sniff {
    /// A protocol frame of this payload length follows.
    Frame(usize),
    /// An HTTP GET; the prefix bytes belong to the request line.
    Http,
    /// Peer hung up between requests.
    Eof,
    /// Idle connection noticed the shutdown flag.
    Draining,
}

/// Reads exactly `buf.len()` bytes through the polling read timeout.
/// `idle_ok` selects the between-requests behavior: clean EOF and
/// shutdown-draining are reportable outcomes before the first byte,
/// errors after it. Returns the number of bytes read before a clean
/// EOF only in the `idle_ok && n == 0` case.
fn poll_read_exact(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    idle_ok: bool,
) -> io::Result<Option<usize>> {
    let mut filled = 0usize;
    let mut deadline: Option<Instant> = if idle_ok {
        None // idle: wait indefinitely (shutdown flag breaks the wait)
    } else {
        Some(Instant::now() + FRAME_DEADLINE)
    };
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if idle_ok && filled == 0 {
                    return Ok(Some(0));
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                filled += n;
                // First byte of a message arms the stall deadline.
                deadline.get_or_insert_with(|| Instant::now() + FRAME_DEADLINE);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if filled == 0 && idle_ok && shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stalled mid-frame",
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(filled))
}

/// Reads and classifies the start of the next message on `stream`.
fn sniff(stream: &mut TcpStream, shared: &Shared, prefix: &mut [u8; 4]) -> io::Result<Sniff> {
    match poll_read_exact(stream, prefix, shared, true)? {
        None => Ok(Sniff::Draining),
        Some(0) => Ok(Sniff::Eof),
        Some(_) => {
            if *prefix == HTTP_GET_PREFIX {
                return Ok(Sniff::Http);
            }
            match protocol::frame_len(*prefix) {
                Ok(len) => Ok(Sniff::Frame(len)),
                Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        }
    }
}

/// Serves one accepted connection until EOF, shutdown, or a fatal
/// framing error.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut prefix = [0u8; 4];
    loop {
        match sniff(&mut stream, shared, &mut prefix) {
            Ok(Sniff::Eof) | Ok(Sniff::Draining) => break,
            Ok(Sniff::Http) => {
                shared.http_requests.fetch_add(1, Ordering::Relaxed);
                let _ = serve_http(&mut stream, shared);
                break; // Connection: close
            }
            Ok(Sniff::Frame(len)) => {
                let mut payload = vec![0u8; len];
                if poll_read_exact(&mut stream, &mut payload, shared, false).is_err() {
                    break;
                }
                let (response, shutdown) = respond(&payload, shared);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if matches!(response, Response::Err(_)) {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
                let fatal = matches!(
                    &response,
                    Response::Err(e) if e.code == ErrorCode::BadFrame
                );
                if protocol::write_value(&mut stream, &response.to_value()).is_err() {
                    break;
                }
                if shutdown {
                    initiate_shutdown(shared);
                    break;
                }
                if fatal {
                    break; // cannot resynchronize the stream
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized length prefix: answer once, then close.
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Err(WireError::new(ErrorCode::BadFrame, e.to_string()));
                let _ = protocol::write_value(&mut stream, &resp.to_value());
                break;
            }
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Flips the shutdown flag and wakes the blocking accept loop with a
/// throwaway connection to ourselves.
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(shared.addr);
}

/// Decodes one request payload and executes it. Returns the response
/// plus whether this request asked for shutdown.
fn respond(payload: &[u8], shared: &Shared) -> (Response, bool) {
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            return (
                Response::Err(WireError::new(ErrorCode::BadJson, "frame is not UTF-8")),
                false,
            )
        }
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => {
            return (
                Response::Err(WireError::new(ErrorCode::BadJson, e.to_string())),
                false,
            )
        }
    };
    let request = match Request::from_value(&value) {
        Ok(r) => r,
        Err(e) => return (Response::Err(e), false),
    };
    let shutdown = matches!(request, Request::Shutdown);
    let op = request.op();
    telemetry::serve_request(op);
    // The request id doubles as the trace id: every span recorded
    // while this request executes carries it, and the response echoes
    // it so a client can find its own spans in `GET /debug/trace`.
    let request_id = shared.request_ids.fetch_add(1, Ordering::Relaxed) + 1;
    let root = trace::enabled().then(|| {
        trace::start_with(format!("request:{op}"), trace::CAT_REQUEST, request_id, 0)
    });
    // Executor execution is serialized on one mutex, so the ambient
    // slot cannot be trampled by a concurrent executor request; spans
    // recorded outside any request (none today) would carry trace 0.
    trace::set_context(request_id, root.as_ref().map_or(0, |r| r.id()));
    let started = Instant::now();
    let before = telemetry::snapshot();
    let mut timing = RequestTiming::default();
    let outcome = execute(request, shared, started, &mut timing);
    let after = telemetry::snapshot();
    let total_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    trace::clear_context();
    drop(root);
    let doc = timing_doc(&timing, &before, &after, total_ns);
    let response = match outcome {
        Ok(mut result) => {
            // Additive response fields (protocol stays v1): clients
            // that predate them ignore unknown keys.
            if let Value::Map(entries) = &mut result {
                entries.push(("request_id".into(), Value::U64(request_id)));
                entries.push(("timing".into(), doc.clone()));
            }
            Response::Ok { op: op.into(), result }
        }
        Err(e) => Response::Err(e),
    };
    if let Some(slow_ms) = shared.slow_ms {
        if total_ns >= slow_ms.saturating_mul(1_000_000) {
            telemetry::serve_slow_request();
            let timing_json =
                serde_json::to_string(&doc).unwrap_or_else(|_| String::from("null"));
            let ok = matches!(response, Response::Ok { .. });
            sink_text(
                shared,
                &format!(
                    "{{\"slow_request\":{{\"request_id\":{request_id},\"op\":\"{op}\",\"ok\":{ok},\"timing\":{timing_json}}}}}\n"
                ),
            );
        }
    }
    (response, shutdown)
}

/// Has the request's `deadline_ms` budget (counted from `arrival`)
/// already been spent? Checked at admission and, for sweeps, between
/// points — never mid-point, so a point that started always finishes
/// (and is journaled).
fn deadline_expired(arrival: Instant, deadline_ms: Option<u64>) -> bool {
    match deadline_ms {
        Some(ms) => arrival.elapsed() >= Duration::from_millis(ms),
        None => false,
    }
}

/// The `deadline-exceeded` rejection for a request whose budget ran
/// out after `done` of `total` points.
fn deadline_error(deadline_ms: u64, done: usize, total: usize) -> WireError {
    telemetry::serve_deadline_expired();
    WireError::new(
        ErrorCode::DeadlineExceeded,
        format!(
            "deadline of {deadline_ms} ms expired after {done} of {total} point(s); \
             completed points are journaled — retry to resume from cache"
        ),
    )
}

/// Runs one executor-bound closure, converting a panic into an
/// `internal` error response for this request (plus a flight-recorder
/// dump of the spans leading up to it). The unwind poisons the
/// executor lock on its way out; the next [`lock_executor`] rebuilds
/// the executor from the persisted cache.
fn run_guarded(
    shared: &Shared,
    f: impl FnOnce() -> Result<Value, WireError>,
) -> Result<Value, WireError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|_| {
        anomaly_dump(shared, "internal-error");
        Err(WireError::new(
            ErrorCode::Internal,
            "request panicked in the executor; state will be rebuilt from the persisted cache",
        ))
    })
}

/// Executes a decoded request against the shared executor/telemetry.
/// `arrival` anchors the request's `deadline_ms` budget; the measured
/// queue/lock waits land in `timing`.
fn execute(
    request: Request,
    shared: &Shared,
    arrival: Instant,
    timing: &mut RequestTiming,
) -> Result<Value, WireError> {
    match request {
        Request::Ping => Ok(serde_json::json!({
            "server": "sosd",
            "protocol": PROTOCOL_VERSION,
            "version": env!("CARGO_PKG_VERSION"),
        })),
        Request::Analyze(spec) => {
            let scenario = spec.scenario()?;
            let attack = spec.attack()?;
            let evaluator = spec.evaluator()?;
            let outcome = analyze_outcome(&scenario, &attack, evaluator)?;
            Ok(analyze_doc(&scenario, &attack, evaluator, &outcome))
        }
        Request::Simulate { spec, deadline_ms } => {
            let config = spec.sim_config()?;
            let admit_started = Instant::now();
            let _permit = try_admit(shared)?;
            timing.queue_ns = elapsed_ns(admit_started);
            run_guarded(shared, || {
                let fp = config_fingerprint(&config);
                let lock_started = Instant::now();
                let mut exec = lock_executor(shared);
                timing.lock_ns = elapsed_ns(lock_started);
                // The queue wait may have eaten the whole budget;
                // refuse before computing, not after.
                if deadline_expired(arrival, deadline_ms) {
                    return Err(deadline_error(deadline_ms.unwrap_or(0), 0, 1));
                }
                let before = exec.stats();
                let result = exec.run_one(&config);
                let cached = exec.stats().points_executed == before.points_executed;
                Ok(serde_json::json!({
                    "fingerprint": format!("{fp:016x}"),
                    "cached": cached,
                    "served_from": if cached { "cache" } else { "computed" },
                    "result": result,
                }))
            })
        }
        Request::Sweep { specs, deadline_ms } => {
            let configs = specs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    s.sim_config().map_err(|e| {
                        WireError::new(ErrorCode::BadSpec, format!("specs[{i}]: {e}"))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            let admit_started = Instant::now();
            let _permit = try_admit(shared)?;
            timing.queue_ns = elapsed_ns(admit_started);
            run_guarded(shared, || {
                let fingerprints: Vec<String> = configs
                    .iter()
                    .map(|c| format!("{:016x}", config_fingerprint(c)))
                    .collect();
                let lock_started = Instant::now();
                let mut exec = lock_executor(shared);
                timing.lock_ns = elapsed_ns(lock_started);
                let before = exec.stats();
                let results = match deadline_ms {
                    // No deadline: one pool submission, identical to
                    // the pre-deadline code path byte for byte.
                    None => exec.run(&configs),
                    // Deadline: point-by-point with a cooperative
                    // cancellation check between points. Each result
                    // is byte-identical to the batched path; only the
                    // stats differ (duplicate specs count as cache
                    // hits rather than dedup hits).
                    Some(ms) => {
                        let mut results = Vec::with_capacity(configs.len());
                        for (done, config) in configs.iter().enumerate() {
                            if deadline_expired(arrival, deadline_ms) {
                                return Err(deadline_error(ms, done, configs.len()));
                            }
                            results.push(exec.run_one(config));
                        }
                        results
                    }
                };
                let after = exec.stats();
                let points: Vec<Value> = fingerprints
                    .into_iter()
                    .zip(&results)
                    .map(|(fp, result)| {
                        serde_json::json!({ "fingerprint": fp, "result": result })
                    })
                    .collect();
                // Where the answers came from: nothing executed means
                // pure cache, nothing answered from memory means pure
                // compute, any mix is partial.
                let executed = after.points_executed - before.points_executed;
                let from_memory = (after.cache_hits - before.cache_hits)
                    + (after.dedup_hits - before.dedup_hits);
                let served_from = if executed == 0 {
                    "cache"
                } else if from_memory == 0 {
                    "computed"
                } else {
                    "partial"
                };
                Ok(serde_json::json!({
                    "results": points,
                    "served_from": served_from,
                    "stats": {
                        "points": after.points - before.points,
                        "cache_hits": after.cache_hits - before.cache_hits,
                        "dedup_hits": after.dedup_hits - before.dedup_hits,
                        "points_executed": after.points_executed - before.points_executed,
                        "trials_executed": after.trials_executed - before.trials_executed,
                    },
                }))
            })
        }
        Request::Profile => {
            let snapshot = telemetry::snapshot();
            let parsed: Value = serde_json::from_str(&snapshot.to_json())
                .map_err(|e| WireError::new(ErrorCode::Internal, e.to_string()))?;
            Ok(serde_json::json!({
                "table": snapshot.profile_table(),
                "telemetry": parsed,
            }))
        }
        Request::Trace => {
            let spans = trace::recorder().recent(trace::FLIGHT_RECORDER_CAPACITY);
            let doc: Value = serde_json::from_str(&trace::chrome_trace_json(&spans))
                .map_err(|e| WireError::new(ErrorCode::Internal, e.to_string()))?;
            Ok(serde_json::json!({
                "spans": spans.len() as u64,
                "recorded": trace::recorder().recorded(),
                "trace": doc,
            }))
        }
        Request::Shutdown => Ok(serde_json::json!({ "draining": true })),
    }
}

/// Nanoseconds since `start`, saturating.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The health/progress document served at `GET /healthz`: server
/// status and counters wrapping the live telemetry snapshot (same keys
/// as the JSONL reporter sink).
fn health_json(shared: &Shared) -> String {
    let exec_stats = {
        let exec = lock_executor(shared);
        (exec.stats(), exec.cached_points(), exec.last_persist_age())
    };
    let (sweep, cached_points, persist_age) = exec_stats;
    let status = if shared.shutdown.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    // Seconds since the cache file was last compacted to disk; `null`
    // until the first persist (journal appends do not count — they are
    // durable the moment a point completes).
    let last_persist_age_s = match persist_age {
        Some(age) => format!("{:.3}", age.as_secs_f64()),
        None => String::from("null"),
    };
    let snap = telemetry::snapshot();
    // Per-op request counters, in wire-op order.
    let mut requests_by_op = String::from("{");
    for (i, op) in telemetry::SERVE_OPS.iter().enumerate() {
        if i > 0 {
            requests_by_op.push(',');
        }
        requests_by_op.push_str(&format!("\"{op}\":{}", snap.serve_requests_by_op[i]));
    }
    requests_by_op.push('}');
    format!(
        "{{\"status\":\"{status}\",\"uptime_s\":{:.3},\"connections\":{},\"requests\":{},\"http_requests\":{},\"errors\":{},\
         \"requests_by_op\":{requests_by_op},\"slow_requests_total\":{},\
         \"in_flight\":{},\"queue_depth\":{},\"last_persist_age_s\":{last_persist_age_s},\
         \"sweep\":{{\"points\":{},\"cache_hits\":{},\"dedup_hits\":{},\"points_executed\":{},\"trials_executed\":{},\"cached_points\":{cached_points}}},\
         \"telemetry\":{}}}",
        shared.started.elapsed().as_secs_f64(),
        shared.connections.load(Ordering::Relaxed),
        shared.requests.load(Ordering::Relaxed),
        shared.http_requests.load(Ordering::Relaxed),
        shared.errors.load(Ordering::Relaxed),
        snap.serve_slow_requests,
        shared.in_flight.load(Ordering::SeqCst),
        shared.queue_depth,
        sweep.points,
        sweep.cache_hits,
        sweep.dedup_hits,
        sweep.points_executed,
        sweep.trials_executed,
        snap.to_json(),
    )
}

/// Serves one HTTP GET whose first four bytes (`"GET "`) are already
/// consumed: reads the head, routes `/metrics`, `/healthz` and
/// `/debug/trace`, answers 404 otherwise, always `Connection: close`.
fn serve_http(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    // Read until the blank line ending the head (bounded: 8 KiB).
    let mut head = Vec::with_capacity(256);
    let deadline = Instant::now() + FRAME_DEADLINE;
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        if head.len() >= 8192 || Instant::now() >= deadline {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "HTTP head too large"));
        }
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let path = head.split_whitespace().next().unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            telemetry::EXPOSITION_CONTENT_TYPE,
            telemetry::exposition(),
        ),
        "/healthz" => ("200 OK", telemetry::JSON_CONTENT_TYPE, health_json(shared)),
        "/debug/trace" => (
            "200 OK",
            telemetry::JSON_CONTENT_TYPE,
            trace::chrome_trace_json(&trace::recorder().recent(trace::FLIGHT_RECORDER_CAPACITY)),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("unknown path {path:?} (try /metrics, /healthz or /debug/trace)\n"),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimSpec;

    fn tiny_spec() -> SimSpec {
        SimSpec {
            overlay_nodes: 200,
            sos_nodes: 30,
            nt: 5,
            nc: 20,
            trials: 2,
            routes: 4,
            ..SimSpec::default()
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sos-serve-server-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        p
    }

    fn test_shared(opts: &ServerOptions) -> Shared {
        let mut exec = match opts.threads {
            Some(t) => SweepExecutor::with_threads(t),
            None => SweepExecutor::new(),
        };
        if let Some(path) = &opts.cache {
            exec.attach_cache(path).expect("attach cache");
        }
        Shared::new(exec, opts, "127.0.0.1:0".parse().expect("addr"))
    }

    #[test]
    fn zero_depth_queue_sheds_with_retry_hint() {
        let opts = ServerOptions {
            threads: Some(1),
            queue_depth: 0,
            ..ServerOptions::default()
        };
        let shared = test_shared(&opts);
        let err = try_admit(&shared).expect_err("depth 0 sheds everything");
        assert_eq!(err.code, ErrorCode::Busy);
        assert!(err.retry_after_ms.is_some_and(|ms| ms >= RETRY_AFTER_SLICE_MS));
    }

    #[test]
    fn admission_permit_releases_its_slot_on_drop() {
        let opts = ServerOptions {
            threads: Some(1),
            queue_depth: 1,
            ..ServerOptions::default()
        };
        let shared = test_shared(&opts);
        let permit = try_admit(&shared).expect("first request fits");
        let shed = try_admit(&shared).expect_err("second request is shed");
        assert_eq!(shed.code, ErrorCode::Busy);
        drop(permit);
        assert!(try_admit(&shared).is_ok(), "dropped permit frees the slot");
    }

    #[test]
    fn expired_deadline_is_refused_before_computing() {
        let opts = ServerOptions { threads: Some(1), ..ServerOptions::default() };
        let shared = test_shared(&opts);
        let err = execute(
            Request::Simulate { spec: tiny_spec(), deadline_ms: Some(0) },
            &shared,
            Instant::now(),
            &mut RequestTiming::default(),
        )
        .expect_err("a zero deadline is always already expired");
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert_eq!(shared.in_flight.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn sweep_under_deadline_reports_resumable_progress() {
        let opts = ServerOptions { threads: Some(1), ..ServerOptions::default() };
        let shared = test_shared(&opts);
        let err = execute(
            Request::Sweep { specs: vec![tiny_spec(); 3], deadline_ms: Some(0) },
            &shared,
            Instant::now(),
            &mut RequestTiming::default(),
        )
        .expect_err("expired sweep deadline");
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(
            err.message.contains("0 of 3"),
            "message names progress: {}",
            err.message
        );
    }

    #[test]
    fn poisoned_lock_rebuilds_executor_from_persisted_cache() {
        let dir = tmp_dir("poison");
        let cache = dir.join("cache.json");
        let spec = tiny_spec();
        let config = spec.sim_config().expect("tiny spec builds");
        // Seed the persistent cache with one computed point.
        let baseline = {
            let mut exec = SweepExecutor::with_threads(1);
            exec.attach_cache(&cache).expect("attach");
            let result = exec.run_one(&config);
            exec.persist();
            serde_json::to_string(&result).expect("serialize")
        };
        let opts = ServerOptions {
            threads: Some(1),
            cache: Some(cache.clone()),
            ..ServerOptions::default()
        };
        let shared = Arc::new(test_shared(&opts));
        // A panicking request poisons the executor lock.
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.exec.lock().expect("not yet poisoned");
            panic!("simulated in-request panic");
        })
        .join();
        assert!(shared.exec.is_poisoned());
        // The next access rebuilds from the cache file: the lock is
        // usable again and the warm point survived the rebuild.
        {
            let mut exec = lock_executor(&shared);
            assert_eq!(exec.cached_points(), 1, "warm point reloaded from disk");
            let before = exec.stats();
            let result = exec.run_one(&config);
            assert_eq!(
                exec.stats().cache_hits,
                before.cache_hits + 1,
                "rebuilt executor answers from cache"
            );
            assert_eq!(
                serde_json::to_string(&result).expect("serialize"),
                baseline,
                "rebuilt warm answer is byte-identical"
            );
        }
        assert!(!shared.exec.is_poisoned(), "poison cleared after rebuild");
        std::fs::remove_dir_all(&dir).ok();
    }
}
