//! A minimal blocking protocol client: connect, send one request
//! frame, read one response frame. This is everything `sos client`
//! and the integration tests need to drive a daemon.
//!
//! [`RetryClient`] wraps the raw [`Client`] in a
//! [`sos_faults::RetryPolicy`]-driven reconnect-and-retry loop for
//! *idempotent* requests: transport failures reconnect, `busy`
//! shedding honors the server's `retry_after_ms` hint, and every
//! other protocol error fails fast. `shutdown` is never retried — a
//! lost shutdown response is indistinguishable from a successful
//! drain, and re-sending could kill a freshly restarted daemon.

use crate::protocol::{self, ErrorCode, Request, Response, WireError};
use crate::spec::SimSpec;
use serde_json::Value;
use sos_faults::RetryPolicy;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The server answered with a protocol error response.
    Remote(WireError),
    /// The server's bytes did not decode as a valid response.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client. One request is in flight at a time;
/// the connection is reusable for any number of requests.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and returns the response's `result` body.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server answers with an error
    /// response, [`ClientError::Io`]/[`ClientError::Protocol`] for
    /// transport or framing trouble.
    pub fn request(&mut self, request: &Request) -> Result<Value, ClientError> {
        protocol::write_value(&mut self.stream, &request.to_value())?;
        let value = protocol::read_value(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        match Response::from_value(&value).map_err(|e| ClientError::Protocol(e.to_string()))? {
            Response::Ok { result, .. } => Ok(result),
            Response::Err(e) => Err(ClientError::Remote(e)),
        }
    }

    /// `ping` — liveness and version handshake.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Ping)
    }

    /// `analyze` — closed-form analysis document for one spec.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn analyze(&mut self, spec: &SimSpec) -> Result<Value, ClientError> {
        self.request(&Request::Analyze(spec.clone()))
    }

    /// `simulate` — Monte Carlo result for one spec
    /// (`{fingerprint, cached, result}`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn simulate(&mut self, spec: &SimSpec) -> Result<Value, ClientError> {
        self.simulate_with(spec, None)
    }

    /// [`simulate`](Client::simulate) with an optional server-side
    /// deadline in milliseconds (the server sheds the request with
    /// `deadline-exceeded` instead of starting work it cannot finish
    /// in time).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn simulate_with(
        &mut self,
        spec: &SimSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        self.request(&Request::Simulate { spec: spec.clone(), deadline_ms })
    }

    /// `sweep` — Monte Carlo results for many specs as one pool
    /// submission (`{results, stats}`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn sweep(&mut self, specs: &[SimSpec]) -> Result<Value, ClientError> {
        self.sweep_with(specs, None)
    }

    /// [`sweep`](Client::sweep) with an optional server-side deadline
    /// in milliseconds. A deadline makes the server execute point by
    /// point and stop cooperatively between points once the budget is
    /// spent; completed points are already durable in the cache
    /// journal, so a retry resumes where the cancelled sweep stopped.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn sweep_with(
        &mut self,
        specs: &[SimSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        self.request(&Request::Sweep { specs: specs.to_vec(), deadline_ms })
    }

    /// `profile` — live telemetry snapshot (`{table, telemetry}`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn profile(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Profile)
    }

    /// `trace` — the flight recorder's recent spans as a Chrome
    /// trace-event document (`{spans, recorded, trace}`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn trace(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Trace)
    }

    /// `shutdown` — ask the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Shutdown)
    }
}

/// A reconnecting client that retries idempotent requests under a
/// [`RetryPolicy`] (ticks are interpreted as milliseconds here).
///
/// Retry classification per failed attempt:
///
/// - [`ClientError::Io`] / [`ClientError::Protocol`] — the connection
///   is suspect: drop it, back off, reconnect, re-send. Safe because
///   every request except `shutdown` is idempotent (`simulate` and
///   `sweep` are memoized by fingerprint, so a duplicate execution
///   returns the byte-identical cached result).
/// - [`ClientError::Remote`] with code `busy` — the server shed the
///   request under load; sleep `max(backoff, retry_after_ms)` and
///   re-send on the same connection.
/// - Any other [`ClientError::Remote`] — deterministic rejection
///   (bad spec, deadline exceeded, internal); retrying cannot help,
///   fail fast.
///
/// The policy's `deadline` bounds the *total* wall-clock budget in
/// milliseconds across all attempts (`u64::MAX` = unbounded).
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    client: Option<Client>,
    retries: u64,
}

impl RetryClient {
    /// Creates a lazily-connecting retry client for `addr`. The first
    /// connection is made by the first request (and re-made after any
    /// transport failure).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryClient {
        RetryClient { addr: addr.into(), policy, client: None, retries: 0 }
    }

    /// Total retries performed over this client's lifetime (attempts
    /// beyond the first, across all requests).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends `request`, retrying per the policy. `shutdown` requests
    /// are passed through with exactly one attempt.
    ///
    /// # Errors
    ///
    /// The last attempt's error once attempts or the deadline budget
    /// are exhausted; non-retryable errors immediately.
    pub fn request(&mut self, request: &Request) -> Result<Value, ClientError> {
        let retryable = !matches!(request, Request::Shutdown);
        let started = Instant::now();
        let mut attempt = 1u32;
        loop {
            let result = self.attempt(request);
            let err = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            // Reconnect-worthy? Transport and framing errors poison
            // the connection; `busy` does not.
            let (reconnect, server_pause_ms) = match &err {
                ClientError::Io(_) | ClientError::Protocol(_) => (true, None),
                ClientError::Remote(remote) if remote.code == ErrorCode::Busy => {
                    (false, Some(remote.retry_after_ms.unwrap_or(0)))
                }
                ClientError::Remote(_) => return Err(err),
            };
            if !retryable || attempt >= self.policy.max_attempts {
                return Err(err);
            }
            if reconnect {
                self.client = None;
            }
            attempt += 1;
            let pause_ms = self
                .policy
                .backoff_before(attempt)
                .max(server_pause_ms.unwrap_or(0));
            let spent = started.elapsed().as_millis() as u64;
            if spent.saturating_add(pause_ms) >= self.policy.deadline {
                return Err(err);
            }
            if pause_ms > 0 {
                std::thread::sleep(Duration::from_millis(pause_ms));
            }
            self.retries += 1;
            sos_observe::telemetry::serve_retry();
        }
    }

    /// One connect-if-needed + send attempt.
    fn attempt(&mut self, request: &Request) -> Result<Value, ClientError> {
        if self.client.is_none() {
            self.client = Some(Client::connect(self.addr.as_str())?);
        }
        let client = self.client.as_mut().expect("client connected above");
        client.request(request)
    }

    /// Retried [`Client::ping`].
    ///
    /// # Errors
    ///
    /// See [`request`](RetryClient::request).
    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Ping)
    }

    /// Retried [`Client::analyze`].
    ///
    /// # Errors
    ///
    /// See [`request`](RetryClient::request).
    pub fn analyze(&mut self, spec: &SimSpec) -> Result<Value, ClientError> {
        self.request(&Request::Analyze(spec.clone()))
    }

    /// Retried [`Client::profile`].
    ///
    /// # Errors
    ///
    /// See [`request`](RetryClient::request).
    pub fn profile(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Profile)
    }

    /// Retried [`Client::trace`] (idempotent: reading the flight
    /// recorder has no side effects).
    ///
    /// # Errors
    ///
    /// See [`request`](RetryClient::request).
    pub fn trace(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Trace)
    }

    /// Retried [`Client::simulate_with`].
    ///
    /// # Errors
    ///
    /// See [`request`](RetryClient::request).
    pub fn simulate_with(
        &mut self,
        spec: &SimSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        self.request(&Request::Simulate { spec: spec.clone(), deadline_ms })
    }

    /// Retried [`Client::sweep_with`].
    ///
    /// # Errors
    ///
    /// See [`request`](RetryClient::request).
    pub fn sweep_with(
        &mut self,
        specs: &[SimSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        self.request(&Request::Sweep { specs: specs.to_vec(), deadline_ms })
    }
}
