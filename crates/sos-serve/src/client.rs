//! A minimal blocking protocol client: connect, send one request
//! frame, read one response frame. This is everything `sos client`
//! and the integration tests need to drive a daemon.

use crate::protocol::{self, Request, Response, WireError};
use crate::spec::SimSpec;
use serde_json::Value;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The server answered with a protocol error response.
    Remote(WireError),
    /// The server's bytes did not decode as a valid response.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client. One request is in flight at a time;
/// the connection is reusable for any number of requests.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and returns the response's `result` body.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server answers with an error
    /// response, [`ClientError::Io`]/[`ClientError::Protocol`] for
    /// transport or framing trouble.
    pub fn request(&mut self, request: &Request) -> Result<Value, ClientError> {
        protocol::write_value(&mut self.stream, &request.to_value())?;
        let value = protocol::read_value(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        match Response::from_value(&value).map_err(|e| ClientError::Protocol(e.to_string()))? {
            Response::Ok { result, .. } => Ok(result),
            Response::Err(e) => Err(ClientError::Remote(e)),
        }
    }

    /// `ping` — liveness and version handshake.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Ping)
    }

    /// `analyze` — closed-form analysis document for one spec.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn analyze(&mut self, spec: &SimSpec) -> Result<Value, ClientError> {
        self.request(&Request::Analyze(spec.clone()))
    }

    /// `simulate` — Monte Carlo result for one spec
    /// (`{fingerprint, cached, result}`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn simulate(&mut self, spec: &SimSpec) -> Result<Value, ClientError> {
        self.request(&Request::Simulate(spec.clone()))
    }

    /// `sweep` — Monte Carlo results for many specs as one pool
    /// submission (`{results, stats}`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn sweep(&mut self, specs: &[SimSpec]) -> Result<Value, ClientError> {
        self.request(&Request::Sweep(specs.to_vec()))
    }

    /// `profile` — live telemetry snapshot (`{table, telemetry}`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn profile(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Profile)
    }

    /// `shutdown` — ask the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Shutdown)
    }
}
