//! The `sosd` wire protocol: length-prefixed JSON frames.
//!
//! A connection carries a sequence of *frames* in each direction. Every
//! frame is a 4-byte big-endian payload length followed by exactly that
//! many bytes of UTF-8 JSON. Requests and responses are single JSON
//! objects; one request frame yields exactly one response frame, in
//! order, so a client may pipeline. The full field-by-field reference
//! (with a byte-level worked example) lives in `PROTOCOL.md` at the
//! repository root; this module is its executable counterpart.
//!
//! The same listener also answers plain-HTTP `GET /metrics` and
//! `GET /healthz`: the server sniffs the first four bytes of a
//! connection and treats [`HTTP_GET_PREFIX`] as the start of an HTTP
//! request instead of a length prefix (`"GET "` would decode as a
//! 1.19 GiB frame, far above [`MAX_FRAME_LEN`], so the two grammars
//! cannot collide).

use crate::spec::{SimSpec, SpecError};
use serde_json::Value;
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version carried in every request and response (`"v"`).
///
/// Versioning rule: the version bumps only when an existing field
/// changes meaning or shape. *Adding* request kinds, response fields or
/// error codes is backward compatible and does not bump it; clients
/// must ignore response fields they do not know.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame payload (16 MiB). A peer announcing a larger
/// frame is malformed (or speaking another protocol); the server
/// answers [`ErrorCode::BadFrame`] and closes, since the stream cannot
/// be resynchronized.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// First four bytes of an HTTP GET, used to sniff scrapers on the
/// daemon port.
pub const HTTP_GET_PREFIX: [u8; 4] = *b"GET ";

/// Machine-readable error class of a failed request, carried in
/// `error.code`. The string forms are part of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Length prefix exceeds [`MAX_FRAME_LEN`] or the frame body ended
    /// early; the connection is closed after this error.
    BadFrame,
    /// Frame payload is not valid JSON.
    BadJson,
    /// Payload is valid JSON but not a valid request object (not an
    /// object, missing/mistyped `v` or `op`, malformed `spec`/`specs`
    /// containers).
    BadRequest,
    /// `v` names a protocol version this server does not speak.
    BadVersion,
    /// `op` is not a known request kind.
    UnknownOp,
    /// The experiment spec was rejected (unknown field, bad label,
    /// inconsistent topology, zero trial/route counts).
    BadSpec,
    /// The server's bounded admission queue is full; the request was
    /// shed without touching the executor. The error object carries
    /// `retry_after_ms` — a hint for when to try again. Always safe to
    /// retry (the shed request had no side effects).
    Busy,
    /// The request's `deadline_ms` expired before (or while) the
    /// server could finish it. Sweep points completed before expiry
    /// are already journaled in the cache, so a retry resumes instead
    /// of restarting.
    DeadlineExceeded,
    /// The server failed internally while executing a valid request.
    Internal,
}

impl ErrorCode {
    /// The wire form of the code (e.g. `bad-spec`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::BadSpec => "bad-spec",
            ErrorCode::Busy => "busy",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire code; `None` for codes this build does not know
    /// (a newer server may add codes — treat them as [`Internal`]).
    ///
    /// [`Internal`]: ErrorCode::Internal
    pub fn parse(raw: &str) -> Option<Self> {
        Some(match raw {
            "bad-frame" => ErrorCode::BadFrame,
            "bad-json" => ErrorCode::BadJson,
            "bad-request" => ErrorCode::BadRequest,
            "bad-version" => ErrorCode::BadVersion,
            "unknown-op" => ErrorCode::UnknownOp,
            "bad-spec" => ErrorCode::BadSpec,
            "busy" => ErrorCode::Busy,
            "deadline-exceeded" => ErrorCode::DeadlineExceeded,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol-level error: the `error` object of a failed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail (the same messages the CLI prints for the
    /// equivalent mistake).
    pub message: String,
    /// Backoff hint carried by [`ErrorCode::Busy`] responses: how many
    /// milliseconds the client should wait before retrying. Absent on
    /// every other code.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError { code, message: message.into(), retry_after_ms: None }
    }

    /// A [`Busy`](ErrorCode::Busy) error with its backoff hint.
    pub fn busy(message: impl Into<String>, retry_after_ms: u64) -> Self {
        WireError {
            code: ErrorCode::Busy,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (retry after {ms} ms)")?;
        }
        Ok(())
    }
}

impl std::error::Error for WireError {}

impl From<SpecError> for WireError {
    fn from(e: SpecError) -> Self {
        WireError::new(ErrorCode::BadSpec, e.to_string())
    }
}

/// A request frame, decoded. Each variant maps 1:1 to an `op` string.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / version handshake; carries no parameters.
    Ping,
    /// Closed-form analysis of one spec.
    Analyze(SimSpec),
    /// Monte Carlo simulation of one spec, answered through the shared
    /// sweep executor (content-addressed: repeats are cache hits).
    /// `deadline_ms` bounds how long the server may spend — queueing
    /// included — before answering [`ErrorCode::DeadlineExceeded`].
    Simulate {
        /// The experiment to run.
        spec: SimSpec,
        /// Optional server-side deadline, in milliseconds from receipt.
        deadline_ms: Option<u64>,
    },
    /// Monte Carlo simulation of many specs. The server checks the
    /// deadline cooperatively *between* points, so an expired sweep
    /// frees the executor instead of running to completion (points
    /// already finished stay journaled in the cache).
    Sweep {
        /// The experiment grid to run.
        specs: Vec<SimSpec>,
        /// Optional server-side deadline, in milliseconds from receipt.
        deadline_ms: Option<u64>,
    },
    /// Current telemetry snapshot: per-phase profile table + counters.
    Profile,
    /// The flight recorder's recent spans as a Chrome trace-event
    /// document (same bytes as `GET /debug/trace`); no parameters.
    Trace,
    /// Begin graceful shutdown: stop accepting, drain in-flight
    /// requests, persist the sweep cache.
    Shutdown,
}

impl Request {
    /// The wire `op` string of this request kind.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Analyze(_) => "analyze",
            Request::Simulate { .. } => "simulate",
            Request::Sweep { .. } => "sweep",
            Request::Profile => "profile",
            Request::Trace => "trace",
            Request::Shutdown => "shutdown",
        }
    }

    /// Encodes the request as its wire JSON object.
    pub fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = vec![
            ("v".into(), Value::U64(PROTOCOL_VERSION)),
            ("op".into(), Value::Str(self.op().into())),
        ];
        match self {
            Request::Ping | Request::Profile | Request::Trace | Request::Shutdown => {}
            Request::Analyze(spec) => {
                entries.push(("spec".into(), spec.to_value()));
            }
            Request::Simulate { spec, deadline_ms } => {
                entries.push(("spec".into(), spec.to_value()));
                if let Some(ms) = deadline_ms {
                    entries.push(("deadline_ms".into(), Value::U64(*ms)));
                }
            }
            Request::Sweep { specs, deadline_ms } => {
                entries.push((
                    "specs".into(),
                    Value::Seq(specs.iter().map(SimSpec::to_value).collect()),
                ));
                if let Some(ms) = deadline_ms {
                    entries.push(("deadline_ms".into(), Value::U64(*ms)));
                }
            }
        }
        Value::Map(entries)
    }

    /// Decodes a request from its wire JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] with the matching [`ErrorCode`]
    /// (`bad-request`, `bad-version`, `unknown-op`, `bad-spec`).
    pub fn from_value(value: &Value) -> Result<Request, WireError> {
        let entries = value.as_map().ok_or_else(|| {
            WireError::new(ErrorCode::BadRequest, "request must be a JSON object")
        })?;
        let field = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let v = field("v")
            .and_then(Value::as_u64)
            .ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "request field `v` must be an integer")
            })?;
        if v != PROTOCOL_VERSION {
            return Err(WireError::new(
                ErrorCode::BadVersion,
                format!("protocol version {v} not supported (this server speaks {PROTOCOL_VERSION})"),
            ));
        }
        let op = field("op")
            .and_then(Value::as_str)
            .ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "request field `op` must be a string")
            })?;
        let spec = || -> Result<SimSpec, WireError> {
            let raw = field("spec").ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, format!("op `{op}` requires a `spec` object"))
            })?;
            Ok(SimSpec::from_value(raw)?)
        };
        let deadline_ms = || -> Result<Option<u64>, WireError> {
            match field("deadline_ms") {
                None => Ok(None),
                Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                    WireError::new(
                        ErrorCode::BadRequest,
                        "request field `deadline_ms` must be a non-negative integer",
                    )
                }),
            }
        };
        match op {
            "ping" => Ok(Request::Ping),
            "profile" => Ok(Request::Profile),
            "trace" => Ok(Request::Trace),
            "shutdown" => Ok(Request::Shutdown),
            "analyze" => Ok(Request::Analyze(spec()?)),
            "simulate" => Ok(Request::Simulate { spec: spec()?, deadline_ms: deadline_ms()? }),
            "sweep" => {
                let raw = field("specs").and_then(Value::as_array).ok_or_else(|| {
                    WireError::new(
                        ErrorCode::BadRequest,
                        "op `sweep` requires a `specs` array",
                    )
                })?;
                let specs = raw
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        SimSpec::from_value(v).map_err(|e| {
                            WireError::new(ErrorCode::BadSpec, format!("specs[{i}]: {e}"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Sweep { specs, deadline_ms: deadline_ms()? })
            }
            other => Err(WireError::new(
                ErrorCode::UnknownOp,
                format!("unknown op `{other}` (ping | analyze | simulate | sweep | profile | trace | shutdown)"),
            )),
        }
    }
}

/// A response frame, decoded: a successful result or a protocol error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success: the op echoed back plus its op-specific result body.
    Ok {
        /// The request's `op`, echoed.
        op: String,
        /// Op-specific result object (see `PROTOCOL.md`).
        result: Value,
    },
    /// Failure: the request produced no result.
    Err(WireError),
}

impl Response {
    /// Encodes the response as its wire JSON object.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Ok { op, result } => Value::Map(vec![
                ("v".into(), Value::U64(PROTOCOL_VERSION)),
                ("ok".into(), Value::Bool(true)),
                ("op".into(), Value::Str(op.clone())),
                ("result".into(), result.clone()),
            ]),
            Response::Err(e) => {
                let mut error = vec![
                    ("code".to_string(), Value::Str(e.code.as_str().into())),
                    ("message".to_string(), Value::Str(e.message.clone())),
                ];
                if let Some(ms) = e.retry_after_ms {
                    error.push(("retry_after_ms".to_string(), Value::U64(ms)));
                }
                Value::Map(vec![
                    ("v".into(), Value::U64(PROTOCOL_VERSION)),
                    ("ok".into(), Value::Bool(false)),
                    ("error".into(), Value::Map(error)),
                ])
            }
        }
    }

    /// Decodes a response from its wire JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] (`bad-request`) when the value is not a
    /// well-formed response object. An unrecognized `error.code` from a
    /// newer server decodes as [`ErrorCode::Internal`].
    pub fn from_value(value: &Value) -> Result<Response, WireError> {
        let entries = value.as_map().ok_or_else(|| {
            WireError::new(ErrorCode::BadRequest, "response must be a JSON object")
        })?;
        let field = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ok = match field("ok") {
            Some(Value::Bool(b)) => *b,
            _ => {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    "response field `ok` must be a boolean",
                ))
            }
        };
        if ok {
            let op = field("op")
                .and_then(Value::as_str)
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "response field `op` must be a string")
                })?
                .to_string();
            let result = field("result")
                .cloned()
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "response is missing `result`")
                })?;
            Ok(Response::Ok { op, result })
        } else {
            let error = field("error").and_then(Value::as_map).ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "response is missing `error`")
            })?;
            let get = |key: &str| {
                error
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_str())
                    .unwrap_or("")
                    .to_string()
            };
            let code = ErrorCode::parse(&get("code")).unwrap_or(ErrorCode::Internal);
            let retry_after_ms = error
                .iter()
                .find(|(k, _)| k == "retry_after_ms")
                .and_then(|(_, v)| v.as_u64());
            Ok(Response::Err(WireError {
                code,
                message: get("message"),
                retry_after_ms,
            }))
        }
    }
}

/// Interprets a 4-byte length prefix: the payload length it announces.
///
/// # Errors
///
/// Returns [`ErrorCode::BadFrame`] when the announced length exceeds
/// [`MAX_FRAME_LEN`].
pub fn frame_len(prefix: [u8; 4]) -> Result<usize, WireError> {
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::new(
            ErrorCode::BadFrame,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"),
        ));
    }
    Ok(len)
}

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_LEN`] as
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit", payload.len()),
        ));
    }
    // One write for prefix + payload: two writes would let Nagle hold
    // the payload back until the peer ACKs the 4-byte prefix — a
    // ~40 ms delayed-ACK stall per frame on loopback.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Serializes a JSON value and writes it as one frame.
///
/// # Errors
///
/// Propagates [`write_frame`] errors.
pub fn write_value(w: &mut dyn Write, value: &Value) -> io::Result<()> {
    let text = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(w, text.as_bytes())
}

/// Reads one frame payload. Returns `Ok(None)` on clean EOF at a frame
/// boundary (the peer hung up between requests — not an error).
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] for EOF mid-frame,
/// [`io::ErrorKind::InvalidData`] for an oversized length prefix, and
/// any transport error.
pub fn read_frame(r: &mut dyn Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => filled += n,
        }
    }
    let len = frame_len(prefix)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads one frame and parses it as a JSON value. `Ok(None)` on clean
/// EOF, like [`read_frame`].
///
/// # Errors
///
/// [`read_frame`] errors, plus [`io::ErrorKind::InvalidData`] when the
/// payload is not valid JSON.
pub fn read_value(r: &mut dyn Read) -> io::Result<Option<Value>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"a\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"{\"a\":1}");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // 4-byte prefix + 2 of 5 payload bytes
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // EOF inside the prefix itself is also mid-frame.
        let mut cursor = io::Cursor::new(vec![0u8, 0, 1]);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let prefix = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes();
        let err = frame_len(prefix).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadFrame);
        // The HTTP sniff byte pattern also decodes as an oversized
        // frame, so the grammars cannot alias.
        assert!(frame_len(HTTP_GET_PREFIX).is_err());
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &huge).is_err());
    }

    #[test]
    fn request_encodings_round_trip() {
        let requests = [
            Request::Ping,
            Request::Profile,
            Request::Trace,
            Request::Shutdown,
            Request::Analyze(SimSpec::default()),
            Request::Simulate {
                spec: SimSpec { trials: 7, ..SimSpec::default() },
                deadline_ms: None,
            },
            Request::Simulate {
                spec: SimSpec::default(),
                deadline_ms: Some(1_500),
            },
            Request::Sweep {
                specs: vec![SimSpec::default(), SimSpec { seed: 3, ..SimSpec::default() }],
                deadline_ms: None,
            },
            Request::Sweep {
                specs: vec![SimSpec::default()],
                deadline_ms: Some(30_000),
            },
        ];
        for req in requests {
            let text = serde_json::to_string(&req.to_value()).unwrap();
            let back = Request::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn request_decode_errors_carry_the_right_code() {
        let decode = |text: &str| Request::from_value(&serde_json::from_str(text).unwrap());
        assert_eq!(decode("[1]").unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(decode("{\"op\":\"ping\"}").unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(decode("{\"v\":9,\"op\":\"ping\"}").unwrap_err().code, ErrorCode::BadVersion);
        assert_eq!(decode("{\"v\":1,\"op\":\"dance\"}").unwrap_err().code, ErrorCode::UnknownOp);
        assert_eq!(decode("{\"v\":1,\"op\":\"simulate\"}").unwrap_err().code, ErrorCode::BadRequest);
        assert_eq!(
            decode("{\"v\":1,\"op\":\"simulate\",\"spec\":{\"tirals\":1}}").unwrap_err().code,
            ErrorCode::BadSpec
        );
        assert_eq!(
            decode("{\"v\":1,\"op\":\"sweep\",\"specs\":[{\"mapping\":3}]}").unwrap_err().code,
            ErrorCode::BadSpec
        );
    }

    #[test]
    fn response_encodings_round_trip() {
        let ok = Response::Ok {
            op: "ping".into(),
            result: serde_json::json!({"server": "sosd"}),
        };
        let err = Response::Err(WireError::new(ErrorCode::BadSpec, "unknown spec field `x`"));
        let busy = Response::Err(WireError::busy("admission queue full", 250));
        for resp in [ok, err, busy] {
            let text = serde_json::to_string(&resp.to_value()).unwrap();
            let back = Response::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn unknown_error_codes_degrade_to_internal() {
        let text = r#"{"v":1,"ok":false,"error":{"code":"too-new","message":"m"}}"#;
        let resp = Response::from_value(&serde_json::from_str(text).unwrap()).unwrap();
        match resp {
            Response::Err(e) => {
                assert_eq!(e.code, ErrorCode::Internal);
                assert_eq!(e.message, "m");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }
}
