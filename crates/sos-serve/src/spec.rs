//! The shared experiment-description grammar: one flat [`SimSpec`]
//! per analysis/simulation point, with the exact field names, value
//! grammar and defaults of the `sos` CLI flags.
//!
//! The CLI parses `--mapping one-to-5 --faults loss=0.2` from argv;
//! the wire protocol parses `{"mapping":"one-to-5","faults":"loss=0.2"}`
//! from JSON. Both routes converge on this module, so a config
//! described over the wire builds the *same* [`SimulationConfig`]
//! (same content fingerprint, same sweep-cache entry) as the same
//! config described with flags — the property the `serve-smoke` CI job
//! diffs for.

use sos_analysis::{OneBurstAnalysis, SuccessiveAnalysis};
use sos_core::{
    AttackBudget, AttackConfig, MappingDegree, NodeDistribution, PathEvaluator, Scenario,
    SuccessiveParams, SystemParams,
};
use sos_sim::engine::{SimulationConfig, TransportKind};
use sos_sim::routing::RoutingPolicy;
use std::fmt;

/// A spec or protocol-field validation error with a user-facing
/// message (the same messages the CLI prints for the equivalent flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

/// Parses a mapping-degree label: `one-to-one`, `one-to-K`,
/// `one-to-half`, `one-to-all`.
///
/// # Errors
///
/// Returns [`SpecError`] for an unrecognized label.
pub fn parse_mapping(raw: &str) -> Result<MappingDegree, SpecError> {
    match raw {
        "one-to-one" | "one-to-1" => Ok(MappingDegree::ONE_TO_ONE),
        "one-to-half" => Ok(MappingDegree::OneToHalf),
        "one-to-all" => Ok(MappingDegree::OneToAll),
        other => {
            if let Some(k) = other.strip_prefix("one-to-") {
                let k: u64 = k.parse().map_err(|_| {
                    SpecError(format!("unrecognized mapping `{other}`"))
                })?;
                Ok(MappingDegree::OneTo(k))
            } else {
                Err(SpecError(format!(
                    "unrecognized mapping `{other}` (try one-to-one, one-to-5, one-to-half, one-to-all)"
                )))
            }
        }
    }
}

/// Parses a node-distribution label: `even | increasing | decreasing`.
///
/// # Errors
///
/// Returns [`SpecError`] for an unrecognized label.
pub fn parse_distribution(raw: &str) -> Result<NodeDistribution, SpecError> {
    match raw {
        "even" => Ok(NodeDistribution::Even),
        "increasing" => Ok(NodeDistribution::Increasing),
        "decreasing" => Ok(NodeDistribution::Decreasing),
        other => Err(SpecError(format!(
            "unrecognized distribution `{other}` (even | increasing | decreasing)"
        ))),
    }
}

/// Parses a closed-form evaluator label: `binomial | hypergeometric`.
///
/// # Errors
///
/// Returns [`SpecError`] for an unrecognized label.
pub fn parse_evaluator(raw: &str) -> Result<PathEvaluator, SpecError> {
    match raw {
        "binomial" => Ok(PathEvaluator::Binomial),
        "hypergeometric" => Ok(PathEvaluator::Hypergeometric),
        other => Err(SpecError(format!(
            "unrecognized evaluator `{other}` (binomial | hypergeometric)"
        ))),
    }
}

/// Parses a routing-policy label: `random-good | first-good |
/// backtracking`.
///
/// # Errors
///
/// Returns [`SpecError`] for an unrecognized label.
pub fn parse_policy(raw: &str) -> Result<RoutingPolicy, SpecError> {
    match raw {
        "random-good" => Ok(RoutingPolicy::RandomGood),
        "first-good" => Ok(RoutingPolicy::FirstGood),
        "backtracking" => Ok(RoutingPolicy::Backtracking),
        other => Err(SpecError(format!("unknown policy `{other}`"))),
    }
}

/// Parses a transport label: `direct | chord`.
///
/// # Errors
///
/// Returns [`SpecError`] for an unrecognized label.
pub fn parse_transport(raw: &str) -> Result<TransportKind, SpecError> {
    match raw {
        "direct" => Ok(TransportKind::Direct),
        "chord" => Ok(TransportKind::Chord),
        other => Err(SpecError(format!("unknown transport `{other}`"))),
    }
}

/// Parses a fault-plane spec: either a bare loss rate (`0.2`) or a
/// comma list of `key=value` pairs (`loss=0.2,delay=0.1,delay-ticks=4,
/// crash=0.01,slow=0.05,slow-ticks=2,misroute=0.02,seed=7`).
///
/// # Errors
///
/// Returns [`SpecError`] for unknown keys or out-of-range rates.
pub fn parse_faults(raw: &str) -> Result<sos_faults::FaultConfig, SpecError> {
    let mut cfg = sos_faults::FaultConfig::none();
    if let Ok(loss) = raw.parse::<f64>() {
        if !(0.0..=1.0).contains(&loss) {
            return Err(SpecError(format!("--faults: loss rate {loss} not in [0, 1]")));
        }
        return Ok(cfg.loss(loss));
    }
    let mut delay = (0.0f64, 4u64);
    let mut slow = (0.0f64, 2u64);
    for pair in raw.split(',') {
        let (key, value) = pair.split_once('=').ok_or_else(|| {
            SpecError(format!(
                "--faults: expected key=value, got `{pair}` \
                 (keys: loss delay delay-ticks crash slow slow-ticks misroute seed)"
            ))
        })?;
        let rate = |v: &str| -> Result<f64, SpecError> {
            let r: f64 = v
                .parse()
                .map_err(|e| SpecError(format!("--faults: {key}={v}: {e}")))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(SpecError(format!("--faults: {key}={r} not in [0, 1]")));
            }
            Ok(r)
        };
        let ticks = |v: &str| -> Result<u64, SpecError> {
            v.parse()
                .map_err(|e| SpecError(format!("--faults: {key}={v}: {e}")))
        };
        match key.trim() {
            "loss" => cfg = cfg.loss(rate(value)?),
            "delay" => delay.0 = rate(value)?,
            "delay-ticks" => delay.1 = ticks(value)?,
            "crash" => cfg = cfg.crash(rate(value)?),
            "slow" => slow.0 = rate(value)?,
            "slow-ticks" => slow.1 = ticks(value)?,
            "misroute" => cfg = cfg.misroute(rate(value)?),
            "seed" => cfg = cfg.seed(ticks(value)?),
            other => {
                return Err(SpecError(format!(
                    "--faults: unknown key `{other}` \
                     (keys: loss delay delay-ticks crash slow slow-ticks misroute seed)"
                )))
            }
        }
    }
    Ok(cfg.delay(delay.0, delay.1).slow(slow.0, slow.1))
}

/// Parses a retry spec: either a bare attempt count (`4`) or a comma
/// list of `key=value` pairs (`attempts=4,backoff=1,deadline=64`).
///
/// # Errors
///
/// Returns [`SpecError`] for unknown keys or a zero attempt count.
pub fn parse_retry(raw: &str) -> Result<sos_faults::RetryPolicy, SpecError> {
    if let Ok(attempts) = raw.parse::<u32>() {
        if attempts == 0 {
            return Err(SpecError("--retry: need at least one attempt".into()));
        }
        return Ok(sos_faults::RetryPolicy::new(attempts, 1, u64::MAX));
    }
    let mut attempts = 1u32;
    let mut backoff = 1u64;
    let mut deadline = u64::MAX;
    for pair in raw.split(',') {
        let (key, value) = pair.split_once('=').ok_or_else(|| {
            SpecError(format!(
                "--retry: expected key=value, got `{pair}` (keys: attempts backoff deadline)"
            ))
        })?;
        match key.trim() {
            "attempts" => {
                attempts = value
                    .parse()
                    .map_err(|e| SpecError(format!("--retry: attempts={value}: {e}")))?;
                if attempts == 0 {
                    return Err(SpecError("--retry: need at least one attempt".into()));
                }
            }
            "backoff" => {
                backoff = value
                    .parse()
                    .map_err(|e| SpecError(format!("--retry: backoff={value}: {e}")))?;
            }
            "deadline" => {
                deadline = value
                    .parse()
                    .map_err(|e| SpecError(format!("--retry: deadline={value}: {e}")))?;
            }
            other => {
                return Err(SpecError(format!(
                    "--retry: unknown key `{other}` (keys: attempts backoff deadline)"
                )))
            }
        }
    }
    Ok(sos_faults::RetryPolicy::new(attempts, backoff, deadline))
}

/// One experiment point, flat and stringly-typed: every field mirrors
/// the CLI flag of the same name, every default is the CLI default
/// (which is the paper's). `Default` gives the paper configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Total overlay population `N` (`--overlay-nodes`).
    pub overlay_nodes: u64,
    /// SOS nodes `n` (`--sos-nodes`).
    pub sos_nodes: u64,
    /// Break-in success probability `P_B` (`--pb`).
    pub pb: f64,
    /// Filter count (`--filters`).
    pub filters: u64,
    /// Number of layers `L` (`--layers`).
    pub layers: u64,
    /// Mapping-degree label (`--mapping`), e.g. `one-to-2`.
    pub mapping: String,
    /// Node-distribution label (`--distribution`).
    pub distribution: String,
    /// Closed-form evaluator label (`--evaluator`); analyze only.
    pub evaluator: String,
    /// Attack model label (`--model`): `one-burst | successive`.
    pub model: String,
    /// Break-in budget `N_T` (`--nt`).
    pub nt: u64,
    /// Congestion budget `N_C` (`--nc`).
    pub nc: u64,
    /// Successive-attack rounds `R` (`--rounds`).
    pub rounds: u32,
    /// Prior first-layer knowledge `P_E` (`--pe`).
    pub pe: f64,
    /// Attacked overlays (`--trials`); simulate/sweep only.
    pub trials: u64,
    /// Routes per trial (`--routes`).
    pub routes: u64,
    /// Master seed (`--seed`).
    pub seed: u64,
    /// Routing-policy label (`--policy`).
    pub policy: String,
    /// Transport label (`--transport`).
    pub transport: String,
    /// Fault-plane spec (`--faults` grammar), absent = fault-free.
    pub faults: Option<String>,
    /// Retry spec (`--retry` grammar), absent = no retries.
    pub retry: Option<String>,
}

impl Default for SimSpec {
    fn default() -> Self {
        SimSpec {
            overlay_nodes: 10_000,
            sos_nodes: 100,
            pb: 0.5,
            filters: 10,
            layers: 3,
            mapping: "one-to-2".into(),
            distribution: "even".into(),
            evaluator: "binomial".into(),
            model: "successive".into(),
            nt: 200,
            nc: 2_000,
            rounds: 3,
            pe: 0.2,
            trials: 100,
            routes: 100,
            seed: 0,
            policy: "random-good".into(),
            transport: "direct".into(),
            faults: None,
            retry: None,
        }
    }
}

impl SimSpec {
    /// Parses a spec from a JSON object. Every field is optional
    /// (missing = the paper default); unknown keys are rejected, the
    /// wire equivalent of the CLI's unknown-flag check.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for a non-object value, an unknown key,
    /// or a field of the wrong JSON type.
    pub fn from_value(value: &serde_json::Value) -> Result<Self, SpecError> {
        let entries = value
            .as_map()
            .ok_or_else(|| SpecError("spec must be a JSON object".into()))?;
        let mut spec = SimSpec::default();
        for (key, v) in entries {
            let u64_field = |v: &serde_json::Value| {
                v.as_u64()
                    .ok_or_else(|| SpecError(format!("spec field `{key}` must be a non-negative integer")))
            };
            let f64_field = |v: &serde_json::Value| {
                v.as_f64()
                    .ok_or_else(|| SpecError(format!("spec field `{key}` must be a number")))
            };
            let str_field = |v: &serde_json::Value| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| SpecError(format!("spec field `{key}` must be a string")))
            };
            match key.as_str() {
                "overlay_nodes" => spec.overlay_nodes = u64_field(v)?,
                "sos_nodes" => spec.sos_nodes = u64_field(v)?,
                "pb" => spec.pb = f64_field(v)?,
                "filters" => spec.filters = u64_field(v)?,
                "layers" => spec.layers = u64_field(v)?,
                "mapping" => spec.mapping = str_field(v)?,
                "distribution" => spec.distribution = str_field(v)?,
                "evaluator" => spec.evaluator = str_field(v)?,
                "model" => spec.model = str_field(v)?,
                "nt" => spec.nt = u64_field(v)?,
                "nc" => spec.nc = u64_field(v)?,
                "rounds" => {
                    spec.rounds = u32::try_from(u64_field(v)?)
                        .map_err(|_| SpecError("spec field `rounds` out of range".into()))?
                }
                "pe" => spec.pe = f64_field(v)?,
                "trials" => spec.trials = u64_field(v)?,
                "routes" => spec.routes = u64_field(v)?,
                "seed" => spec.seed = u64_field(v)?,
                "policy" => spec.policy = str_field(v)?,
                "transport" => spec.transport = str_field(v)?,
                "faults" => spec.faults = Some(str_field(v)?),
                "retry" => spec.retry = Some(str_field(v)?),
                other => return Err(SpecError(format!("unknown spec field `{other}`"))),
            }
        }
        Ok(spec)
    }

    /// Renders the spec as a JSON object (the request encoding).
    /// `faults`/`retry` are emitted only when set, so
    /// [`from_value`](Self::from_value) round-trips exactly.
    pub fn to_value(&self) -> serde_json::Value {
        let mut entries: Vec<(String, serde_json::Value)> = vec![
            ("overlay_nodes".into(), serde_json::Value::U64(self.overlay_nodes)),
            ("sos_nodes".into(), serde_json::Value::U64(self.sos_nodes)),
            ("pb".into(), serde_json::Value::F64(self.pb)),
            ("filters".into(), serde_json::Value::U64(self.filters)),
            ("layers".into(), serde_json::Value::U64(self.layers)),
            ("mapping".into(), serde_json::Value::Str(self.mapping.clone())),
            ("distribution".into(), serde_json::Value::Str(self.distribution.clone())),
            ("evaluator".into(), serde_json::Value::Str(self.evaluator.clone())),
            ("model".into(), serde_json::Value::Str(self.model.clone())),
            ("nt".into(), serde_json::Value::U64(self.nt)),
            ("nc".into(), serde_json::Value::U64(self.nc)),
            ("rounds".into(), serde_json::Value::U64(self.rounds.into())),
            ("pe".into(), serde_json::Value::F64(self.pe)),
            ("trials".into(), serde_json::Value::U64(self.trials)),
            ("routes".into(), serde_json::Value::U64(self.routes)),
            ("seed".into(), serde_json::Value::U64(self.seed)),
            ("policy".into(), serde_json::Value::Str(self.policy.clone())),
            ("transport".into(), serde_json::Value::Str(self.transport.clone())),
        ];
        if let Some(faults) = &self.faults {
            entries.push(("faults".into(), serde_json::Value::Str(faults.clone())));
        }
        if let Some(retry) = &self.retry {
            entries.push(("retry".into(), serde_json::Value::Str(retry.clone())));
        }
        serde_json::Value::Map(entries)
    }

    /// Builds the validated [`Scenario`] this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when a label does not parse or the
    /// topology is inconsistent (e.g. more layers than SOS nodes).
    pub fn scenario(&self) -> Result<Scenario, SpecError> {
        let system = SystemParams::new(self.overlay_nodes, self.sos_nodes, self.pb)
            .map_err(|e| SpecError(e.to_string()))?;
        Scenario::builder()
            .system(system)
            .layers(usize::try_from(self.layers).map_err(|_| {
                SpecError("spec field `layers` out of range".into())
            })?)
            .distribution(parse_distribution(&self.distribution)?)
            .mapping(parse_mapping(&self.mapping)?)
            .filters(self.filters)
            .build()
            .map_err(|e| SpecError(e.to_string()))
    }

    /// Builds the [`AttackConfig`] this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for an unknown model label or invalid
    /// successive-attack parameters.
    pub fn attack(&self) -> Result<AttackConfig, SpecError> {
        let budget = AttackBudget::new(self.nt, self.nc);
        match self.model.as_str() {
            "one-burst" => Ok(AttackConfig::OneBurst { budget }),
            "successive" => Ok(AttackConfig::Successive {
                budget,
                params: SuccessiveParams::new(self.rounds, self.pe)
                    .map_err(|e| SpecError(e.to_string()))?,
            }),
            other => Err(SpecError(format!("unknown model `{other}`"))),
        }
    }

    /// The closed-form evaluator this spec selects (analyze requests).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for an unknown evaluator label.
    pub fn evaluator(&self) -> Result<PathEvaluator, SpecError> {
        parse_evaluator(&self.evaluator)
    }

    /// Builds the full Monte Carlo [`SimulationConfig`] — the value
    /// whose content fingerprint keys the sweep cache.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when any label or count is invalid
    /// (including the zero trial/route counts the engine would panic
    /// on — a daemon validates, it does not panic).
    pub fn sim_config(&self) -> Result<SimulationConfig, SpecError> {
        if self.trials == 0 {
            return Err(SpecError("spec field `trials`: at least one trial is required".into()));
        }
        if self.routes == 0 {
            return Err(SpecError("spec field `routes`: at least one route per trial is required".into()));
        }
        let faults = match &self.faults {
            None => sos_faults::FaultConfig::none(),
            Some(raw) => parse_faults(raw)?,
        };
        let retry = match &self.retry {
            None => sos_faults::RetryPolicy::none(),
            Some(raw) => parse_retry(raw)?,
        };
        Ok(SimulationConfig::new(self.scenario()?, self.attack()?)
            .trials(self.trials)
            .routes_per_trial(self.routes)
            .seed(self.seed)
            .policy(parse_policy(&self.policy)?)
            .transport(parse_transport(&self.transport)?)
            .faults(faults)
            .retry(retry))
    }
}

/// The numbers a closed-form analysis produces for one spec — shared
/// by the CLI's `analyze` command and the daemon's `analyze` request
/// so both emit identical documents.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeOutcome {
    /// Overall attack success probability `P_S`.
    pub ps: f64,
    /// Per-layer success probabilities (last entry = filters).
    pub per_layer: Vec<f64>,
    /// Expected number of broken-in nodes.
    pub expected_broken: f64,
    /// Expected number of congested nodes.
    pub expected_congested: f64,
}

/// Runs the closed-form analysis for a scenario/attack pair.
///
/// # Errors
///
/// Returns [`SpecError`] when the analysis rejects the configuration.
pub fn analyze_outcome(
    scenario: &Scenario,
    attack: &AttackConfig,
    evaluator: PathEvaluator,
) -> Result<AnalyzeOutcome, SpecError> {
    let (ps, per_layer, expected_broken, expected_congested) = match *attack {
        AttackConfig::OneBurst { budget } => {
            let report = OneBurstAnalysis::new(scenario, budget)
                .map_err(|e| SpecError(e.to_string()))?
                .run();
            (
                report.success_probability(evaluator).value(),
                report.layer_successes(evaluator),
                report.total_broken,
                report.congested.iter().sum::<f64>(),
            )
        }
        AttackConfig::Successive { budget, params } => {
            let report = SuccessiveAnalysis::new(scenario, budget, params)
                .map_err(|e| SpecError(e.to_string()))?
                .run();
            (
                report.success_probability(evaluator).value(),
                report.layer_successes(evaluator),
                report.total_broken,
                report.congested.iter().sum::<f64>(),
            )
        }
    };
    Ok(AnalyzeOutcome { ps, per_layer, expected_broken, expected_congested })
}

/// The machine-readable analyze document (manifest + result): the one
/// encoding shared by `sos analyze --json 1` and the daemon's
/// `analyze` response, so the two are byte-identical for the same
/// configuration.
pub fn analyze_doc(
    scenario: &Scenario,
    attack: &AttackConfig,
    evaluator: PathEvaluator,
    outcome: &AnalyzeOutcome,
) -> serde_json::Value {
    serde_json::json!({
        "scenario": scenario,
        "attack": attack,
        "evaluator": evaluator,
        "ps": outcome.ps,
        "per_layer_success": outcome.per_layer,
        "expected_broken": outcome.expected_broken,
        "expected_congested": outcome.expected_congested,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_builds_the_paper_config() {
        let spec = SimSpec::default();
        let scenario = spec.scenario().unwrap();
        assert_eq!(scenario.topology().layer_count(), 3);
        assert_eq!(scenario.topology().total_sos_nodes(), 100);
        assert!(matches!(spec.attack().unwrap(), AttackConfig::Successive { .. }));
        spec.sim_config().unwrap();
    }

    #[test]
    fn value_round_trip_preserves_every_field() {
        let spec = SimSpec {
            overlay_nodes: 1_000,
            mapping: "one-to-5".into(),
            model: "one-burst".into(),
            nt: 60,
            nc: 120,
            trials: 2,
            routes: 20,
            seed: 13,
            transport: "chord".into(),
            faults: Some("loss=0.2,seed=13".into()),
            retry: Some("attempts=3,backoff=2".into()),
            ..SimSpec::default()
        };
        let round = SimSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(round, spec);
    }

    #[test]
    fn missing_fields_take_paper_defaults() {
        let spec = SimSpec::from_value(&serde_json::json!({"layers": 4})).unwrap();
        assert_eq!(spec.layers, 4);
        assert_eq!(spec.overlay_nodes, 10_000);
        assert_eq!(spec.trials, 100);
    }

    #[test]
    fn unknown_and_mistyped_fields_rejected() {
        let err = SimSpec::from_value(&serde_json::json!({"tirals": 5})).unwrap_err();
        assert!(err.to_string().contains("unknown spec field `tirals`"), "{err}");
        let err = SimSpec::from_value(&serde_json::json!({"mapping": 3})).unwrap_err();
        assert!(err.to_string().contains("must be a string"), "{err}");
        let err = SimSpec::from_value(&serde_json::json!([1, 2])).unwrap_err();
        assert!(err.to_string().contains("JSON object"), "{err}");
    }

    #[test]
    fn invalid_counts_error_instead_of_panicking() {
        let zero_trials = SimSpec { trials: 0, ..SimSpec::default() };
        assert!(zero_trials.sim_config().is_err());
        let zero_routes = SimSpec { routes: 0, ..SimSpec::default() };
        assert!(zero_routes.sim_config().is_err());
        let deep = SimSpec { layers: 101, ..SimSpec::default() };
        assert!(deep.scenario().is_err());
    }

    #[test]
    fn spec_config_matches_hand_built_fingerprint() {
        let spec = SimSpec {
            overlay_nodes: 1_000,
            sos_nodes: 100,
            mapping: "one-to-5".into(),
            model: "one-burst".into(),
            nt: 60,
            nc: 120,
            trials: 2,
            routes: 20,
            seed: 13,
            transport: "chord".into(),
            faults: Some("loss=0.2,seed=13".into()),
            ..SimSpec::default()
        };
        let by_hand = SimulationConfig::new(
            Scenario::builder()
                .system(SystemParams::new(1_000, 100, 0.5).unwrap())
                .layers(3)
                .mapping(MappingDegree::OneTo(5))
                .filters(10)
                .build()
                .unwrap(),
            AttackConfig::OneBurst { budget: AttackBudget::new(60, 120) },
        )
        .trials(2)
        .routes_per_trial(20)
        .seed(13)
        .transport(TransportKind::Chord)
        .faults(sos_faults::FaultConfig::none().loss(0.2).seed(13));
        assert_eq!(
            sos_sim::config_fingerprint(&spec.sim_config().unwrap()),
            sos_sim::config_fingerprint(&by_hand),
        );
    }

    #[test]
    fn analyze_outcome_matches_direct_analysis() {
        let spec = SimSpec { model: "one-burst".into(), ..SimSpec::default() };
        let scenario = spec.scenario().unwrap();
        let attack = spec.attack().unwrap();
        let outcome = analyze_outcome(&scenario, &attack, PathEvaluator::Binomial).unwrap();
        assert!(outcome.ps > 0.0 && outcome.ps < 1.0, "{}", outcome.ps);
        assert_eq!(outcome.per_layer.len(), 4, "3 layers + filters");
        let doc = analyze_doc(&scenario, &attack, PathEvaluator::Binomial, &outcome);
        assert!(serde_json::to_string(&doc).unwrap().contains("\"ps\":"));
    }
}
