//! Deterministic in-process TCP fault proxy for chaos testing.
//!
//! Sits between a protocol client and a running `sosd`, forwarding
//! bytes both ways while injecting transport faults — dropped
//! connections, truncated response frames, read stalls — decided
//! *deterministically* from a seed, the same way the simulation's own
//! fault plane works: every decision is a pure function of
//! `(seed, stream, connection index)` through the shared
//! [`sos_faults::splitmix64`] PRF, so a failing chaos test replays
//! bit-for-bit from its seed.
//!
//! The proxy is protocol-agnostic (it never parses frames); faults are
//! expressed in bytes and milliseconds. Truncation limits are chosen
//! smaller than any response frame (4-byte header + JSON body), so a
//! truncated connection always cuts a frame mid-flight.
//!
//! ```no_run
//! use sos_serve::{ChaosConfig, ChaosProxy};
//!
//! let upstream: std::net::SocketAddr = "127.0.0.1:7070".parse().unwrap();
//! let proxy = ChaosProxy::start(upstream, ChaosConfig {
//!     seed: 7,
//!     drop_rate: 0.3,
//!     ..ChaosConfig::default()
//! })?;
//! // point a RetryClient at proxy.addr() instead of the daemon ...
//! let stats = proxy.stop();
//! assert_eq!(stats.connections, stats.dropped + stats.truncated + stats.stalled + stats.clean);
//! # Ok::<(), std::io::Error>(())
//! ```

use sos_faults::{splitmix64, unit};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Domain-separation tags for the proxy's PRF streams (one per fault
/// class, so tuning one rate never shifts another class's decisions).
const STREAM_DROP: u64 = 0xC4A0_5501;
const STREAM_TRUNCATE: u64 = 0xC4A0_5502;
const STREAM_STALL: u64 = 0xC4A0_5503;
const STREAM_LIMIT: u64 = 0xC4A0_5504;

/// Largest truncation limit in bytes. Every protocol response is at
/// least a 4-byte length prefix plus a JSON object, so cutting within
/// the first [`1`, `TRUNCATE_MAX_BYTES`] bytes always tears a frame.
const TRUNCATE_MAX_BYTES: u64 = 8;

/// Per-connection fault rates and the seed they are drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the decision PRF; same seed, same fault schedule.
    pub seed: u64,
    /// Probability a connection is dropped on accept — the client
    /// sees EOF before any response byte.
    pub drop_rate: f64,
    /// Probability (of the remainder) a connection's *response* bytes
    /// are cut off mid-frame after 1–8 bytes.
    pub truncate_rate: f64,
    /// Probability (of the remainder) the response is stalled by
    /// [`stall_ms`](ChaosConfig::stall_ms) before the first byte.
    pub stall_rate: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            drop_rate: 0.0,
            truncate_rate: 0.0,
            stall_rate: 0.0,
            stall_ms: 10,
        }
    }
}

/// What the proxy decided for one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Clean,
    Drop,
    /// Forward only this many response bytes, then cut the connection.
    Truncate(u64),
    /// Delay the response by this many milliseconds, then forward
    /// normally.
    Stall(u64),
}

impl ChaosConfig {
    /// The deterministic fault decision for the `k`-th accepted
    /// connection. Classes are checked in fixed order (drop, truncate,
    /// stall) with independent PRF streams.
    fn decide(&self, k: u64) -> Decision {
        let draw = |stream: u64| unit(splitmix64(self.seed ^ splitmix64(stream.wrapping_add(k))));
        if self.drop_rate > 0.0 && draw(STREAM_DROP) < self.drop_rate {
            return Decision::Drop;
        }
        if self.truncate_rate > 0.0 && draw(STREAM_TRUNCATE) < self.truncate_rate {
            let raw = splitmix64(self.seed ^ splitmix64(STREAM_LIMIT.wrapping_add(k)));
            return Decision::Truncate(1 + raw % TRUNCATE_MAX_BYTES);
        }
        if self.stall_rate > 0.0 && draw(STREAM_STALL) < self.stall_rate {
            return Decision::Stall(self.stall_ms);
        }
        Decision::Clean
    }
}

/// Counters of what the proxy did, snapshot by [`ChaosProxy::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted (equals the sum of the outcome counters).
    pub connections: u64,
    /// Connections dropped on accept.
    pub dropped: u64,
    /// Connections whose response was truncated mid-frame.
    pub truncated: u64,
    /// Connections whose response was stalled.
    pub stalled: u64,
    /// Connections forwarded without any injected fault.
    pub clean: u64,
}

struct ProxyShared {
    cfg: ChaosConfig,
    upstream: SocketAddr,
    stop: AtomicBool,
    connections: AtomicU64,
    dropped: AtomicU64,
    truncated: AtomicU64,
    stalled: AtomicU64,
    clean: AtomicU64,
}

/// A running fault proxy; see the [module docs](self) for usage.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts forwarding every
    /// accepted connection to `upstream` under `cfg`'s fault schedule.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn start(upstream: SocketAddr, cfg: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            cfg,
            upstream,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
            clean: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name(String::from("sos-chaos-accept"))
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn chaos accept loop");
        Ok(ChaosProxy { addr, shared, accept: Some(accept) })
    }

    /// The proxy's listen address — point clients here instead of at
    /// the daemon.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live outcome counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            truncated: self.shared.truncated.load(Ordering::Relaxed),
            stalled: self.shared.stalled.load(Ordering::Relaxed),
            clean: self.shared.clean.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, joins the accept loop, and returns the final
    /// counters. In-flight forwarded connections finish on their own.
    pub fn stop(mut self) -> ChaosStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let client = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let k = shared.connections.fetch_add(1, Ordering::Relaxed);
        let decision = shared.cfg.decide(k);
        let conn_shared = Arc::clone(shared);
        // Detached: a forwarded connection ends when either side
        // closes; nothing here outlives the test process.
        let _ = std::thread::Builder::new()
            .name(format!("sos-chaos-conn-{k}"))
            .spawn(move || handle(client, decision, &conn_shared));
    }
}

/// Applies `decision` to one accepted connection.
fn handle(client: TcpStream, decision: Decision, shared: &ProxyShared) {
    if decision == Decision::Drop {
        shared.dropped.fetch_add(1, Ordering::Relaxed);
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let upstream = match TcpStream::connect(shared.upstream) {
        Ok(s) => s,
        Err(_) => {
            // Upstream gone (e.g. daemon killed mid-test): the client
            // sees the same thing as a drop.
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    client.set_nodelay(true).ok();
    upstream.set_nodelay(true).ok();
    let (counter, response_limit, response_delay) = match decision {
        Decision::Truncate(limit) => (&shared.truncated, Some(limit), None),
        Decision::Stall(ms) => (&shared.stalled, None, Some(Duration::from_millis(ms))),
        _ => (&shared.clean, None, None),
    };
    counter.fetch_add(1, Ordering::Relaxed);
    // Request direction: forward freely. Response direction: apply the
    // byte limit / delay. Each direction pumps on its own thread and
    // tears down both sockets when it finishes, which unblocks the
    // other pump.
    let c2u = (
        client.try_clone().ok(),
        upstream.try_clone().ok(),
    );
    let request_pump = match c2u {
        (Some(from), Some(to)) => std::thread::Builder::new()
            .name(String::from("sos-chaos-up"))
            .spawn(move || pump(from, to, None, None))
            .ok(),
        _ => None,
    };
    pump(upstream, client, response_limit, response_delay);
    if let Some(handle) = request_pump {
        let _ = handle.join();
    }
}

/// Copies bytes `from` → `to` until EOF, error, or `limit` forwarded
/// bytes, optionally delaying before the first byte; then shuts both
/// streams down.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    limit: Option<u64>,
    initial_delay: Option<Duration>,
) {
    let mut delayed = initial_delay;
    let mut forwarded: u64 = 0;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if let Some(delay) = delayed.take() {
            std::thread::sleep(delay);
        }
        let allowed = match limit {
            Some(cap) => {
                let room = cap.saturating_sub(forwarded);
                (n as u64).min(room) as usize
            }
            None => n,
        };
        if allowed > 0 && to.write_all(&buf[..allowed]).is_err() {
            break;
        }
        forwarded += allowed as u64;
        if limit.is_some_and(|cap| forwarded >= cap) {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let cfg = ChaosConfig {
            seed: 42,
            drop_rate: 0.3,
            truncate_rate: 0.3,
            stall_rate: 0.2,
            stall_ms: 5,
        };
        let a: Vec<_> = (0..256).map(|k| cfg.decide(k)).collect();
        let b: Vec<_> = (0..256).map(|k| cfg.decide(k)).collect();
        assert_eq!(a, b);
        let other = ChaosConfig { seed: 43, ..cfg };
        let c: Vec<_> = (0..256).map(|k| other.decide(k)).collect();
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn zero_rates_are_always_clean() {
        let cfg = ChaosConfig { seed: 9, ..ChaosConfig::default() };
        assert!((0..512).all(|k| cfg.decide(k) == Decision::Clean));
    }

    #[test]
    fn rates_hit_expected_frequencies() {
        let cfg = ChaosConfig {
            seed: 1234,
            drop_rate: 0.25,
            truncate_rate: 0.25,
            stall_rate: 0.25,
            stall_ms: 1,
        };
        let n = 20_000u64;
        let mut dropped = 0u64;
        let mut truncated = 0u64;
        let mut stalled = 0u64;
        for k in 0..n {
            match cfg.decide(k) {
                Decision::Drop => dropped += 1,
                Decision::Truncate(limit) => {
                    assert!((1..=TRUNCATE_MAX_BYTES).contains(&limit));
                    truncated += 1;
                }
                Decision::Stall(ms) => {
                    assert_eq!(ms, 1);
                    stalled += 1;
                }
                Decision::Clean => {}
            }
        }
        let freq = |count: u64| count as f64 / n as f64;
        assert!((freq(dropped) - 0.25).abs() < 0.02, "drop {}", freq(dropped));
        // truncate/stall rates apply to the remainder after earlier
        // classes: 0.75 * 0.25 and 0.75 * 0.75 * 0.25.
        assert!((freq(truncated) - 0.1875).abs() < 0.02, "truncate {}", freq(truncated));
        assert!((freq(stalled) - 0.1406).abs() < 0.02, "stall {}", freq(stalled));
    }

    #[test]
    fn proxy_forwards_cleanly_at_zero_rates() {
        // Echo upstream: reads one line, writes it back.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().expect("accept");
            let mut buf = [0u8; 64];
            let n = conn.read(&mut buf).expect("read");
            conn.write_all(&buf[..n]).expect("write");
        });
        let proxy = ChaosProxy::start(upstream_addr, ChaosConfig::default()).expect("start");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"ping\n").expect("send");
        let mut reply = [0u8; 5];
        client.read_exact(&mut reply).expect("echoed back through proxy");
        assert_eq!(&reply, b"ping\n");
        drop(client);
        echo.join().expect("echo thread");
        let stats = proxy.stop();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.clean, 1);
        assert_eq!(stats.dropped + stats.truncated + stats.stalled, 0);
    }
}
