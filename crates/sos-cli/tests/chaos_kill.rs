//! Crash-recovery test against the real `sos` binary: a daemon is
//! SIGKILLed while resident (its only durable state the append
//! journal — the main cache file is rewritten only on graceful drain),
//! then restarted on the same cache path. The restarted daemon must
//! answer the same sweep entirely warm, byte-identical to the
//! pre-crash results.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sos")
}

/// Spawns `sos serve` on an ephemeral port with one worker thread and
/// returns the child plus the bound address (parsed from the
/// readiness line).
fn spawn_daemon(cache: &Path) -> (Child, String) {
    let mut child = Command::new(bin())
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "1", "--cache"])
        .arg(cache)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sosd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read readiness line");
    assert!(line.contains("sosd listening on"), "unexpected readiness line: {line:?}");
    let addr = line.trim().rsplit(' ').next().expect("address token").to_string();
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

/// Runs `sos client <args> --addr <addr>` and returns stdout.
fn client(addr: &str, args: &[&str]) -> String {
    let output = Command::new(bin())
        .arg("client")
        .args(args)
        .args(["--addr", addr])
        .output()
        .expect("run sos client");
    assert!(
        output.status.success(),
        "sos client {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf8 stdout")
}

fn compact(value: &serde_json::Value) -> String {
    serde_json::to_string(value).expect("serialize")
}

#[test]
fn sigkilled_daemon_restarts_with_byte_identical_warm_answers() {
    let dir = std::env::temp_dir().join(format!("sos-chaos-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let cache = dir.join("cache.json");
    let journal = dir.join("cache.json.journal");

    // Three small distinct sweep points, described the same way a
    // scripted operator would.
    let specs = dir.join("specs.json");
    std::fs::write(
        &specs,
        r#"[
            {"overlay_nodes": 400, "sos_nodes": 40, "nt": 10, "nc": 40, "trials": 2, "routes": 8, "seed": 1},
            {"overlay_nodes": 400, "sos_nodes": 40, "nt": 10, "nc": 40, "trials": 2, "routes": 8, "seed": 2},
            {"overlay_nodes": 400, "sos_nodes": 40, "nt": 10, "nc": 40, "trials": 2, "routes": 8, "seed": 3}
        ]"#,
    )
    .expect("write specs file");
    let specs_arg = specs.display().to_string();

    // Run the sweep; every completed point is journaled before the
    // response frame is written, so durability needs no polling.
    let (mut daemon_a, addr_a) = spawn_daemon(&cache);
    let before: serde_json::Value =
        serde_json::from_str(&client(&addr_a, &["sweep", "--specs", &specs_arg]))
            .expect("parse sweep reply");
    assert_eq!(before["stats"]["points_executed"].as_u64(), Some(3));
    let journal_len = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
    assert!(journal_len > 0, "completed points must already be journaled");

    // Crash: SIGKILL, no drain, no cache rewrite.
    daemon_a.kill().expect("SIGKILL daemon");
    daemon_a.wait().expect("reap daemon");

    // Restart on the same cache path: the journal is replayed, so the
    // same sweep is answered fully warm and byte-identical.
    let (mut daemon_b, addr_b) = spawn_daemon(&cache);
    let after: serde_json::Value =
        serde_json::from_str(&client(&addr_b, &["sweep", "--specs", &specs_arg]))
            .expect("parse sweep reply");
    assert_eq!(
        compact(&after["results"]),
        compact(&before["results"]),
        "post-crash warm results must be byte-identical"
    );
    assert_eq!(
        after["stats"]["cache_hits"].as_u64(),
        Some(3),
        "every point must come from the recovered journal: {}",
        compact(&after["stats"])
    );

    // Graceful drain compacts: the journal folds into the main file.
    client(&addr_b, &["shutdown"]);
    daemon_b.wait().expect("reap daemon");
    assert!(cache.exists(), "drain must persist the main cache file");
    assert!(!journal.exists(), "drain must compact the journal away");

    std::fs::remove_dir_all(&dir).ok();
}
