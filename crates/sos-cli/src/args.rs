//! Minimal dependency-free flag parser for the `sos` CLI.
//!
//! Supports `--flag value` and `--flag=value` forms, collects free
//! (positional) arguments, and reports unknown or missing flags with
//! actionable messages. Kept deliberately small: the CLI surface is a
//! handful of typed flags, which does not justify an argument-parsing
//! dependency (see DESIGN.md's dependency budget).

use std::collections::HashMap;
use std::fmt;

/// A parse or validation error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: positionals plus `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    /// Flags that were consumed by a typed getter (for unknown-flag
    /// reporting).
    consumed: std::cell::RefCell<Vec<String>>,
}

impl ParsedArgs {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a `--flag` at the end of the line with
    /// no value, or a repeated flag.
    pub fn parse<I, S>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ParsedArgs::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                let (key, value) = if let Some((k, v)) = stripped.split_once('=') {
                    (k.to_string(), v.to_string())
                } else {
                    let value = iter.next().ok_or_else(|| {
                        ArgError(format!("flag --{stripped} expects a value"))
                    })?;
                    (stripped.to_string(), value)
                };
                if out.flags.insert(key.clone(), value).is_some() {
                    return Err(ArgError(format!("flag --{key} given twice")));
                }
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// The positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Raw string flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(key.to_string());
        self.flags.get(key).map(String::as_str)
    }

    /// Typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse as `T`.
    pub fn get_or<T>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse::<T>().map_err(|e| {
                ArgError(format!("flag --{key}: cannot parse {raw:?}: {e}"))
            }),
        }
    }

    /// Errors if any provided flag was never consumed by a getter —
    /// catches typos like `--tirals`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unknown flag.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for key in self.flags.keys() {
            if !consumed.iter().any(|c| c == key) {
                return Err(ArgError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_positionals() {
        let a = ParsedArgs::parse(["figure", "--layers", "3", "--pe=0.2"]).unwrap();
        assert_eq!(a.positionals(), ["figure"]);
        assert_eq!(a.get("layers"), Some("3"));
        assert_eq!(a.get("pe"), Some("0.2"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn typed_defaults() {
        let a = ParsedArgs::parse(["--trials", "50"]).unwrap();
        assert_eq!(a.get_or("trials", 10u64).unwrap(), 50);
        assert_eq!(a.get_or("routes", 10u64).unwrap(), 10);
        assert!(a.get_or::<u64>("trials", 0).is_ok());
    }

    #[test]
    fn bad_value_reported() {
        let a = ParsedArgs::parse(["--trials", "many"]).unwrap();
        let err = a.get_or("trials", 10u64).unwrap_err();
        assert!(err.to_string().contains("--trials"));
    }

    #[test]
    fn missing_value_reported() {
        let err = ParsedArgs::parse(["--layers"]).unwrap_err();
        assert!(err.to_string().contains("--layers"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        let err = ParsedArgs::parse(["--a", "1", "--a", "2"]).unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn unknown_flags_detected() {
        let a = ParsedArgs::parse(["--known", "1", "--typo", "2"]).unwrap();
        let _ = a.get("known");
        let err = a.reject_unknown().unwrap_err();
        assert!(err.to_string().contains("--typo"));
        let _ = a.get("typo");
        assert!(a.reject_unknown().is_ok());
    }
}
