//! Command implementations for the `sos` CLI.

use crate::args::{ArgError, ParsedArgs};
use sos_analysis::{OneBurstAnalysis, SuccessiveAnalysis};
use sos_core::{
    AttackBudget, AttackConfig, MappingDegree, NodeDistribution, PathEvaluator, Scenario,
    SuccessiveParams, SystemParams,
};
use sos_sim::engine::{Simulation, SimulationConfig, TransportKind};
use sos_sim::routing::RoutingPolicy;

/// Top-level usage text.
pub const USAGE: &str = "\
sos — generalized Secure Overlay Services analysis & simulation (ICDCS 2004)

USAGE:
    sos <COMMAND> [FLAGS]

COMMANDS:
    analyze    closed-form P_S for one configuration
    simulate   Monte Carlo P_S for one configuration
    profile    run a workload under the live telemetry plane and print
               the per-phase wall-clock profile (build | break-in |
               congestion | routing), p50/p95/p99, trials/s, worker
               utilization and sweep-cache hits
    trace      traced Monte Carlo run: per-trial attack-phase timeline
    compare    closed-form vs Monte Carlo side by side
    figure     regenerate a paper figure (fig4a fig4b fig6a fig6b fig7 fig8a fig8b all)
               or a Monte Carlo family (ablation-routing ablation-chord
               ext-faults ext-monitoring)
    serve      run sosd, the resident analysis daemon: owns the worker
               pool and a warm sweep cache, answers analyze/simulate/
               sweep/profile/trace/ping/shutdown requests over a
               length-prefixed JSON protocol, and serves Prometheus GET
               /metrics + GET /healthz + Chrome-trace GET /debug/trace
               on the same port (PROTOCOL.md, OPERATIONS.md)
    client     send one request to a running sosd and print the reply
    optimize   search the design grid for the best worst-case design
    frontier   latency-resilience Pareto frontier over the design grid
    tornado    parameter-sensitivity analysis around an operating point
    advise     lint a design against the standard threat catalogue

SHARED FLAGS (defaults = the paper's):
    --overlay-nodes N    total overlay population      [10000]
    --sos-nodes n        SOS nodes                     [100]
    --pb P_B             break-in success probability  [0.5]
    --filters F          filter count                  [10]
    --layers L           number of layers              [3]
    --mapping M          one-to-one | one-to-K | one-to-half | one-to-all [one-to-2]
    --distribution D     even | increasing | decreasing [even]
    --nt N_T             break-in budget               [200]
    --nc N_C             congestion budget             [2000]
    --model M            one-burst | successive        [successive]
    --rounds R           successive rounds             [3]
    --pe P_E             prior first-layer knowledge   [0.2]
    --evaluator E        binomial | hypergeometric     [binomial]

SIMULATE FLAGS:
    --trials T           attacked overlays             [100]
    --routes K           routes per trial              [100]
    --seed S             master seed                   [0]
    --policy P           random-good | first-good | backtracking [random-good]
    --transport T        direct | chord                [direct]
    --threads N          worker threads                [all cores, max 16]
    --trace-out F        write the event trace as JSONL to file F
    --metrics-out F      write aggregated metrics as CSV to file F
                         (either flag switches to the traced runner,
                         single-threaded unless --threads is given, so
                         event order is reproducible by default)
    --faults SPEC        deterministic benign-fault plane: a bare loss
                         rate (0.2) or key=value pairs, e.g.
                         loss=0.2,delay=0.1,delay-ticks=4,crash=0.01,
                         slow=0.05,slow-ticks=2,misroute=0.02,seed=7
    --retry SPEC         per-hop retries when faults are on: a bare
                         attempt count (4) or attempts=4,backoff=1,
                         deadline=64 (backoff/deadline in sim ticks)
    --progress 1         live progress line on stderr (points, trials,
                         trials/s, worker utilization, cache hits, ETA)
    --telemetry-out F    periodic machine-readable telemetry snapshots:
                         `.prom`/`.txt` = Prometheus text exposition
                         rewritten in place, anything else = one JSON
                         line appended per interval (JSONL)
    --json 1             machine-readable {fingerprint, result} output,
                         byte-identical to what `sos client simulate`
                         prints for the same flags; runs through the
                         sweep executor so --cache answers repeats
                         from the cache file (cache hit/miss on stderr)
    --cache F            (with --json 1) persistent sweep cache file,
                         same format as `figure --cache` and
                         `serve --cache`

PROFILE FLAGS (plus --progress/--telemetry-out/--threads and, for the
simulate workload, every shared + simulate flag above):
    --workload W         grid | simulate: the 42-point ablation-shaped
                         sweep grid (the bench_baseline sweep workload)
                         or a single simulate-shaped run   [grid]
    --trials T           (grid) attacked overlays per point [2]
    --routes K           (grid) routes per trial            [20]
    --seed S             (grid) master seed                 [13]
    --interval-ms MS     reporter snapshot interval         [500]
    --telemetry 0        disable the telemetry plane (reference run:
                         results must be byte-identical)    [1]
    --results-out F      write the workload's numeric results to F
                         (diff against a --telemetry 0 run)
    --spans-out F        run with the request-tracing plane on and
                         write the recorded spans (cache probes, sweep
                         points, pool batches) as Chrome trace-event
                         JSON to F — loadable in Perfetto or
                         chrome://tracing
    --cache F            (grid) persistent sweep cache, as `figure`

TRACE FLAGS (plus the shared topology flags and --routes/--seed/
--policy/--transport/--threads/--trace-out/--metrics-out/--faults/
--retry above):
    --scenario P         attack preset: moderate-flooder | heavy-flooder |
                         paper-intelligent | patient-intruder | balanced
                         [paper-intelligent]
    --trials T           attacked overlays             [3]

FIGURE FLAGS:
    --cache F            persistent sweep-result cache file: Monte Carlo
                         families answer repeated points from F instead
                         of re-simulating (byte-identical CSV output);
                         created on first use (env: SOS_SWEEP_CACHE)
    --trials T           (Monte Carlo families) attacked overlays [100]
    --routes K           (Monte Carlo families) routes per trial  [100]
    --seed S             (Monte Carlo families) master seed       [42]

SERVE FLAGS (plus --progress/--telemetry-out/--interval-ms as simulate;
see PROTOCOL.md for the wire format, OPERATIONS.md for running it):
    --addr A             listen address                [127.0.0.1:7070]
    --cache F            persistent sweep cache: loaded at startup
                         (warm start, corrupt files quarantined to
                         F.corrupt), journaled after every executed
                         point, compacted on drain
    --threads N          worker threads for this daemon [all cores, max 16]
    --queue-depth N      executor admission bound: further simulate/
                         sweep requests are shed with a `busy` error
                         and a retry_after_ms hint  [16]
    --slow-ms MS         slow-request threshold: requests at or over it
                         are counted (sos_serve_slow_requests_total)
                         and logged as one structured JSONL line
                         [disabled]
    --slow-log F         append slow-request lines and flight-recorder
                         anomaly dumps to F instead of stderr

CLIENT FLAGS (sos client <OP>; OP = ping | analyze | simulate | sweep |
profile | trace | shutdown; analyze and simulate take every shared +
simulate flag above and print the reply as JSON — byte-identical to
`sos analyze --json 1` / `sos simulate --json 1` for the same flags;
trace prints the daemon's flight recorder as Chrome trace-event JSON):
    --addr A             daemon address                [127.0.0.1:7070]
    --specs F            (sweep) JSON file holding an array of spec
                         objects (field names as in PROTOCOL.md)
    --timing 1           (simulate) print the client-observed RTT next
                         to the server-attributed timing breakdown
                         (queue/lock/phase ns) on stderr; stdout is
                         unchanged
    --retries N          (all ops except shutdown) attempts per request:
                         reconnect-and-resend on transport errors,
                         honor retry_after_ms on `busy` shedding  [1]
    --retry-backoff-ms B initial retry backoff, doubling per attempt
                         [100]
    --deadline-ms D      (simulate/sweep) server-side deadline budget;
                         an expired budget is answered with
                         `deadline-exceeded` instead of computed, and
                         a sweep stops cooperatively between points

OTHER FLAGS:
    --json 1             (analyze) machine-readable output
    --top K              (optimize) rows to print            [10]
    --max-latency T      (optimize) clean-latency constraint
    --pareto-only 1      (frontier) hide dominated designs
    --step S             (tornado) relative perturbation     [0.25]
    --threats a,b,…      (advise) threat subset: moderate-flooder |
                         heavy-flooder | paper-intelligent |
                         patient-intruder | balanced          [all]

EXAMPLES:
    sos analyze --layers 4 --mapping one-to-2
    sos simulate --nt 200 --nc 2000 --trials 200 --seed 7
    sos simulate --trials 500 --progress 1 --telemetry-out telemetry.prom
    sos profile --workload grid --telemetry-out profile.prom
    sos profile --workload simulate --trials 200 --threads 8
    sos simulate --faults 0.2 --retry 4 --trials 200
    sos trace --scenario paper-intelligent --trace-out trace.jsonl
    sos trace --faults loss=0.3,delay=0.1 --retry attempts=3,backoff=2
    sos compare --mapping one-to-all --model one-burst
    sos figure fig6a
    sos figure ext-faults --cache sweep.json --trials 30 --routes 40
    sos serve --addr 127.0.0.1:7070 --cache sweep.json
    sos serve --slow-ms 250 --slow-log slow.jsonl
    sos profile --workload grid --spans-out spans.json
    sos client analyze --layers 4
    sos client simulate --trials 200 --seed 7 --timing 1
    sos client trace > trace.json
    sos client shutdown
    sos optimize --max-latency 5
    sos tornado --mapping one-to-5
    sos advise --mapping one-to-all
";

/// Runs the CLI against raw arguments (without the program name);
/// returns the process exit code.
pub fn run<I, S>(args: I, out: &mut dyn std::io::Write) -> i32
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    match dispatch(args, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            let _ = writeln!(out, "run `sos` with no arguments for usage");
            1
        }
    }
}

fn dispatch<I, S>(args: I, out: &mut dyn std::io::Write) -> Result<(), Box<dyn std::error::Error>>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let parsed = ParsedArgs::parse(args)?;
    let command = parsed.positionals().first().map(String::as_str);
    match command {
        None | Some("help") => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        Some("analyze") => analyze(&parsed, out),
        Some("simulate") => simulate(&parsed, out),
        Some("profile") => profile(&parsed, out),
        Some("trace") => trace_cmd(&parsed, out),
        Some("compare") => compare(&parsed, out),
        Some("figure") => figure(&parsed, out),
        Some("serve") => serve_cmd(&parsed, out),
        Some("client") => client_cmd(&parsed, out),
        Some("optimize") => optimize(&parsed, out),
        Some("frontier") => frontier(&parsed, out),
        Some("tornado") => tornado_cmd(&parsed, out),
        Some("advise") => advise(&parsed, out),
        Some(other) => Err(ArgError(format!("unknown command `{other}`")).into()),
    }
}

fn parse_mapping(raw: &str) -> Result<MappingDegree, ArgError> {
    match raw {
        "one-to-one" | "one-to-1" => Ok(MappingDegree::ONE_TO_ONE),
        "one-to-half" => Ok(MappingDegree::OneToHalf),
        "one-to-all" => Ok(MappingDegree::OneToAll),
        other => {
            if let Some(k) = other.strip_prefix("one-to-") {
                let k: u64 = k.parse().map_err(|_| {
                    ArgError(format!("unrecognized mapping `{other}`"))
                })?;
                Ok(MappingDegree::OneTo(k))
            } else {
                Err(ArgError(format!(
                    "unrecognized mapping `{other}` (try one-to-one, one-to-5, one-to-half, one-to-all)"
                )))
            }
        }
    }
}

fn parse_distribution(raw: &str) -> Result<NodeDistribution, ArgError> {
    match raw {
        "even" => Ok(NodeDistribution::Even),
        "increasing" => Ok(NodeDistribution::Increasing),
        "decreasing" => Ok(NodeDistribution::Decreasing),
        other => Err(ArgError(format!(
            "unrecognized distribution `{other}` (even | increasing | decreasing)"
        ))),
    }
}

fn parse_evaluator(raw: &str) -> Result<PathEvaluator, ArgError> {
    match raw {
        "binomial" => Ok(PathEvaluator::Binomial),
        "hypergeometric" => Ok(PathEvaluator::Hypergeometric),
        other => Err(ArgError(format!(
            "unrecognized evaluator `{other}` (binomial | hypergeometric)"
        ))),
    }
}

struct CommonConfig {
    scenario: Scenario,
    attack: AttackConfig,
    evaluator: PathEvaluator,
}

fn common_config(args: &ParsedArgs) -> Result<CommonConfig, Box<dyn std::error::Error>> {
    let overlay_nodes: u64 = args.get_or("overlay-nodes", 10_000)?;
    let sos_nodes: u64 = args.get_or("sos-nodes", 100)?;
    let p_b: f64 = args.get_or("pb", 0.5)?;
    let filters: u64 = args.get_or("filters", 10)?;
    let layers: usize = args.get_or("layers", 3)?;
    let mapping = parse_mapping(args.get("mapping").unwrap_or("one-to-2"))?;
    let distribution = parse_distribution(args.get("distribution").unwrap_or("even"))?;
    let evaluator = parse_evaluator(args.get("evaluator").unwrap_or("binomial"))?;

    let scenario = Scenario::builder()
        .system(SystemParams::new(overlay_nodes, sos_nodes, p_b)?)
        .layers(layers)
        .distribution(distribution)
        .mapping(mapping)
        .filters(filters)
        .build()?;

    let budget = AttackBudget::new(args.get_or("nt", 200)?, args.get_or("nc", 2_000)?);
    let attack = match args.get("model").unwrap_or("successive") {
        "one-burst" => AttackConfig::OneBurst { budget },
        "successive" => AttackConfig::Successive {
            budget,
            params: SuccessiveParams::new(
                args.get_or("rounds", 3)?,
                args.get_or("pe", 0.2)?,
            )?,
        },
        other => return Err(ArgError(format!("unknown model `{other}`")).into()),
    };
    Ok(CommonConfig {
        scenario,
        attack,
        evaluator,
    })
}

fn analyze(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = common_config(args)?;
    let json = args.get("json").is_some();
    args.reject_unknown()?;
    let (ps, layer_ps, broken, congested) = match cfg.attack {
        AttackConfig::OneBurst { budget } => {
            let report = OneBurstAnalysis::new(&cfg.scenario, budget)?.run();
            (
                report.success_probability(cfg.evaluator).value(),
                report.layer_successes(cfg.evaluator),
                report.total_broken,
                report.congested.iter().sum::<f64>(),
            )
        }
        AttackConfig::Successive { budget, params } => {
            let report = SuccessiveAnalysis::new(&cfg.scenario, budget, params)?.run();
            (
                report.success_probability(cfg.evaluator).value(),
                report.layer_successes(cfg.evaluator),
                report.total_broken,
                report.congested.iter().sum::<f64>(),
            )
        }
    };
    if json {
        // Machine-readable manifest + result (audit trail for batch
        // experiment runners).
        let doc = serde_json::json!({
            "scenario": cfg.scenario,
            "attack": cfg.attack,
            "evaluator": cfg.evaluator,
            "ps": ps,
            "per_layer_success": layer_ps,
            "expected_broken": broken,
            "expected_congested": congested,
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&doc)?)?;
        return Ok(());
    }
    writeln!(out, "model: {}", cfg.attack.model_name())?;
    writeln!(out, "evaluator: {}", cfg.evaluator)?;
    writeln!(out, "layer sizes: {:?}", cfg.scenario.topology().layer_sizes())?;
    writeln!(out, "P_S: {ps:.6}")?;
    for (i, p) in layer_ps.iter().enumerate() {
        let name = if i == layer_ps.len() - 1 {
            "filters".to_string()
        } else {
            format!("layer {}", i + 1)
        };
        writeln!(out, "  P_{} ({name}): {p:.6}", i + 1)?;
    }
    writeln!(out, "expected broken-in nodes: {broken:.2}")?;
    writeln!(out, "expected congested nodes: {congested:.2}")?;
    Ok(())
}

fn parse_policy(raw: &str) -> Result<RoutingPolicy, ArgError> {
    match raw {
        "random-good" => Ok(RoutingPolicy::RandomGood),
        "first-good" => Ok(RoutingPolicy::FirstGood),
        "backtracking" => Ok(RoutingPolicy::Backtracking),
        other => Err(ArgError(format!("unknown policy `{other}`"))),
    }
}

fn parse_transport(raw: &str) -> Result<TransportKind, ArgError> {
    match raw {
        "direct" => Ok(TransportKind::Direct),
        "chord" => Ok(TransportKind::Chord),
        other => Err(ArgError(format!("unknown transport `{other}`"))),
    }
}

/// Parses `--faults`: either a bare loss rate (`0.2`) or a comma list
/// of `key=value` pairs (`loss=0.2,delay=0.1,delay-ticks=4,crash=0.01,
/// slow=0.05,slow-ticks=2,misroute=0.02,seed=7`).
fn parse_faults(raw: &str) -> Result<sos_faults::FaultConfig, ArgError> {
    let mut cfg = sos_faults::FaultConfig::none();
    if let Ok(loss) = raw.parse::<f64>() {
        if !(0.0..=1.0).contains(&loss) {
            return Err(ArgError(format!("--faults: loss rate {loss} not in [0, 1]")));
        }
        return Ok(cfg.loss(loss));
    }
    let mut delay = (0.0f64, 4u64);
    let mut slow = (0.0f64, 2u64);
    for pair in raw.split(',') {
        let (key, value) = pair.split_once('=').ok_or_else(|| {
            ArgError(format!(
                "--faults: expected key=value, got `{pair}` \
                 (keys: loss delay delay-ticks crash slow slow-ticks misroute seed)"
            ))
        })?;
        let rate = |v: &str| -> Result<f64, ArgError> {
            let r: f64 = v
                .parse()
                .map_err(|e| ArgError(format!("--faults: {key}={v}: {e}")))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(ArgError(format!("--faults: {key}={r} not in [0, 1]")));
            }
            Ok(r)
        };
        let ticks = |v: &str| -> Result<u64, ArgError> {
            v.parse()
                .map_err(|e| ArgError(format!("--faults: {key}={v}: {e}")))
        };
        match key.trim() {
            "loss" => cfg = cfg.loss(rate(value)?),
            "delay" => delay.0 = rate(value)?,
            "delay-ticks" => delay.1 = ticks(value)?,
            "crash" => cfg = cfg.crash(rate(value)?),
            "slow" => slow.0 = rate(value)?,
            "slow-ticks" => slow.1 = ticks(value)?,
            "misroute" => cfg = cfg.misroute(rate(value)?),
            "seed" => cfg = cfg.seed(ticks(value)?),
            other => {
                return Err(ArgError(format!(
                    "--faults: unknown key `{other}` \
                     (keys: loss delay delay-ticks crash slow slow-ticks misroute seed)"
                )))
            }
        }
    }
    Ok(cfg.delay(delay.0, delay.1).slow(slow.0, slow.1))
}

/// Parses `--retry`: either a bare attempt count (`4`) or a comma list
/// of `key=value` pairs (`attempts=4,backoff=1,deadline=64`).
fn parse_retry(raw: &str) -> Result<sos_faults::RetryPolicy, ArgError> {
    if let Ok(attempts) = raw.parse::<u32>() {
        if attempts == 0 {
            return Err(ArgError("--retry: need at least one attempt".into()));
        }
        return Ok(sos_faults::RetryPolicy::new(attempts, 1, u64::MAX));
    }
    let mut attempts = 1u32;
    let mut backoff = 1u64;
    let mut deadline = u64::MAX;
    for pair in raw.split(',') {
        let (key, value) = pair.split_once('=').ok_or_else(|| {
            ArgError(format!(
                "--retry: expected key=value, got `{pair}` (keys: attempts backoff deadline)"
            ))
        })?;
        match key.trim() {
            "attempts" => {
                attempts = value
                    .parse()
                    .map_err(|e| ArgError(format!("--retry: attempts={value}: {e}")))?;
                if attempts == 0 {
                    return Err(ArgError("--retry: need at least one attempt".into()));
                }
            }
            "backoff" => {
                backoff = value
                    .parse()
                    .map_err(|e| ArgError(format!("--retry: backoff={value}: {e}")))?;
            }
            "deadline" => {
                deadline = value
                    .parse()
                    .map_err(|e| ArgError(format!("--retry: deadline={value}: {e}")))?;
            }
            other => {
                return Err(ArgError(format!(
                    "--retry: unknown key `{other}` (keys: attempts backoff deadline)"
                )))
            }
        }
    }
    Ok(sos_faults::RetryPolicy::new(attempts, backoff, deadline))
}

/// Reads the optional fault-plane flags shared by `simulate` and
/// `trace`.
fn fault_flags(
    args: &ParsedArgs,
) -> Result<(sos_faults::FaultConfig, sos_faults::RetryPolicy), ArgError> {
    let faults = match args.get("faults") {
        None => sos_faults::FaultConfig::none(),
        Some(raw) => parse_faults(raw)?,
    };
    let retry = match args.get("retry") {
        None => sos_faults::RetryPolicy::none(),
        Some(raw) => parse_retry(raw)?,
    };
    Ok((faults, retry))
}

/// One-line summary of the active fault plane for command output.
fn describe_faults(faults: &sos_faults::FaultConfig, retry: &sos_faults::RetryPolicy) -> String {
    let mut parts = Vec::new();
    if faults.loss_rate > 0.0 {
        parts.push(format!("loss={}", faults.loss_rate));
    }
    if faults.delay_rate > 0.0 {
        parts.push(format!("delay={}x{}t", faults.delay_rate, faults.delay_ticks));
    }
    if faults.crash_rate > 0.0 {
        parts.push(format!("crash={}", faults.crash_rate));
    }
    if faults.slow_rate > 0.0 {
        parts.push(format!("slow={}x{}t", faults.slow_rate, faults.slow_ticks));
    }
    if faults.misroute_rate > 0.0 {
        parts.push(format!("misroute={}", faults.misroute_rate));
    }
    let retry_part = if retry.is_none() {
        "no retries".to_string()
    } else if retry.deadline == u64::MAX {
        format!("retry attempts={} backoff={}", retry.max_attempts, retry.backoff_base)
    } else {
        format!(
            "retry attempts={} backoff={} deadline={}",
            retry.max_attempts, retry.backoff_base, retry.deadline
        )
    };
    format!("{} ({retry_part})", parts.join(" "))
}

/// Writes the requested observability sinks, reporting each file on
/// `out`.
fn write_sinks(
    out: &mut dyn std::io::Write,
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
    events: &[sos_observe::Event],
    metrics: &sos_observe::MetricsRegistry,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = trace_out {
        std::fs::write(path, sos_observe::write_jsonl(events))?;
        writeln!(out, "trace: {} events -> {path}", events.len())?;
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, metrics.to_csv())?;
        writeln!(out, "metrics: -> {path}")?;
    }
    Ok(())
}

/// Parses the `--threads` flag: `Some(n)` when given explicitly,
/// `None` when absent (callers pick the context-appropriate default —
/// [`sos_sim::num_threads`] for untraced runs, one thread for traced
/// runs so the recorded event order stays reproducible).
fn threads_flag(args: &ParsedArgs) -> Result<Option<usize>, ArgError> {
    match args.get("threads") {
        None => Ok(None),
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|e| ArgError(format!("flag --threads: cannot parse {raw:?}: {e}")))?;
            if n == 0 {
                return Err(ArgError("flag --threads: need at least one thread".into()));
            }
            Ok(Some(n))
        }
    }
}

/// Reads the live-telemetry flags shared by `simulate` and `profile`:
/// `--progress`, `--telemetry-out`, `--interval-ms`. Returns `Some`
/// reporter options when either output is requested (`--progress 0`
/// and `--telemetry-out` alone still start the reporter for the sink).
fn reporter_flags(args: &ParsedArgs) -> Result<Option<sos_observe::ReporterOptions>, ArgError> {
    let progress = args.get("progress").is_some_and(|v| v != "0");
    let telemetry_out = args.get("telemetry-out").map(std::path::PathBuf::from);
    let interval_ms: u64 = args.get_or("interval-ms", 500)?;
    if !progress && telemetry_out.is_none() {
        return Ok(None);
    }
    Ok(Some(sos_observe::ReporterOptions {
        interval: std::time::Duration::from_millis(interval_ms.max(1)),
        progress,
        out: telemetry_out,
    }))
}

/// Renders one `SimulationResult` as a stable CSV row (used by
/// `profile` so telemetry-on and telemetry-off runs can be diffed
/// byte for byte).
fn result_csv_row(point: usize, r: &sos_sim::engine::SimulationResult) -> String {
    format!(
        "{point},{},{},{:.6},{:.6},{:.6},{:.2}",
        r.successes,
        r.attempts,
        r.success_rate(),
        r.realized_ps_hypergeometric,
        r.realized_ps_binomial,
        r.mean_underlay_hops,
    )
}

fn profile(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    use sos_observe::{ProgressReporter, ReporterOptions};

    let workload = args.get("workload").unwrap_or("grid").to_string();
    let telemetry_on: u64 = args.get_or("telemetry", 1)?;
    let results_out = args.get("results-out").map(str::to_string);
    let spans_out = args.get("spans-out").map(str::to_string);
    let reporter_opts = reporter_flags(args)?;
    let threads = threads_flag(args)?;

    // `--spans-out` turns on the request-tracing plane for this run:
    // executor spans (cache probes, sweep points, pool batches) land
    // in the flight recorder and are exported as Chrome trace JSON.
    if spans_out.is_some() {
        sos_observe::trace::recorder().clear();
        sos_observe::trace::set_enabled(true);
    }

    // The reporter starts before the workload so the interval sink
    // sees it live; `--telemetry 0` gives the reference run whose
    // numeric results must be byte-identical.
    let reporter = if telemetry_on != 0 {
        Some(ProgressReporter::start(
            reporter_opts.clone().unwrap_or(ReporterOptions {
                progress: false,
                ..ReporterOptions::default()
            }),
        ))
    } else {
        sos_observe::telemetry::set_enabled(false);
        None
    };

    let results = match workload.as_str() {
        "grid" => {
            let trials: u64 = args.get_or("trials", 2)?;
            let routes: u64 = args.get_or("routes", 20)?;
            let seed: u64 = args.get_or("seed", 13)?;
            let cache = args.get("cache").map(str::to_string);
            args.reject_unknown()?;
            let configs = sos_bench::ablations::profile_grid(sos_bench::ablations::AblationOptions {
                trials,
                routes_per_trial: routes,
                seed,
            });
            let results = if let Some(path) = cache {
                let loaded = sos_sim::set_global_cache(&path)?;
                eprintln!("sweep cache {path}: {loaded} entries loaded");
                sos_sim::run_sweep(&configs)
            } else if let Some(t) = threads {
                sos_sim::SweepExecutor::with_threads(t).run(&configs)
            } else {
                sos_sim::run_sweep(&configs)
            };
            let mut text = String::from(
                "point,successes,attempts,ps,realized_hypergeometric,realized_binomial,mean_hops\n",
            );
            for (i, r) in results.iter().enumerate() {
                text.push_str(&result_csv_row(i, r));
                text.push('\n');
            }
            text
        }
        "simulate" => {
            let cfg = common_config(args)?;
            let trials: u64 = args.get_or("trials", 100)?;
            let routes: u64 = args.get_or("routes", 100)?;
            let seed: u64 = args.get_or("seed", 0)?;
            let policy = parse_policy(args.get("policy").unwrap_or("random-good"))?;
            let transport = parse_transport(args.get("transport").unwrap_or("direct"))?;
            let (faults, retry) = fault_flags(args)?;
            args.reject_unknown()?;
            let result = Simulation::new(
                SimulationConfig::new(cfg.scenario, cfg.attack)
                    .trials(trials)
                    .routes_per_trial(routes)
                    .seed(seed)
                    .policy(policy)
                    .transport(transport)
                    .faults(faults)
                    .retry(retry),
            )
            .run_parallel(threads.unwrap_or_else(sos_sim::num_threads));
            let mut text = String::from(
                "point,successes,attempts,ps,realized_hypergeometric,realized_binomial,mean_hops\n",
            );
            text.push_str(&result_csv_row(0, &result));
            text.push('\n');
            text
        }
        other => {
            return Err(ArgError(format!(
                "unknown workload `{other}` (grid | simulate)"
            ))
            .into())
        }
    };

    write!(out, "{results}")?;
    if let Some(path) = results_out {
        std::fs::write(&path, &results)?;
        writeln!(out, "results: -> {path}")?;
    }
    if let Some(path) = spans_out {
        sos_observe::trace::set_enabled(false);
        let spans = sos_observe::trace::recorder()
            .recent(sos_observe::trace::FLIGHT_RECORDER_CAPACITY);
        std::fs::write(&path, sos_observe::trace::chrome_trace_json(&spans))?;
        writeln!(out, "spans: {} -> {path}", spans.len())?;
    }
    match reporter {
        Some(reporter) => {
            let sink = reporter.sink_path();
            let snap = reporter.finish();
            writeln!(out)?;
            write!(out, "{}", snap.profile_table())?;
            if let Some(path) = sink {
                writeln!(out, "telemetry: -> {}", path.display())?;
            }
        }
        None => {
            writeln!(out, "telemetry disabled (--telemetry 0): reference run, no profile")?;
        }
    }
    Ok(())
}

fn simulate(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = common_config(args)?;
    let trials: u64 = args.get_or("trials", 100)?;
    let routes: u64 = args.get_or("routes", 100)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let policy = parse_policy(args.get("policy").unwrap_or("random-good"))?;
    let transport = parse_transport(args.get("transport").unwrap_or("direct"))?;
    let (faults, retry) = fault_flags(args)?;
    let trace_out = args.get("trace-out").map(str::to_string);
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let threads = threads_flag(args)?;
    let reporter_opts = reporter_flags(args)?;
    let json_out = args.get("json").is_some_and(|v| v != "0");
    let cache = args.get("cache").map(str::to_string);
    args.reject_unknown()?;

    if json_out {
        if trace_out.is_some() || metrics_out.is_some() {
            return Err(ArgError(
                "flag --json: cannot combine with --trace-out/--metrics-out".into(),
            )
            .into());
        }
        let reporter = reporter_opts.map(sos_observe::ProgressReporter::start);
        let config = SimulationConfig::new(cfg.scenario, cfg.attack)
            .trials(trials)
            .routes_per_trial(routes)
            .seed(seed)
            .policy(policy)
            .transport(transport)
            .faults(faults)
            .retry(retry);
        let mut exec = match threads {
            Some(t) => sos_sim::SweepExecutor::with_threads(t),
            None => sos_sim::SweepExecutor::new(),
        };
        if let Some(path) = &cache {
            // Stderr, not `out`: the JSON document on stdout must stay
            // byte-identical between cold and warm cache runs (CI
            // diffs it against the daemon's answer for the same spec).
            let loaded = exec.attach_cache(path)?;
            eprintln!("sweep cache {path}: {loaded} entries loaded");
        }
        let fingerprint = sos_sim::config_fingerprint(&config);
        let before = exec.stats().points_executed;
        let result = exec.run_one(&config);
        let cached = exec.stats().points_executed == before;
        exec.persist();
        if let Some(reporter) = reporter {
            reporter.finish();
        }
        eprintln!("cache: {}", if cached { "hit" } else { "miss" });
        let doc = serde_json::json!({
            "fingerprint": format!("{fingerprint:016x}"),
            "result": result,
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&doc)?)?;
        return Ok(());
    }
    if cache.is_some() {
        return Err(ArgError("flag --cache on simulate requires --json 1".into()).into());
    }

    // Live telemetry observes but never steers: counts are identical
    // with the reporter on or off.
    let reporter = reporter_opts.map(sos_observe::ProgressReporter::start);
    let sim = Simulation::new(
        SimulationConfig::new(cfg.scenario, cfg.attack)
            .trials(trials)
            .routes_per_trial(routes)
            .seed(seed)
            .policy(policy)
            .transport(transport)
            .faults(faults)
            .retry(retry),
    );
    let result = if trace_out.is_some() || metrics_out.is_some() {
        // Traced runs default to one thread so the recorded event order
        // is reproducible run to run; an explicit --threads opts into
        // the parallel traced runner (counts identical, event order in
        // worker-completion order — the sinks sort by trial and tick).
        let recorder = sos_observe::MemoryRecorder::new();
        let (result, metrics) = match threads {
            Some(t) if t > 1 => sim.run_parallel_traced(t, &recorder),
            _ => sim.run_traced(&recorder),
        };
        write_sinks(
            out,
            trace_out.as_deref(),
            metrics_out.as_deref(),
            &recorder.take_events(),
            &metrics,
        )?;
        result
    } else {
        sim.run_parallel(threads.unwrap_or_else(sos_sim::num_threads))
    };
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    let ci = result.confidence_interval(0.95);
    writeln!(out, "model: {}", cfg.attack.model_name())?;
    writeln!(out, "policy: {policy}  transport: {}", transport.label())?;
    if !faults.is_none() {
        writeln!(out, "faults: {}", describe_faults(&faults, &retry))?;
    }
    writeln!(out, "trials: {trials}  routes/trial: {routes}  seed: {seed}")?;
    writeln!(out, "empirical P_S: {:.6}", result.success_rate())?;
    writeln!(out, "95% CI: [{:.6}, {:.6}]", ci.lower, ci.upper)?;
    writeln!(
        out,
        "per-trial spread: mean {:.4}, sd {:.4}, min {:.4}, max {:.4}",
        result.per_trial.mean, result.per_trial.std_dev, result.per_trial.min, result.per_trial.max
    )?;
    writeln!(
        out,
        "eq.(1) on realized states: hypergeometric {:.6}, binomial {:.6}",
        result.realized_ps_hypergeometric, result.realized_ps_binomial
    )?;
    writeln!(out, "mean underlay hops: {:.2}", result.mean_underlay_hops)?;
    if let Some(layer) = result.bottleneck_layer() {
        writeln!(
            out,
            "failure bottleneck: layer {layer} ({} of {} failures died there)",
            result.failure_depths[layer],
            result.failure_depths.iter().sum::<u64>()
        )?;
    }
    Ok(())
}

fn trace_cmd(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    use sos_core::ThreatPreset;

    let label = args.get("scenario").unwrap_or("paper-intelligent");
    let preset = ThreatPreset::parse(label).ok_or_else(|| {
        ArgError(format!(
            "unknown scenario `{label}` (moderate-flooder | heavy-flooder | \
             paper-intelligent | patient-intruder | balanced)"
        ))
    })?;

    let overlay_nodes: u64 = args.get_or("overlay-nodes", 10_000)?;
    let sos_nodes: u64 = args.get_or("sos-nodes", 100)?;
    let p_b: f64 = args.get_or("pb", 0.5)?;
    let filters: u64 = args.get_or("filters", 10)?;
    let layers: usize = args.get_or("layers", 3)?;
    let mapping = parse_mapping(args.get("mapping").unwrap_or("one-to-2"))?;
    let distribution = parse_distribution(args.get("distribution").unwrap_or("even"))?;
    let trials: u64 = args.get_or("trials", 3)?;
    let routes: u64 = args.get_or("routes", 50)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let policy = parse_policy(args.get("policy").unwrap_or("random-good"))?;
    let transport = parse_transport(args.get("transport").unwrap_or("direct"))?;
    let (faults, retry) = fault_flags(args)?;
    let trace_out = args.get("trace-out").map(str::to_string);
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let threads = threads_flag(args)?;
    args.reject_unknown()?;

    let system = SystemParams::new(overlay_nodes, sos_nodes, p_b)?;
    let attack = preset.attack(&system);
    let scenario = Scenario::builder()
        .system(system)
        .layers(layers)
        .distribution(distribution)
        .mapping(mapping)
        .filters(filters)
        .build()?;

    let sim = Simulation::new(
        SimulationConfig::new(scenario, attack)
            .trials(trials)
            .routes_per_trial(routes)
            .seed(seed)
            .policy(policy)
            .transport(transport)
            .faults(faults)
            .retry(retry),
    );
    let recorder = sos_observe::MemoryRecorder::new();
    // One thread by default for a reproducible event stream; --threads
    // opts into the work-stealing traced runner (counts identical).
    let (result, metrics) = match threads {
        Some(t) if t > 1 => sim.run_parallel_traced(t, &recorder),
        _ => sim.run_traced(&recorder),
    };
    let events = recorder.take_events();

    writeln!(out, "scenario: {} ({})", preset.label(), attack.model_name())?;
    if !faults.is_none() {
        writeln!(out, "faults: {}", describe_faults(&faults, &retry))?;
    }
    writeln!(out, "trials: {trials}  routes/trial: {routes}  seed: {seed}")?;
    writeln!(out)?;
    write!(out, "{}", sos_observe::render_timeline(&events))?;
    writeln!(out)?;
    writeln!(out, "empirical P_S: {:.6}", result.success_rate())?;
    write_sinks(
        out,
        trace_out.as_deref(),
        metrics_out.as_deref(),
        &events,
        &metrics,
    )?;
    Ok(())
}

fn compare(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = common_config(args)?;
    let trials: u64 = args.get_or("trials", 100)?;
    let routes: u64 = args.get_or("routes", 100)?;
    let seed: u64 = args.get_or("seed", 0)?;
    args.reject_unknown()?;
    let row = sos_sim::compare_models(
        "cli",
        &cfg.scenario,
        cfg.attack,
        trials,
        routes,
        seed,
    )?;
    writeln!(out, "{}", sos_sim::ComparisonRow::CSV_HEADER)?;
    writeln!(out, "{row}")?;
    Ok(())
}

fn optimize(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    use sos_analysis::{AttackProfile, Constraints, DesignSpace, Optimizer};
    let overlay_nodes: u64 = args.get_or("overlay-nodes", 10_000)?;
    let sos_nodes: u64 = args.get_or("sos-nodes", 100)?;
    let p_b: f64 = args.get_or("pb", 0.5)?;
    let max_latency: Option<f64> = match args.get("max-latency") {
        None => None,
        Some(raw) => Some(raw.parse()?),
    };
    let top: usize = args.get_or("top", 10)?;
    args.reject_unknown()?;

    let system = SystemParams::new(overlay_nodes, sos_nodes, p_b)?;
    // A representative threat mix from the shared preset catalogue:
    // heavy flood, patient intruder, balanced adversary.
    let profiles: Vec<AttackProfile> = [
        sos_core::ThreatPreset::HeavyFlooder,
        sos_core::ThreatPreset::PatientIntruder,
        sos_core::ThreatPreset::Balanced,
    ]
    .into_iter()
    .map(|preset| AttackProfile::new(preset.label(), preset.attack(&system)))
    .collect();
    let optimizer = Optimizer::new(system, DesignSpace::paper_grid(), profiles)
        .constraints(Constraints {
            max_clean_latency: max_latency,
            min_ps_per_profile: None,
        });
    let ranked = optimizer.run()?;
    writeln!(
        out,
        "rank,design,worst_case_ps,heavy-flooder,patient-intruder,balanced,clean_latency"
    )?;
    for (i, d) in ranked.iter().take(top).enumerate() {
        writeln!(
            out,
            "{},L={} {} {},{:.6},{:.6},{:.6},{:.6},{:.2}",
            i + 1,
            d.layers,
            d.mapping,
            d.distribution,
            d.score,
            d.per_profile[0],
            d.per_profile[1],
            d.per_profile[2],
            d.clean_latency
        )?;
    }
    if ranked.is_empty() {
        writeln!(out, "no feasible design under the given constraints")?;
    }
    Ok(())
}

fn frontier(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    use sos_analysis::{latency_resilience_frontier, ForwardingDiscipline, LatencyModel};
    let overlay_nodes: u64 = args.get_or("overlay-nodes", 10_000)?;
    let sos_nodes: u64 = args.get_or("sos-nodes", 100)?;
    let p_b: f64 = args.get_or("pb", 0.5)?;
    let chord = matches!(args.get("transport"), Some("chord"));
    let pareto_only = args.get("pareto-only").is_some();
    args.reject_unknown()?;

    let system = SystemParams::new(overlay_nodes, sos_nodes, p_b)?;
    let model = LatencyModel {
        per_hop_mean: 1.0,
        chord_transport: chord,
        discipline: ForwardingDiscipline::DelayAware,
    };
    let points = latency_resilience_frontier(
        system,
        NodeDistribution::Even,
        AttackBudget::paper_default(),
        SuccessiveParams::paper_default(),
        model,
        1..=8,
        &MappingDegree::paper_named_set(),
    )?;
    writeln!(out, "design,P_S,latency,pareto")?;
    for p in points {
        if pareto_only && !p.pareto_optimal {
            continue;
        }
        writeln!(out, "{p}")?;
    }
    Ok(())
}

fn tornado_cmd(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    use sos_analysis::{tornado, OperatingPoint};
    let mut point = OperatingPoint::paper_default();
    point.overlay_nodes = args.get_or("overlay-nodes", point.overlay_nodes)?;
    point.sos_nodes = args.get_or("sos-nodes", point.sos_nodes)?;
    point.break_in_probability = args.get_or("pb", point.break_in_probability)?;
    point.layers = args.get_or("layers", point.layers)?;
    point.mapping = parse_mapping(args.get("mapping").unwrap_or("one-to-2"))?;
    point.distribution = parse_distribution(args.get("distribution").unwrap_or("even"))?;
    point.break_in_trials = args.get_or("nt", point.break_in_trials)?;
    point.congestion_capacity = args.get_or("nc", point.congestion_capacity)?;
    point.rounds = args.get_or("rounds", point.rounds)?;
    point.prior_knowledge = args.get_or("pe", point.prior_knowledge)?;
    let step: f64 = args.get_or("step", 0.25)?;
    let evaluator = parse_evaluator(args.get("evaluator").unwrap_or("binomial"))?;
    args.reject_unknown()?;

    let base = point.price(evaluator)?;
    writeln!(out, "# tornado (step ±{:.0}%)", step * 100.0)?;
    writeln!(out, "base P_S: {base:.6}")?;
    writeln!(out, "parameter,ps_low,ps_high,swing")?;
    for entry in tornado(&point, step, evaluator)? {
        writeln!(out, "{entry}")?;
    }
    Ok(())
}

fn advise(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    use sos_core::ThreatPreset;
    let cfg = common_config(args)?;
    let threats: Vec<ThreatPreset> = match args.get("threats") {
        None => ThreatPreset::ALL.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|label| {
                ThreatPreset::parse(label.trim()).ok_or_else(|| {
                    ArgError(format!(
                        "unknown threat `{label}` (known: {})",
                        ThreatPreset::ALL.map(|t| t.label()).join(", ")
                    ))
                })
            })
            .collect::<Result<_, _>>()?,
    };
    args.reject_unknown()?;
    let advice = sos_analysis::review(&cfg.scenario, &threats)?;
    writeln!(
        out,
        "reviewing L={} {:?} against {} threats",
        cfg.scenario.topology().layer_count(),
        cfg.scenario.topology().degrees(),
        threats.len()
    )?;
    if advice.is_empty() {
        writeln!(out, "no findings — the design survives the stated threats")?;
    }
    for item in &advice {
        writeln!(out, "{item}")?;
    }
    if sos_analysis::has_critical(&advice) {
        writeln!(out, "verdict: REJECT (critical findings)")?;
    } else {
        writeln!(out, "verdict: acceptable")?;
    }
    Ok(())
}

fn figure(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let cache = args.get("cache").map(str::to_string);
    let trials = args.get_or("trials", 100u64)?;
    let routes = args.get_or("routes", 100u64)?;
    let seed = args.get_or("seed", 42u64)?;
    args.reject_unknown()?;
    let which = args
        .positionals()
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| ArgError("figure requires a name (e.g. `sos figure fig4a`)".into()))?;
    if let Some(path) = cache {
        // Stderr, not `out`: the CSV on stdout must stay byte-identical
        // between cold and warm cache runs (CI asserts exactly that).
        let loaded = sos_sim::set_global_cache(&path)?;
        eprintln!("sweep cache {path}: {loaded} entries loaded");
    }
    use sos_bench::{ablations, figures};
    let opts = ablations::AblationOptions {
        trials,
        routes_per_trial: routes,
        seed,
    };
    let tables = match which {
        "fig4a" => vec![figures::fig4a()],
        "fig4b" => vec![figures::fig4b()],
        "fig6a" => vec![figures::fig6a()],
        "fig6b" => vec![figures::fig6b()],
        "fig7" => vec![figures::fig7()],
        "fig8a" => vec![figures::fig8a()],
        "fig8b" => vec![figures::fig8b()],
        "all" => figures::all(),
        // Monte Carlo families, routed through the sweep executor (so
        // --cache makes repeat runs instant).
        "ablation-routing" => vec![ablations::routing_ablation(opts)],
        "ablation-chord" => vec![ablations::chord_ablation(opts)],
        "ext-faults" => vec![ablations::fault_sweep(opts)],
        "ext-monitoring" => vec![ablations::monitoring_extension(opts)],
        other => return Err(ArgError(format!("unknown figure `{other}`")).into()),
    };
    for t in tables {
        writeln!(out, "{t}")?;
    }
    Ok(())
}

/// Maps the shared + simulate CLI flags onto a wire [`sos_serve::SimSpec`],
/// so `sos client analyze/simulate --layers 4 ...` describes exactly the
/// configuration the same flags describe to `sos analyze/simulate`.
fn spec_from_args(args: &ParsedArgs) -> Result<sos_serve::SimSpec, ArgError> {
    let d = sos_serve::SimSpec::default();
    Ok(sos_serve::SimSpec {
        overlay_nodes: args.get_or("overlay-nodes", d.overlay_nodes)?,
        sos_nodes: args.get_or("sos-nodes", d.sos_nodes)?,
        pb: args.get_or("pb", d.pb)?,
        filters: args.get_or("filters", d.filters)?,
        layers: args.get_or("layers", d.layers)?,
        mapping: args.get("mapping").unwrap_or(d.mapping.as_str()).to_string(),
        distribution: args
            .get("distribution")
            .unwrap_or(d.distribution.as_str())
            .to_string(),
        evaluator: args
            .get("evaluator")
            .unwrap_or(d.evaluator.as_str())
            .to_string(),
        model: args.get("model").unwrap_or(d.model.as_str()).to_string(),
        nt: args.get_or("nt", d.nt)?,
        nc: args.get_or("nc", d.nc)?,
        rounds: args.get_or("rounds", d.rounds)?,
        pe: args.get_or("pe", d.pe)?,
        trials: args.get_or("trials", d.trials)?,
        routes: args.get_or("routes", d.routes)?,
        seed: args.get_or("seed", d.seed)?,
        policy: args.get("policy").unwrap_or(d.policy.as_str()).to_string(),
        transport: args
            .get("transport")
            .unwrap_or(d.transport.as_str())
            .to_string(),
        faults: args.get("faults").map(str::to_string),
        retry: args.get("retry").map(str::to_string),
    })
}

fn serve_cmd(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7070").to_string();
    let threads = threads_flag(args)?;
    let cache = args.get("cache").map(std::path::PathBuf::from);
    let queue_depth =
        args.get_or("queue-depth", sos_serve::ServerOptions::default().queue_depth)?;
    let slow_ms = match args.get("slow-ms") {
        Some(_) => Some(args.get_or("slow-ms", 0)?),
        None => None,
    };
    let slow_log = args.get("slow-log").map(std::path::PathBuf::from);
    let reporter_opts = reporter_flags(args)?;
    args.reject_unknown()?;

    let server = sos_serve::Server::bind(
        addr.as_str(),
        sos_serve::ServerOptions { threads, cache, queue_depth, slow_ms, slow_log },
    )?;
    if server.cache_entries_loaded() > 0 {
        eprintln!("sweep cache: {} entries loaded", server.cache_entries_loaded());
    }
    // The "listening" line is the readiness signal scripts wait for
    // (see OPERATIONS.md), so flush it before blocking in the accept
    // loop.
    writeln!(out, "sosd listening on {}", server.local_addr())?;
    out.flush()?;
    let reporter = reporter_opts.map(sos_observe::ProgressReporter::start);
    let report = server.run()?;
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    writeln!(
        out,
        "sosd drained: {} connections, {} requests ({} http, {} errors), {} cached points",
        report.connections,
        report.requests,
        report.http_requests,
        report.errors,
        report.cached_points,
    )?;
    Ok(())
}

fn client_cmd(
    args: &ParsedArgs,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7070").to_string();
    // Connection-resilience knobs (distinct from the spec's per-hop
    // `--retry`, which configures fault-plane retries *inside* the
    // simulation): `--retries` re-sends idempotent requests through
    // reconnects and `busy` shedding, `--deadline-ms` asks the server
    // to give up rather than serve a stale answer late.
    let retries: u32 = args.get_or("retries", 1)?;
    let backoff_ms: u64 = args.get_or("retry-backoff-ms", 100)?;
    let deadline_ms = match args.get("deadline-ms") {
        Some(_) => Some(args.get_or("deadline-ms", 0)?),
        None => None,
    };
    let policy = sos_serve::RetryPolicy::new(retries.max(1), backoff_ms, u64::MAX);
    let mut client = sos_serve::RetryClient::new(addr.clone(), policy);
    let op = args
        .positionals()
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| {
            ArgError(
                "client requires an operation (ping | analyze | simulate | sweep | profile | trace | shutdown)"
                    .into(),
            )
        })?;
    if deadline_ms.is_some() && !matches!(op, "simulate" | "sweep") {
        return Err(ArgError("--deadline-ms applies to simulate and sweep only".into()).into());
    }
    match op {
        "ping" => {
            args.reject_unknown()?;
            let body = client.ping()?;
            writeln!(out, "{}", serde_json::to_string_pretty(&body)?)?;
        }
        "analyze" => {
            let spec = spec_from_args(args)?;
            args.reject_unknown()?;
            let mut body = client.analyze(&spec)?;
            // Drop the transport-level envelope fields so stdout stays
            // byte-identical to `sos analyze --json 1` (CI diffs them).
            if let serde_json::Value::Map(entries) = &mut body {
                entries.retain(|(k, _)| k != "request_id" && k != "timing");
            }
            writeln!(out, "{}", serde_json::to_string_pretty(&body)?)?;
        }
        "simulate" => {
            let spec = spec_from_args(args)?;
            let timing_flag = args.get("timing").is_some_and(|v| v != "0");
            args.reject_unknown()?;
            let rtt_started = std::time::Instant::now();
            let body = client.simulate_with(&spec, deadline_ms)?;
            let rtt_ns = rtt_started.elapsed().as_nanos();
            // Reprint as the same {fingerprint, result} document
            // `sos simulate --json 1` emits, with the cache verdict on
            // stderr, so stdout can be byte-diffed against the direct
            // CLI path (CI does exactly that).
            let cached = matches!(body["cached"], serde_json::Value::Bool(true));
            eprintln!("cache: {}", if cached { "hit" } else { "miss" });
            if timing_flag {
                // Client-observed RTT next to the server-attributed
                // breakdown, on stderr so stdout stays byte-diffable.
                let t = &body["timing"];
                let ns = |key: &str| t[key].as_u64().unwrap_or(0);
                eprintln!(
                    "timing: rtt {rtt_ns} ns | server total {} ns \
                     (queue {}, lock {}, build {}, break-in {}, congestion {}, routing {}) \
                     | trials {} cache_hits {} builds_reused {} | request_id {}",
                    ns("total_ns"),
                    ns("queue_ns"),
                    ns("lock_ns"),
                    ns("build_ns"),
                    ns("break_in_ns"),
                    ns("congestion_ns"),
                    ns("routing_ns"),
                    ns("trials"),
                    ns("cache_hits"),
                    ns("builds_reused"),
                    body["request_id"].as_u64().unwrap_or(0),
                );
            }
            let doc = serde_json::json!({
                "fingerprint": body["fingerprint"],
                "result": body["result"],
            });
            writeln!(out, "{}", serde_json::to_string_pretty(&doc)?)?;
        }
        "sweep" => {
            let path = args
                .get("specs")
                .ok_or_else(|| ArgError("client sweep requires --specs FILE".into()))?
                .to_string();
            args.reject_unknown()?;
            let text = std::fs::read_to_string(&path)?;
            let doc: serde_json::Value = serde_json::from_str(&text)?;
            let entries = doc
                .as_array()
                .ok_or_else(|| ArgError(format!("{path}: expected a JSON array of specs")))?;
            let specs = entries
                .iter()
                .map(sos_serve::SimSpec::from_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| ArgError(format!("{path}: {e}")))?;
            let body = client.sweep_with(&specs, deadline_ms)?;
            writeln!(out, "{}", serde_json::to_string_pretty(&body)?)?;
        }
        "profile" => {
            args.reject_unknown()?;
            let body = client.profile()?;
            let table = body["table"]
                .as_str()
                .ok_or_else(|| ArgError("malformed profile reply: no table".into()))?;
            write!(out, "{table}")?;
        }
        "trace" => {
            args.reject_unknown()?;
            let body = client.trace()?;
            // The Chrome trace-event document goes to stdout so
            // `sos client trace > trace.json` loads directly in
            // Perfetto; the span count goes to stderr.
            eprintln!(
                "spans: {} in recorder ({} recorded in total)",
                body["spans"].as_u64().unwrap_or(0),
                body["recorded"].as_u64().unwrap_or(0),
            );
            writeln!(out, "{}", serde_json::to_string(&body["trace"])?)?;
        }
        "shutdown" => {
            args.reject_unknown()?;
            if retries > 1 {
                return Err(ArgError(
                    "shutdown is never retried (a lost reply is indistinguishable from a \
                     successful drain); drop --retries"
                        .into(),
                )
                .into());
            }
            let body = sos_serve::Client::connect(addr.as_str())?.shutdown()?;
            writeln!(out, "{}", serde_json::to_string_pretty(&body)?)?;
        }
        other => {
            return Err(ArgError(format!(
                "unknown client operation `{other}` (ping | analyze | simulate | sweep | profile | trace | shutdown)"
            ))
            .into())
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> (i32, String) {
        let mut buf = Vec::new();
        let code = run(args.iter().map(|s| s.to_string()), &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    /// A `Write` sink the test can read while another thread (the
    /// daemon accept loop) still owns a clone of it.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_and_client_round_trip() {
        let cache = std::env::temp_dir().join(format!("sos-serve-cli-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&cache);
        let cache_arg = cache.display().to_string();

        // One worker thread → cold executions are deterministic, so
        // every byte-identity assertion below holds unconditionally.
        let buf = SharedBuf::default();
        let mut serve_out = buf.clone();
        let serve_args = vec![
            "serve".to_string(),
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--threads".to_string(),
            "1".to_string(),
            "--cache".to_string(),
            cache_arg.clone(),
        ];
        let daemon = std::thread::spawn(move || run(serve_args, &mut serve_out));

        let addr = loop {
            let text = buf.text();
            if let Some(rest) = text.strip_prefix("sosd listening on ") {
                break rest.lines().next().unwrap().trim().to_string();
            }
            assert!(!daemon.is_finished(), "daemon exited early: {text}");
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let (code, pong) = run_to_string(&["client", "ping", "--addr", &addr]);
        assert_eq!(code, 0, "{pong}");
        assert!(pong.contains("\"sosd\""), "{pong}");

        // The daemon's analyze answer is the same document the direct
        // CLI prints, byte for byte.
        let (code, daemon_doc) =
            run_to_string(&["client", "analyze", "--addr", &addr, "--layers", "4"]);
        assert_eq!(code, 0, "{daemon_doc}");
        let (code, direct_doc) = run_to_string(&["analyze", "--json", "1", "--layers", "4"]);
        assert_eq!(code, 0, "{direct_doc}");
        assert_eq!(daemon_doc, direct_doc);

        // Cold and warm daemon simulate answers are byte-identical, and
        // a direct `simulate --json 1` reading the daemon's cache file
        // prints the same document.
        let sim = |extra: &[&str]| {
            let mut argv = extra.to_vec();
            argv.extend([
                "--overlay-nodes",
                "400",
                "--sos-nodes",
                "40",
                "--nt",
                "10",
                "--nc",
                "40",
                "--trials",
                "3",
                "--routes",
                "10",
                "--seed",
                "5",
            ]);
            run_to_string(&argv)
        };
        let (code, cold) = sim(&["client", "simulate", "--addr", &addr]);
        assert_eq!(code, 0, "{cold}");
        let (code, warm) = sim(&["client", "simulate", "--addr", &addr]);
        assert_eq!(code, 0, "{warm}");
        assert_eq!(cold, warm);
        let (code, direct) = sim(&["simulate", "--json", "1", "--cache", &cache_arg]);
        assert_eq!(code, 0, "{direct}");
        assert_eq!(cold, direct);

        let (code, bye) = run_to_string(&["client", "shutdown", "--addr", &addr]);
        assert_eq!(code, 0, "{bye}");
        assert!(bye.contains("\"draining\""), "{bye}");

        assert_eq!(daemon.join().unwrap(), 0);
        assert!(buf.text().contains("sosd drained:"), "{}", buf.text());
        let _ = std::fs::remove_file(&cache);
    }

    #[test]
    fn client_rejects_unknown_operation() {
        let (code, out) = run_to_string(&["client", "frobnicate"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown client operation"), "{out}");
    }

    #[test]
    fn simulate_cache_requires_json() {
        let (code, out) = run_to_string(&["simulate", "--cache", "x.json", "--trials", "1"]);
        assert_eq!(code, 1);
        assert!(out.contains("requires --json"), "{out}");
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, out) = run_to_string(&[]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn analyze_defaults_succeed() {
        let (code, out) = run_to_string(&["analyze"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("P_S:"));
        assert!(out.contains("model: successive"));
    }

    #[test]
    fn analyze_one_burst_matches_library() {
        let (code, out) = run_to_string(&[
            "analyze",
            "--model",
            "one-burst",
            "--mapping",
            "one-to-one",
            "--layers",
            "1",
            "--nt",
            "0",
            "--nc",
            "2000",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("P_S: 0.8000"), "{out}");
    }

    #[test]
    fn simulate_small_run_succeeds() {
        let (code, out) = run_to_string(&[
            "simulate",
            "--overlay-nodes",
            "500",
            "--sos-nodes",
            "50",
            "--trials",
            "10",
            "--routes",
            "20",
            "--nt",
            "10",
            "--nc",
            "50",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("empirical P_S"), "{out}");
        assert!(out.contains("95% CI"), "{out}");
    }

    #[test]
    fn simulate_threads_flag_does_not_change_counts() {
        let base = [
            "simulate",
            "--overlay-nodes",
            "500",
            "--sos-nodes",
            "50",
            "--trials",
            "10",
            "--routes",
            "20",
            "--nt",
            "10",
            "--nc",
            "50",
            "--seed",
            "9",
        ];
        let mut outputs = Vec::new();
        for threads in ["1", "2", "7"] {
            let args: Vec<&str> = base.iter().chain(&["--threads", threads]).copied().collect();
            let (code, out) = run_to_string(&args);
            assert_eq!(code, 0, "{out}");
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1], "thread count changed the result");
        assert_eq!(outputs[0], outputs[2], "thread count changed the result");
        let (code, out) = run_to_string(&["simulate", "--threads", "0"]);
        assert_eq!(code, 1);
        assert!(out.contains("at least one thread"), "{out}");
    }

    #[test]
    fn trace_prints_per_trial_timeline() {
        let (code, out) = run_to_string(&[
            "trace",
            "--scenario",
            "paper-intelligent",
            "--overlay-nodes",
            "500",
            "--sos-nodes",
            "50",
            "--trials",
            "2",
            "--routes",
            "10",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("scenario: paper-intelligent"), "{out}");
        assert!(out.contains("trial 0"), "{out}");
        assert!(out.contains("trial 1"), "{out}");
        assert!(out.contains("break-in"), "{out}");
        assert!(out.contains("routing"), "{out}");
        assert!(out.contains("empirical P_S"), "{out}");
    }

    #[test]
    fn trace_rejects_unknown_scenario() {
        let (code, out) = run_to_string(&["trace", "--scenario", "nope"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown scenario `nope`"), "{out}");
    }

    #[test]
    fn trace_writes_jsonl_and_csv_sinks() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("sos-cli-test-trace.jsonl");
        let metrics_path = dir.join("sos-cli-test-metrics.csv");
        let (code, out) = run_to_string(&[
            "trace",
            "--overlay-nodes",
            "500",
            "--sos-nodes",
            "50",
            "--trials",
            "1",
            "--routes",
            "10",
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        let jsonl = std::fs::read_to_string(&trace_path).unwrap();
        assert!(jsonl.lines().count() > 10, "trace file too small");
        assert!(jsonl.contains("\"kind\":\"trial_start\""));
        let csv = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(csv.starts_with("metric,type,stat,value"), "{csv}");
        assert!(csv.contains("break_in_attempts,counter"), "{csv}");
        let _ = std::fs::remove_file(trace_path);
        let _ = std::fs::remove_file(metrics_path);
    }

    #[test]
    fn simulate_with_metrics_out_writes_csv() {
        let metrics_path = std::env::temp_dir().join("sos-cli-test-sim-metrics.csv");
        let (code, out) = run_to_string(&[
            "simulate",
            "--overlay-nodes",
            "500",
            "--sos-nodes",
            "50",
            "--trials",
            "5",
            "--routes",
            "10",
            "--nt",
            "10",
            "--nc",
            "50",
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("empirical P_S"), "{out}");
        let csv = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(csv.contains("trials,counter,value,5"), "{csv}");
        let _ = std::fs::remove_file(metrics_path);
    }

    #[test]
    fn simulate_with_faults_and_retries_reports_plane() {
        let base = [
            "simulate",
            "--overlay-nodes",
            "500",
            "--sos-nodes",
            "50",
            "--trials",
            "10",
            "--routes",
            "20",
            "--nt",
            "10",
            "--nc",
            "50",
        ];
        let faulted: Vec<&str> = base
            .iter()
            .chain(["--faults", "0.3"].iter())
            .copied()
            .collect();
        let retried: Vec<&str> = base
            .iter()
            .chain(["--faults", "0.3", "--retry", "4"].iter())
            .copied()
            .collect();
        let (code, clean_out) = run_to_string(&base);
        assert_eq!(code, 0, "{clean_out}");
        let (code, faulted_out) = run_to_string(&faulted);
        assert_eq!(code, 0, "{faulted_out}");
        let (code, retried_out) = run_to_string(&retried);
        assert_eq!(code, 0, "{retried_out}");
        assert!(!clean_out.contains("faults:"), "{clean_out}");
        assert!(faulted_out.contains("faults: loss=0.3 (no retries)"), "{faulted_out}");
        assert!(retried_out.contains("retry attempts=4"), "{retried_out}");
        let ps = |s: &str| -> f64 {
            s.lines()
                .find_map(|l| l.strip_prefix("empirical P_S: "))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(ps(&faulted_out) < ps(&clean_out));
        assert!(ps(&retried_out) > ps(&faulted_out));
    }

    #[test]
    fn trace_timeline_shows_fault_and_retry_events() {
        // The capped congestion budget (2 000 onsets) must stay well below
        // the overlay population so some routes traverse live hops and
        // actually roll the fault dice.
        let (code, out) = run_to_string(&[
            "trace",
            "--overlay-nodes",
            "3000",
            "--sos-nodes",
            "100",
            "--trials",
            "2",
            "--routes",
            "20",
            "--seed",
            "1",
            "--faults",
            "loss=0.4,delay=0.2",
            "--retry",
            "attempts=3,backoff=1",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("faults: loss=0.4 delay=0.2x4t"), "{out}");
        // Acceptance criterion: injected faults and retries surface in
        // the rendered per-phase timeline, not just in counters.
        assert!(out.contains("faults injected"), "{out}");
        assert!(out.contains("retries"), "{out}");
    }

    #[test]
    fn trace_jsonl_contains_fault_events() {
        let trace_path = std::env::temp_dir().join("sos-cli-test-fault-trace.jsonl");
        let (code, out) = run_to_string(&[
            "trace",
            "--overlay-nodes",
            "3000",
            "--sos-nodes",
            "100",
            "--trials",
            "2",
            "--routes",
            "20",
            "--seed",
            "1",
            "--faults",
            "0.4",
            "--retry",
            "3",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        let jsonl = std::fs::read_to_string(&trace_path).unwrap();
        assert!(jsonl.contains("\"kind\":\"fault_injected\""), "no fault events in trace");
        assert!(jsonl.contains("\"kind\":\"hop_retry\""), "no retry events in trace");
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn bad_fault_specs_rejected() {
        let (code, out) = run_to_string(&["simulate", "--faults", "loss=2.0"]);
        assert_eq!(code, 1);
        assert!(out.contains("not in [0, 1]"), "{out}");
        let (code, out) = run_to_string(&["simulate", "--faults", "wibble=0.1"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown key `wibble`"), "{out}");
        let (code, out) = run_to_string(&["simulate", "--retry", "0"]);
        assert_eq!(code, 1);
        assert!(out.contains("at least one attempt"), "{out}");
        let (code, out) = run_to_string(&["simulate", "--retry", "lots=9"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown key `lots`"), "{out}");
    }

    #[test]
    fn profile_grid_results_identical_with_telemetry_off() {
        let dir = std::env::temp_dir();
        let on_path = dir.join("sos-cli-test-profile-on.csv");
        let off_path = dir.join("sos-cli-test-profile-off.csv");
        let prom_path = dir.join("sos-cli-test-profile.prom");
        let (code, on_out) = run_to_string(&[
            "profile",
            "--workload",
            "grid",
            "--trials",
            "1",
            "--routes",
            "5",
            "--telemetry-out",
            prom_path.to_str().unwrap(),
            "--results-out",
            on_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{on_out}");
        let (code, off_out) = run_to_string(&[
            "profile",
            "--workload",
            "grid",
            "--trials",
            "1",
            "--routes",
            "5",
            "--telemetry",
            "0",
            "--results-out",
            off_path.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{off_out}");
        // Telemetry observes but never steers: the numeric results of
        // the on and off runs must be byte-identical.
        let on = std::fs::read_to_string(&on_path).unwrap();
        let off = std::fs::read_to_string(&off_path).unwrap();
        assert_eq!(on, off, "telemetry changed the workload's results");
        assert!(on.lines().count() == 43, "42 points + header: {on}");
        // The profile table names every phase with quantile columns.
        for needle in ["phase", "p50", "p95", "p99", "build", "break-in", "congestion", "routing"] {
            assert!(on_out.contains(needle), "missing {needle} in {on_out}");
        }
        assert!(off_out.contains("reference run, no profile"), "{off_out}");
        // The exposition sink parses as Prometheus text format: every
        // non-comment line is `name[{labels}] value`.
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        let mut series = 0usize;
        for line in prom.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample has name and value");
            assert!(value.parse::<f64>().is_ok(), "bad sample value: {line}");
            assert!(!name.is_empty());
            series += 1;
        }
        assert!(series >= 10, "too few series in exposition:\n{prom}");
        for required in [
            "sos_trials_total",
            "sos_routes_total",
            "sos_sweep_points_done",
            "sos_phase_seconds_total{phase=\"build\"}",
            "sos_phase_ns{phase=\"routing\",quantile=\"0.95\"}",
            "sos_worker_trials_total",
        ] {
            assert!(prom.contains(required), "missing {required} in\n{prom}");
        }
        for p in [on_path, off_path, prom_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn profile_simulate_workload_and_bad_workload() {
        let (code, out) = run_to_string(&[
            "profile",
            "--workload",
            "simulate",
            "--overlay-nodes",
            "500",
            "--sos-nodes",
            "50",
            "--trials",
            "5",
            "--routes",
            "10",
            "--nt",
            "10",
            "--nc",
            "50",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("point,successes"), "{out}");
        assert!(out.contains("routing"), "{out}");
        let (code, out) = run_to_string(&["profile", "--workload", "nope"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown workload"), "{out}");
    }

    #[test]
    fn simulate_with_progress_flag_keeps_counts() {
        let base = [
            "simulate",
            "--overlay-nodes",
            "500",
            "--sos-nodes",
            "50",
            "--trials",
            "10",
            "--routes",
            "20",
            "--nt",
            "10",
            "--nc",
            "50",
            "--seed",
            "4",
        ];
        let (code, plain) = run_to_string(&base);
        assert_eq!(code, 0, "{plain}");
        let jsonl = std::env::temp_dir().join("sos-cli-test-sim-telemetry.jsonl");
        let with_reporter: Vec<&str> = base
            .iter()
            .chain(["--progress", "1", "--telemetry-out", jsonl.to_str().unwrap()].iter())
            .copied()
            .collect();
        let (code, reported) = run_to_string(&with_reporter);
        assert_eq!(code, 0, "{reported}");
        assert_eq!(plain, reported, "telemetry changed simulate's output");
        let sink = std::fs::read_to_string(&jsonl).unwrap();
        assert!(sink.lines().count() >= 1, "no snapshot lines in sink");
        assert!(sink.lines().next().unwrap().starts_with('{'), "{sink}");
        let _ = std::fs::remove_file(jsonl);
    }

    #[test]
    fn figure_fig7_prints_csv() {
        let (code, out) = run_to_string(&["figure", "fig7"]);
        assert_eq!(code, 0);
        assert!(out.starts_with("# fig7"));
        assert!(out.contains("series,R,P_S"));
        assert!(out.contains("L=3,1,"));
    }

    #[test]
    fn optimize_ranks_designs() {
        let (code, out) = run_to_string(&["optimize", "--top", "3"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.starts_with("rank,design"), "{out}");
        assert!(out.lines().count() >= 2, "{out}");
        // The top design must not be one-to-all (it dies to the intruder).
        let first = out.lines().nth(1).unwrap();
        assert!(!first.contains("one-to-all"), "{first}");
    }

    #[test]
    fn optimize_latency_constraint_respected() {
        let (code, out) = run_to_string(&["optimize", "--max-latency", "3", "--top", "50"]);
        assert_eq!(code, 0, "{out}");
        for line in out.lines().skip(1) {
            // Unit latency model: L+1 boundaries ⇒ max-latency 3 allows L ≤ 2.
            assert!(
                line.contains("L=1") || line.contains("L=2"),
                "deep design leaked through: {line}"
            );
        }
    }

    #[test]
    fn frontier_prints_points() {
        let (code, out) = run_to_string(&["frontier", "--pareto-only", "1"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.starts_with("design,P_S,latency,pareto"));
        for line in out.lines().skip(1) {
            assert!(line.ends_with("true"), "non-pareto point in output: {line}");
        }
    }

    #[test]
    fn tornado_prints_ranked_sensitivities() {
        let (code, out) = run_to_string(&["tornado", "--step", "0.2"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("base P_S:"), "{out}");
        assert!(out.contains("parameter,ps_low,ps_high,swing"));
        // All eight parameters reported.
        for p in ["N_T", "N_C", "P_B", "P_E", "R,", "L,", "n,", "N,"] {
            assert!(out.contains(p), "missing {p} in {out}");
        }
    }

    #[test]
    fn advise_flags_original_sos() {
        let (code, out) = run_to_string(&["advise", "--mapping", "one-to-all"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("one-to-all-under-break-in"), "{out}");
        assert!(out.contains("verdict: REJECT"), "{out}");
    }

    #[test]
    fn advise_accepts_good_design_with_selected_threats() {
        let (code, out) = run_to_string(&[
            "advise",
            "--layers",
            "4",
            "--mapping",
            "one-to-2",
            "--threats",
            "paper-intelligent",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("verdict: acceptable"), "{out}");
    }

    #[test]
    fn advise_rejects_unknown_threat_label() {
        let (code, out) = run_to_string(&["advise", "--threats", "zombie-horde"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown threat"), "{out}");
    }

    #[test]
    fn unknown_command_fails() {
        let (code, out) = run_to_string(&["frobnicate"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn unknown_flag_fails() {
        let (code, out) = run_to_string(&["analyze", "--tirals", "5"]);
        assert_eq!(code, 1);
        assert!(out.contains("--tirals"), "{out}");
    }

    #[test]
    fn bad_mapping_reported() {
        let (code, out) = run_to_string(&["analyze", "--mapping", "one-two-many"]);
        assert_eq!(code, 1);
        assert!(out.contains("unrecognized mapping"), "{out}");
    }

    #[test]
    fn invalid_configuration_propagates() {
        // 100 SOS nodes cannot fill 101 layers.
        let (code, out) = run_to_string(&["analyze", "--layers", "101"]);
        assert_eq!(code, 1);
        assert!(out.contains("error:"), "{out}");
    }
}
