//! `sos` — command-line front end for the sos-resilience workspace.
//!
//! See [`commands::USAGE`] (printed by `sos` with no arguments) for the
//! full flag reference.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    std::process::exit(commands::run(argv, &mut stdout));
}
