//! Property-based tests for the math substrate.

use proptest::prelude::*;
use sos_math::combinatorics::{clamped_ff_ratio, ln_binomial_continuous};
use sos_math::hypergeom::{all_specific_in_sample, all_specific_in_sample_binomial};
use sos_math::sampling::proportional_split;
use sos_math::stats::{proportion_ci, quantile, RunningStats};
use sos_math::{binomial, ln_binomial, ln_gamma, HypergeometricDist};

proptest! {
    #[test]
    fn ln_gamma_recurrence_holds(x in 0.05f64..5_000.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
            "x = {x}: {lhs} vs {rhs}");
    }

    #[test]
    fn ln_gamma_log_convex(x in 0.5f64..1_000.0, d in 0.01f64..10.0) {
        // Log-convexity: ln Γ((a+b)/2) <= (ln Γ(a) + ln Γ(b)) / 2.
        let a = x;
        let b = x + d;
        let mid = ln_gamma((a + b) / 2.0);
        let avg = (ln_gamma(a) + ln_gamma(b)) / 2.0;
        prop_assert!(mid <= avg + 1e-9);
    }

    #[test]
    fn ln_binomial_exact_agreement(n in 0u64..120, k in 0u64..120) {
        // Where the exact value fits in u128, the log form must agree.
        if let Some(exact) = binomial(n, k) {
            if exact > 0 {
                let expect = (exact as f64).ln();
                let got = ln_binomial(n, k);
                prop_assert!((got - expect).abs() < 1e-7 * expect.abs().max(1.0));
            }
        }
    }

    #[test]
    fn continuous_binomial_interpolates(n in 2u64..200, k in 1u64..200) {
        prop_assume!(k < n);
        // C(y, k) is increasing in y above the diagonal.
        let lo = ln_binomial_continuous(n as f64, k as f64);
        let hi = ln_binomial_continuous(n as f64 + 0.5, k as f64);
        prop_assert!(hi >= lo);
    }

    #[test]
    fn ratio_is_probability(x in 1.0f64..10_000.0, frac in 0.0f64..=1.0, z in 0u64..50) {
        prop_assume!(x >= z as f64);
        let y = frac * x;
        let p = clamped_ff_ratio(x, y, z);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn ratio_monotone_in_sample(x in 10.0f64..5_000.0, z in 1u64..10,
                                a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        prop_assume!(x >= z as f64);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = clamped_ff_ratio(x, lo * x, z);
        let p_hi = clamped_ff_ratio(x, hi * x, z);
        prop_assert!(p_lo <= p_hi + 1e-12);
    }

    #[test]
    fn ratio_antitone_in_subset(x in 10.0f64..5_000.0, frac in 0.0f64..=1.0,
                                z in 1u64..20) {
        prop_assume!(x >= (z + 1) as f64);
        let y = frac * x;
        // Requiring a bigger specific subset can only be less likely.
        let small = all_specific_in_sample(x, y, z);
        let large = all_specific_in_sample(x, y, z + 1);
        prop_assert!(large <= small + 1e-12);
    }

    #[test]
    fn hypergeom_below_binomial_relaxation(x in 10.0f64..2_000.0,
                                           frac in 0.0f64..=1.0,
                                           z in 1u64..12) {
        prop_assume!(x >= z as f64);
        let y = frac * x;
        let h = all_specific_in_sample(x, y, z);
        let b = all_specific_in_sample_binomial(x, y, z as f64);
        prop_assert!(h <= b + 1e-9, "hyper {h} > binom {b}");
    }

    #[test]
    fn hypergeom_pmf_is_distribution(pop in 1u64..200, marked_frac in 0.0f64..=1.0,
                                     sample_frac in 0.0f64..=1.0) {
        let marked = (pop as f64 * marked_frac) as u64;
        let sample = (pop as f64 * sample_frac) as u64;
        let d = HypergeometricDist::new(pop, marked, sample).unwrap();
        let total: f64 = (d.min_k()..=d.max_k()).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "sums to {total}");
        let mean: f64 = (d.min_k()..=d.max_k()).map(|k| k as f64 * d.pmf(k)).sum();
        prop_assert!((mean - d.mean()).abs() < 1e-6 * d.mean().max(1.0));
    }

    #[test]
    fn exact_all_drawn_matches_continuous(pop in 2u64..200, marked in 0u64..20,
                                          sample in 0u64..200) {
        prop_assume!(marked <= pop && sample <= pop);
        let d = HypergeometricDist::new(pop, marked, sample).unwrap();
        let exact = d.all_successes_drawn();
        let cont = all_specific_in_sample(pop as f64, sample as f64, marked);
        prop_assert!((exact - cont).abs() < 1e-9, "{exact} vs {cont}");
    }

    #[test]
    fn proportional_split_conserves(total in 0u64..100_000,
                                    weights in prop::collection::vec(0.0f64..100.0, 1..20)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let split = proportional_split(total, &weights);
        prop_assert_eq!(split.iter().sum::<u64>(), total);
        // No bucket deviates from its exact share by a full unit or more.
        let sum: f64 = weights.iter().sum();
        for (i, &s) in split.iter().enumerate() {
            let exact = total as f64 * weights[i] / sum;
            prop_assert!((s as f64 - exact).abs() < 1.0 + 1e-9,
                "bucket {i}: {s} vs exact {exact}");
        }
    }

    #[test]
    fn running_stats_merge_associative(
        a in prop::collection::vec(-100.0f64..100.0, 0..50),
        b in prop::collection::vec(-100.0f64..100.0, 0..50),
    ) {
        let mut seq = RunningStats::new();
        for &x in a.iter().chain(&b) {
            seq.push(x);
        }
        let mut left = RunningStats::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = RunningStats::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), seq.count());
        if seq.count() > 0 {
            prop_assert!((left.mean() - seq.mean()).abs() < 1e-9);
            prop_assert!((left.sample_variance() - seq.sample_variance()).abs() < 1e-7);
        }
    }

    #[test]
    fn wilson_ci_contains_estimate(successes in 0u64..1_000, extra in 0u64..1_000) {
        let trials = successes + extra.max(1);
        let ci = proportion_ci(successes, trials, 0.95);
        prop_assert!(ci.contains(ci.estimate));
        prop_assert!(ci.lower >= 0.0 && ci.upper <= 1.0);
        prop_assert!(ci.lower <= ci.upper);
    }

    #[test]
    fn quantile_within_range(mut data in prop::collection::vec(-1e6f64..1e6, 1..200),
                             q in 0.0f64..=1.0) {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let v = quantile(&data, q);
        prop_assert!(v >= data[0] && v <= data[data.len() - 1]);
    }
}
