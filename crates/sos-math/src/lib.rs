//! Special functions and statistics substrate for the `sos-resilience`
//! workspace.
//!
//! The ICDCS 2004 analysis of the generalized Secure Overlay Services (SOS)
//! architecture is built on a small amount of non-trivial mathematics that
//! has no lightweight off-the-shelf crate in this workspace's dependency
//! budget:
//!
//! * combinatorial ratios `C(y, z) / C(x, z)` evaluated at *fractional*
//!   average-case arguments (the paper's `P(x, y, z)`),
//! * the log-gamma function (Lanczos approximation) for continuous
//!   binomial coefficients,
//! * hypergeometric tail probabilities for validating the average-case
//!   model against exact distributions,
//! * proportion confidence intervals and running summary statistics for
//!   the Monte Carlo engine,
//! * partial-shuffle sampling helpers for the attack simulator.
//!
//! Everything here is deterministic, allocation-light and extensively
//! property-tested.
//!
//! # Example
//!
//! ```
//! use sos_math::hypergeom::all_specific_in_sample;
//!
//! // Probability that a random 4-subset of 10 nodes contains a specific
//! // 2-subset: C(4,2)/C(10,2) ... expressed per the paper as P(x, y, z)
//! // with x = population, y = sample, z = specific subset.
//! let p = all_specific_in_sample(10.0, 4.0, 2);
//! assert!((p - 6.0 / 45.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combinatorics;
pub mod hypergeom;
pub mod sampling;
pub mod series;
pub mod special;
pub mod stats;

pub use combinatorics::{binomial, falling_factorial, ln_binomial};
pub use hypergeom::{all_specific_in_sample, HypergeometricDist};
pub use special::{ln_factorial, ln_gamma};
pub use stats::{proportion_ci, RunningStats, SummaryStats};
