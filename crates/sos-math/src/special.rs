//! Log-gamma and related special functions.
//!
//! The standard library does not expose `lgamma`, and the workspace
//! deliberately avoids heavyweight numerical crates, so we implement the
//! Lanczos approximation directly. Accuracy is better than `1e-12` relative
//! error over the domain used by the SOS analysis (arguments in
//! `(0, ~1e6)`), which is verified by the unit and property tests below.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's constants).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

const LN_SQRT_TWO_PI: f64 = 0.918_938_533_204_672_8;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for small arguments.
/// Returns `f64::INFINITY` for `x == 0` (where Γ has a pole) and `f64::NAN`
/// for negative `x` (the SOS analysis never needs the analytic continuation
/// and silently extending it would mask bugs).
///
/// # Example
///
/// ```
/// // Γ(5) = 4! = 24
/// assert!((sos_math::ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::INFINITY;
    }
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - sin_pi_x.ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    LN_SQRT_TWO_PI + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of `n!` for non-negative `n`.
///
/// Small values (`n <= 20`) come from an exact table; larger values from
/// [`ln_gamma`].
///
/// # Example
///
/// ```
/// assert!((sos_math::ln_factorial(10) - 3_628_800.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    const EXACT: [u64; 21] = [
        1,
        1,
        2,
        6,
        24,
        120,
        720,
        5_040,
        40_320,
        362_880,
        3_628_800,
        39_916_800,
        479_001_600,
        6_227_020_800,
        87_178_291_200,
        1_307_674_368_000,
        20_922_789_888_000,
        355_687_428_096_000,
        6_402_373_705_728_000,
        121_645_100_408_832_000,
        2_432_902_008_176_640_000,
    ];
    if n <= 20 {
        (EXACT[n as usize] as f64).ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// The regularized error-function complement is not needed; instead the
/// Monte Carlo layer uses the inverse standard-normal CDF for confidence
/// intervals. This is Acklam's rational approximation, accurate to about
/// `1.15e-9` absolute error.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// # Example
///
/// ```
/// // 97.5th percentile of the standard normal ≈ 1.959964
/// let z = sos_math::special::inverse_normal_cdf(0.975);
/// assert!((z - 1.959_964).abs() < 1e-5);
/// ```
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf requires p in (0, 1), got {p}"
    );
    // Coefficients for the central region.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..=30 {
            let expect = ln_factorial(n - 1);
            let got = ln_gamma(n as f64);
            assert!(
                (got - expect).abs() < 1e-10 * expect.abs().max(1.0),
                "ln_gamma({n}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
        // Γ(3/2) = sqrt(π)/2
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) over a wide range.
        let mut x = 0.1;
        while x < 200.0 {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
                "recurrence failed at x = {x}: {lhs} vs {rhs}"
            );
            x *= 1.37;
        }
    }

    #[test]
    fn ln_gamma_edge_cases() {
        assert!(ln_gamma(0.0).is_infinite());
        assert!(ln_gamma(-1.5).is_nan());
        assert!(ln_gamma(f64::NAN).is_nan());
    }

    #[test]
    fn ln_factorial_large_consistent_with_gamma() {
        for n in [21u64, 50, 100, 1_000, 100_000] {
            let got = ln_factorial(n);
            let expect = ln_gamma(n as f64 + 1.0);
            assert!((got - expect).abs() < 1e-9 * expect);
        }
    }

    #[test]
    fn inverse_normal_cdf_known_quantiles() {
        let cases = [
            (0.5, 0.0),
            (0.841_344_746, 1.0),
            (0.975, 1.959_964),
            (0.995, 2.575_829),
            (0.025, -1.959_964),
        ];
        for (p, z) in cases {
            assert!(
                (inverse_normal_cdf(p) - z).abs() < 1e-4,
                "quantile at {p} was {}",
                inverse_normal_cdf(p)
            );
        }
    }

    #[test]
    fn inverse_normal_cdf_symmetry() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-8, "asymmetry at p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "inverse_normal_cdf requires p in (0, 1)")]
    fn inverse_normal_cdf_rejects_zero() {
        inverse_normal_cdf(0.0);
    }
}
