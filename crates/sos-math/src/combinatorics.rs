//! Exact and continuous binomial coefficients.
//!
//! The SOS analysis needs binomial coefficients in two flavours:
//!
//! * **exact** integer coefficients for small arguments (unit-test oracles,
//!   hypergeometric PMFs over concrete overlays), and
//! * **continuous** coefficients `C(y, z)` where `y` is a *fractional*
//!   average-case quantity (e.g. "on average 13.7 bad nodes"), needed by the
//!   paper's `P(x, y, z)` ratio.

use crate::special::{ln_factorial, ln_gamma};

/// Exact binomial coefficient `C(n, k)` as `u128`.
///
/// Computed multiplicatively with interleaved division so intermediate
/// values stay small; returns `None` on overflow.
///
/// # Example
///
/// ```
/// assert_eq!(sos_math::binomial(10, 3), Some(120));
/// assert_eq!(sos_math::binomial(5, 9), Some(0));
/// ```
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul((n - i) as u128)?;
        acc /= (i + 1) as u128;
    }
    Some(acc)
}

/// Natural log of the exact binomial coefficient `C(n, k)` for integers.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (coefficient is zero).
///
/// # Example
///
/// ```
/// assert!((sos_math::ln_binomial(52, 5) - 2_598_960.0f64.ln()).abs() < 1e-9);
/// ```
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Continuous log-binomial `ln C(y, z)` for real `y >= z - 1 + eps` and
/// integer... no: real `y` and real `z` with `y >= z` and both `>= 0`,
/// via `ln Γ(y+1) − ln Γ(z+1) − ln Γ(y−z+1)`.
///
/// Returns `f64::NEG_INFINITY` when `y < z` (the coefficient is treated as
/// zero, matching the paper's convention `P(x, y, z) = 0` for `y < z`).
pub fn ln_binomial_continuous(y: f64, z: f64) -> f64 {
    if y < z || y < 0.0 || z < 0.0 {
        return f64::NEG_INFINITY;
    }
    ln_gamma(y + 1.0) - ln_gamma(z + 1.0) - ln_gamma(y - z + 1.0)
}

/// Falling factorial `y * (y-1) * ... * (y-k+1)` with `k` integer factors,
/// evaluated at real `y`.
///
/// This is the building block for the product form of the paper's
/// combinatorial ratio: `C(y,z)/C(x,z) = ff(y,z)/ff(x,z)`.
///
/// # Example
///
/// ```
/// assert_eq!(sos_math::falling_factorial(5.0, 3), 60.0);
/// assert_eq!(sos_math::falling_factorial(2.5, 2), 2.5 * 1.5);
/// ```
pub fn falling_factorial(y: f64, k: u64) -> f64 {
    let mut acc = 1.0;
    for i in 0..k {
        acc *= y - i as f64;
    }
    acc
}

/// Ratio of falling factorials `ff(y, z) / ff(x, z)` with each numerator
/// factor clamped at zero.
///
/// For integer `y >= z` this equals `C(y,z)/C(x,z)` exactly. For fractional
/// `y` it is the natural average-case extension used throughout the
/// analysis: as soon as `y` drops below the number of factors (`y < z`),
/// one factor hits zero and the ratio is zero — matching the discrete
/// convention that a sample smaller than the specific subset cannot contain
/// it.
///
/// # Panics
///
/// Panics if `x < z as f64` (the population must be able to hold the
/// specific subset) or if `x <= 0` with `z > 0`.
pub fn clamped_ff_ratio(x: f64, y: f64, z: u64) -> f64 {
    if z == 0 {
        return 1.0;
    }
    assert!(
        x >= z as f64,
        "population x = {x} cannot contain a specific subset of size {z}"
    );
    let mut acc = 1.0;
    for i in 0..z {
        let num = (y - i as f64).max(0.0);
        if num == 0.0 {
            return 0.0;
        }
        let den = x - i as f64;
        acc *= num / den;
    }
    acc.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_table() {
        assert_eq!(binomial(0, 0), Some(1));
        assert_eq!(binomial(4, 2), Some(6));
        assert_eq!(binomial(10, 0), Some(1));
        assert_eq!(binomial(10, 10), Some(1));
        assert_eq!(binomial(10, 11), Some(0));
        assert_eq!(binomial(100, 2), Some(4950));
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..40u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn binomial_pascal_rule() {
        for n in 1..60u64 {
            for k in 1..n {
                let lhs = binomial(n, k).unwrap();
                let rhs = binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap();
                assert_eq!(lhs, rhs, "Pascal failed at n={n} k={k}");
            }
        }
    }

    #[test]
    fn binomial_overflow_detected() {
        // C(200, 100) overflows u128.
        assert_eq!(binomial(200, 100), None);
        // But C(128, 2) is fine.
        assert_eq!(binomial(128, 2), Some(8128));
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for n in 0..50u64 {
            for k in 0..=n {
                let exact = binomial(n, k).unwrap() as f64;
                let got = ln_binomial(n, k).exp();
                assert!(
                    (got - exact).abs() < 1e-6 * exact.max(1.0),
                    "n={n} k={k}: {got} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn ln_binomial_continuous_matches_integer() {
        for n in 1..40u64 {
            for k in 0..=n {
                let a = ln_binomial(n, k);
                let b = ln_binomial_continuous(n as f64, k as f64);
                assert!((a - b).abs() < 1e-8 * a.abs().max(1.0), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn ln_binomial_continuous_zero_below_diagonal() {
        assert_eq!(ln_binomial_continuous(3.0, 4.0), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_continuous(-1.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn falling_factorial_basics() {
        assert_eq!(falling_factorial(10.0, 0), 1.0);
        assert_eq!(falling_factorial(10.0, 1), 10.0);
        assert_eq!(falling_factorial(10.0, 3), 720.0);
        // Below the diagonal a factor goes negative.
        assert!(falling_factorial(2.0, 4) == 0.0 || falling_factorial(2.0, 4).abs() < 1e-12);
    }

    #[test]
    fn clamped_ratio_matches_exact_hypergeometric() {
        // C(y,z)/C(x,z) for integer arguments.
        for x in 1..20u64 {
            for y in 0..=x {
                for z in 0..=x.min(8) {
                    let expect = if y >= z {
                        binomial(y, z).unwrap() as f64 / binomial(x, z).unwrap() as f64
                    } else {
                        0.0
                    };
                    let got = clamped_ff_ratio(x as f64, y as f64, z);
                    assert!(
                        (got - expect).abs() < 1e-12,
                        "x={x} y={y} z={z}: {got} vs {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn clamped_ratio_fractional_monotone_in_y() {
        let x = 33.0;
        let z = 5;
        let mut prev = 0.0;
        let mut y = 0.0;
        while y <= x {
            let p = clamped_ff_ratio(x, y, z);
            assert!(p >= prev - 1e-12, "not monotone at y = {y}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
            y += 0.37;
        }
    }

    #[test]
    #[should_panic(expected = "cannot contain a specific subset")]
    fn clamped_ratio_rejects_small_population() {
        clamped_ff_ratio(3.0, 2.0, 5);
    }
}
