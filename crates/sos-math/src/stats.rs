//! Summary statistics and confidence intervals for the Monte Carlo engine.

use crate::special::inverse_normal_cdf;

/// Incremental mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// let mut s = sos_math::RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `0.0` with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> SummaryStats {
        SummaryStats {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
        }
    }
}

/// Immutable snapshot of a [`RunningStats`] accumulator.
///
/// Serializable so downstream result types (e.g. `sos-sim`'s
/// `SimulationResult`) can be persisted to sweep caches and reloaded
/// bit-for-bit (JSON float output is shortest-round-trip).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SummaryStats {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Preferred over the normal (Wald) interval because Monte Carlo estimates
/// of `P_S` frequently sit at the `0.0`/`1.0` boundary, where Wald
/// degenerates to a zero-width interval.
///
/// # Panics
///
/// Panics if `successes > trials`, `trials == 0`, or `level` is not in
/// `(0, 1)`.
///
/// # Example
///
/// ```
/// let ci = sos_math::proportion_ci(90, 100, 0.95);
/// assert!(ci.lower < 0.9 && ci.upper > 0.9);
/// assert!(ci.contains(0.9));
/// ```
pub fn proportion_ci(successes: u64, trials: u64, level: f64) -> ConfidenceInterval {
    assert!(trials > 0, "cannot form an interval from zero trials");
    assert!(
        successes <= trials,
        "successes {successes} exceed trials {trials}"
    );
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1), got {level}"
    );
    let z = inverse_normal_cdf(0.5 + level / 2.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // The Wilson interval contains the MLE analytically; at p ∈ {0, 1}
    // `center ± half` cancels to p exactly in real arithmetic but can
    // miss by an ulp in floats, so clamp against the estimate too.
    ConfidenceInterval {
        estimate: p,
        lower: (center - half).max(0.0).min(p),
        upper: (center + half).min(1.0).max(p),
        level,
    }
}

/// Linear interpolation quantile of a sorted slice (type-7, the default in
/// most statistics environments).
///
/// # Panics
///
/// Panics if `sorted` is empty, unsorted, or `q` is outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4 → sample variance 32/7.
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn wilson_interval_basics() {
        let ci = proportion_ci(50, 100, 0.95);
        assert!((ci.estimate - 0.5).abs() < 1e-12);
        assert!(ci.lower > 0.39 && ci.lower < 0.41);
        assert!(ci.upper > 0.59 && ci.upper < 0.61);
    }

    #[test]
    fn wilson_interval_boundaries_nondegenerate() {
        let ci = proportion_ci(0, 100, 0.95);
        assert_eq!(ci.estimate, 0.0);
        assert_eq!(ci.lower, 0.0);
        assert!(ci.upper > 0.0, "zero successes must still give width");
        let ci = proportion_ci(100, 100, 0.95);
        assert_eq!(ci.upper, 1.0);
        assert!(ci.lower < 1.0);
    }

    #[test]
    fn wilson_interval_narrows_with_trials() {
        let wide = proportion_ci(5, 10, 0.95);
        let narrow = proportion_ci(500, 1000, 0.95);
        assert!(narrow.half_width() < wide.half_width());
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(quantile(&data, 0.5), 2.5);
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn proportion_ci_rejects_zero_trials() {
        proportion_ci(0, 0, 0.95);
    }
}
