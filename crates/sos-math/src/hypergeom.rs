//! Hypergeometric probabilities.
//!
//! Two views are needed by the SOS analysis:
//!
//! 1. the paper's `P(x, y, z)` — probability that a random `y`-subset of a
//!    population of `x` contains a *specific* `z`-subset, extended to
//!    fractional `y` for average-case arguments
//!    ([`all_specific_in_sample`]), and
//! 2. the full hypergeometric distribution over concrete integer counts
//!    ([`HypergeometricDist`]), used as an exact oracle when validating the
//!    average-case model and by the Monte Carlo tests.

use crate::combinatorics::{clamped_ff_ratio, ln_binomial};

#[cfg(test)]
use crate::combinatorics::binomial;

/// The paper's `P(x, y, z)`: probability that a uniformly random `y`-subset
/// drawn from a population of size `x` contains a specific subset of size
/// `z`, i.e. `C(y, z) / C(x, z)` for `y >= z` and `0` otherwise.
///
/// `y` may be fractional (an average-case count); the product form
/// `∏_{k<z} (y−k)/(x−k)` is used with numerator factors clamped at zero so
/// the result is continuous, monotone in `y`, and exactly matches the
/// discrete ratio at integer `y`.
///
/// # Panics
///
/// Panics if `x < z as f64` — a population smaller than the specific subset
/// is a caller bug.
///
/// # Example
///
/// ```
/// use sos_math::hypergeom::all_specific_in_sample;
///
/// // One specific node among 100, sample of 20: 20/100.
/// assert!((all_specific_in_sample(100.0, 20.0, 1) - 0.2).abs() < 1e-12);
/// // Sample smaller than the subset: impossible.
/// assert_eq!(all_specific_in_sample(100.0, 2.0, 3), 0.0);
/// ```
pub fn all_specific_in_sample(x: f64, y: f64, z: u64) -> f64 {
    clamped_ff_ratio(x, y, z)
}

/// Smooth "independent compromise" relaxation of [`all_specific_in_sample`]:
/// `(y / x)^z` with real `z`.
///
/// Each of the `z` specific nodes is treated as independently contained in
/// the sample with probability `y/x`. Unlike the combinatorial ratio this is
/// defined for *fractional* `z` (needed for mapping degrees like
/// "one-to-half" where `m_i = n_i / 2` is not an integer) and never
/// saturates at zero for `y < z`. For `z = 1` it coincides with the
/// hypergeometric form.
///
/// # Panics
///
/// Panics if `x <= 0`, `y < 0`, `y > x`, or `z < 0`.
pub fn all_specific_in_sample_binomial(x: f64, y: f64, z: f64) -> f64 {
    assert!(x > 0.0, "population must be positive, got {x}");
    assert!(
        (0.0..=x).contains(&y),
        "sample y = {y} must lie in [0, x = {x}]"
    );
    assert!(z >= 0.0, "subset size must be non-negative, got {z}");
    (y / x).powf(z).clamp(0.0, 1.0)
}

/// Exact hypergeometric distribution: drawing `sample` items without
/// replacement from a population of `population` items of which `successes`
/// are marked, the number of marked items drawn.
///
/// # Example
///
/// ```
/// use sos_math::HypergeometricDist;
///
/// let d = HypergeometricDist::new(50, 5, 10).unwrap();
/// let p0 = d.pmf(0);
/// assert!(p0 > 0.3 && p0 < 0.32); // C(45,10)/C(50,10) ≈ 0.3106
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypergeometricDist {
    population: u64,
    successes: u64,
    sample: u64,
}

impl HypergeometricDist {
    /// Creates the distribution. Returns `None` if `successes` or `sample`
    /// exceed `population`.
    pub fn new(population: u64, successes: u64, sample: u64) -> Option<Self> {
        if successes > population || sample > population {
            return None;
        }
        Some(Self {
            population,
            successes,
            sample,
        })
    }

    /// Population size `N`.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of marked items `K`.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Sample size `n`.
    pub fn sample(&self) -> u64 {
        self.sample
    }

    /// Smallest attainable count.
    pub fn min_k(&self) -> u64 {
        (self.sample + self.successes).saturating_sub(self.population)
    }

    /// Largest attainable count.
    pub fn max_k(&self) -> u64 {
        self.sample.min(self.successes)
    }

    /// Probability of drawing exactly `k` marked items.
    pub fn pmf(&self, k: u64) -> f64 {
        if k < self.min_k() || k > self.max_k() {
            return 0.0;
        }
        // Work in log space; the populations in SOS experiments reach 2e4.
        let ln_p = ln_binomial(self.successes, k)
            + ln_binomial(self.population - self.successes, self.sample - k)
            - ln_binomial(self.population, self.sample);
        ln_p.exp()
    }

    /// Probability of drawing at most `k` marked items.
    pub fn cdf(&self, k: u64) -> f64 {
        let mut acc = 0.0;
        for i in self.min_k()..=k.min(self.max_k()) {
            acc += self.pmf(i);
        }
        acc.min(1.0)
    }

    /// Mean `n K / N`.
    pub fn mean(&self) -> f64 {
        self.sample as f64 * self.successes as f64 / self.population as f64
    }

    /// Variance `n K (N−K) (N−n) / (N² (N−1))`.
    pub fn variance(&self) -> f64 {
        let n = self.sample as f64;
        let bigk = self.successes as f64;
        let bign = self.population as f64;
        if self.population <= 1 {
            return 0.0;
        }
        n * (bigk / bign) * (1.0 - bigk / bign) * (bign - n) / (bign - 1.0)
    }

    /// Probability that *all* marked items are inside the sample, i.e. the
    /// paper's `P(x, y, z)` with `x = population`, `y = sample`,
    /// `z = successes` — exact integer version.
    pub fn all_successes_drawn(&self) -> f64 {
        self.pmf(self.successes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for (n, k, s) in [(20u64, 5u64, 7u64), (50, 20, 10), (100, 1, 100), (9, 9, 4)] {
            let d = HypergeometricDist::new(n, k, s).unwrap();
            let total: f64 = (d.min_k()..=d.max_k()).map(|i| d.pmf(i)).sum();
            assert!(
                (total - 1.0).abs() < 1e-10,
                "pmf sums to {total} for ({n},{k},{s})"
            );
        }
    }

    #[test]
    fn pmf_matches_exact_combinatorics() {
        let d = HypergeometricDist::new(10, 4, 5).unwrap();
        // P(X = 2) = C(4,2) C(6,3) / C(10,5) = 6*20/252
        let expect = 6.0 * 20.0 / 252.0;
        assert!((d.pmf(2) - expect).abs() < 1e-12);
    }

    #[test]
    fn mean_and_variance_match_definitions() {
        let d = HypergeometricDist::new(60, 24, 15).unwrap();
        let mean: f64 = (d.min_k()..=d.max_k()).map(|i| i as f64 * d.pmf(i)).sum();
        assert!((mean - d.mean()).abs() < 1e-9);
        let var: f64 = (d.min_k()..=d.max_k())
            .map(|i| (i as f64 - d.mean()).powi(2) * d.pmf(i))
            .sum();
        assert!((var - d.variance()).abs() < 1e-9);
    }

    #[test]
    fn all_successes_drawn_matches_ratio() {
        // C(y, z)/C(x, z) with x=12 population, y=8 sample, z=3 marked.
        let d = HypergeometricDist::new(12, 3, 8).unwrap();
        let expect =
            binomial(8, 3).unwrap() as f64 / binomial(12, 3).unwrap() as f64;
        assert!((d.all_successes_drawn() - expect).abs() < 1e-12);
        // And agrees with the continuous form.
        let cont = all_specific_in_sample(12.0, 8.0, 3);
        assert!((d.all_successes_drawn() - cont).abs() < 1e-12);
    }

    #[test]
    fn support_bounds() {
        // Sample 8 of 10 with 5 marked: at least 3 marked must be drawn.
        let d = HypergeometricDist::new(10, 5, 8).unwrap();
        assert_eq!(d.min_k(), 3);
        assert_eq!(d.max_k(), 5);
        assert_eq!(d.pmf(2), 0.0);
        assert_eq!(d.pmf(6), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(HypergeometricDist::new(5, 6, 2).is_none());
        assert!(HypergeometricDist::new(5, 2, 6).is_none());
    }

    #[test]
    fn binomial_relaxation_brackets_hypergeometric() {
        // For z = 1 the two forms agree exactly.
        let h = all_specific_in_sample(100.0, 37.0, 1);
        let b = all_specific_in_sample_binomial(100.0, 37.0, 1.0);
        assert!((h - b).abs() < 1e-12);
        // For z > 1, sampling without replacement makes "all specific in
        // sample" *less* likely than independent inclusion.
        let h = all_specific_in_sample(100.0, 37.0, 5);
        let b = all_specific_in_sample_binomial(100.0, 37.0, 5.0);
        assert!(h <= b + 1e-12, "hypergeom {h} should not exceed binomial {b}");
    }

    #[test]
    fn binomial_relaxation_fractional_subset() {
        let p = all_specific_in_sample_binomial(100.0, 25.0, 2.5);
        assert!((p - 0.25f64.powf(2.5)).abs() < 1e-12);
    }
}
