//! Random sampling helpers used by the attack and overlay simulators.
//!
//! All helpers take a caller-supplied [`rand::Rng`] so that every simulation
//! in the workspace is reproducible from a single seed.

use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `k` distinct indices uniformly from `0..n` using a partial
/// Fisher–Yates shuffle (O(k) extra space via a sparse swap map).
///
/// # Panics
///
/// Panics if `k > n`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let picks = sos_math::sampling::sample_indices(&mut rng, 100, 5);
/// assert_eq!(picks.len(), 5);
/// let mut sorted = picks.clone();
/// sorted.sort_unstable();
/// sorted.dedup();
/// assert_eq!(sorted.len(), 5); // all distinct
/// ```
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    use std::collections::HashMap;
    let mut swaps: HashMap<usize, usize> = HashMap::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = rng.gen_range(i..n);
        let vi = *swaps.get(&i).unwrap_or(&i);
        let vj = *swaps.get(&j).unwrap_or(&j);
        out.push(vj);
        swaps.insert(j, vi);
        swaps.insert(i, vj);
    }
    out
}

/// Draws `k` distinct elements from `items` without replacement, cloning
/// the chosen elements.
///
/// # Panics
///
/// Panics if `k > items.len()`.
pub fn sample_from<R: Rng + ?Sized, T: Clone>(rng: &mut R, items: &[T], k: usize) -> Vec<T> {
    sample_indices(rng, items.len(), k)
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

/// Splits `total` items into integer bucket sizes proportional to `weights`
/// using the largest-remainder (Hamilton) method, preserving
/// `Σ result = total` exactly.
///
/// Used to spread fractional average-case counts (e.g. break-in attempts
/// per layer) onto concrete overlays while conserving node counts.
///
/// # Panics
///
/// Panics if `weights` is empty, any weight is negative, or all weights are
/// zero while `total > 0`.
///
/// # Example
///
/// ```
/// let split = sos_math::sampling::proportional_split(10, &[1.0, 1.0, 1.0]);
/// assert_eq!(split.iter().sum::<u64>(), 10);
/// assert!(split.iter().all(|&s| s == 3 || s == 4));
/// ```
pub fn proportional_split(total: u64, weights: &[f64]) -> Vec<u64> {
    assert!(!weights.is_empty(), "weights must be non-empty");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be non-negative: {weights:?}"
    );
    let sum: f64 = weights.iter().sum();
    if total == 0 {
        return vec![0; weights.len()];
    }
    assert!(sum > 0.0, "all-zero weights cannot split {total} items");
    let mut floors: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as f64 * w / sum;
        let fl = exact.floor() as u64;
        floors.push(fl);
        assigned += fl;
        remainders.push((i, exact - fl as f64));
    }
    // Distribute the leftover units to the largest remainders
    // (deterministic tie-break on index for reproducibility).
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut leftover = total - assigned;
    for (i, _) in remainders {
        if leftover == 0 {
            break;
        }
        floors[i] += 1;
        leftover -= 1;
    }
    floors
}

/// Rounds a non-negative real to one of its two nearest integers, chosen
/// randomly so the expectation equals `x` (stochastic rounding).
///
/// Used to realize fractional average-case quantities (e.g. a mapping
/// degree of `16.5` neighbors) on concrete overlays without bias.
///
/// # Panics
///
/// Panics if `x` is negative or not finite.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = sos_math::sampling::stochastic_round(&mut rng, 2.5);
/// assert!(r == 2 || r == 3);
/// assert_eq!(sos_math::sampling::stochastic_round(&mut rng, 4.0), 4);
/// ```
pub fn stochastic_round<R: Rng + ?Sized>(rng: &mut R, x: f64) -> u64 {
    assert!(x.is_finite() && x >= 0.0, "cannot round {x}");
    let floor = x.floor();
    let frac = x - floor;
    let base = floor as u64;
    if frac > 0.0 && rng.gen::<f64>() < frac {
        base + 1
    } else {
        base
    }
}

/// Bernoulli trial: returns `true` with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    rng.gen::<f64>() < p
}

/// Shuffles a slice in place (thin wrapper so downstream crates only depend
/// on `sos-math` for randomized operations).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    items.shuffle(rng);
}

/// SplitMix64 finalizer: a bijective avalanche mix over `u64`.
///
/// Used to derive independent RNG sub-stream seeds from a master seed —
/// flipping any input bit flips each output bit with probability ≈ 1/2,
/// so nearby `(seed, stream, index)` tuples land on unrelated seeds.
pub const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the seed of sub-stream `stream` at position `index` under a
/// master `seed`.
///
/// Each `(stream, index)` pair names a statistically independent RNG
/// stream: the trial engine gives every random *purpose* (overlay
/// build, ring build, attack, trace sampling) its own stream so that a
/// consumer may skip one stream entirely (e.g. reuse a memoized build)
/// without perturbing a single draw of the others. Every argument is
/// avalanche-mixed before combination, so `seed = 0`, `index = 0`, or
/// equal arguments produce no degenerate collapses.
pub const fn stream_seed(seed: u64, stream: u64, index: u64) -> u64 {
    splitmix64(splitmix64(seed ^ splitmix64(stream)).wrapping_add(splitmix64(index)))
}

/// Draw counts at or below this use the linear-probe swap list instead
/// of the hash map: at most `2k` live entries means a handful of
/// word-sized comparisons beat hashing by a wide margin for the
/// entry-sampling draws (`k` ≈ the first-layer mapping degree) that
/// dominate the route kernel.
const LINEAR_SWAP_MAX: usize = 64;

/// Allocation-reusing counterpart to [`sample_indices`] / [`sample_from`].
///
/// Draws the same partial Fisher–Yates sequence as the free functions —
/// byte-for-byte identical RNG consumption — but keeps the sparse swap
/// state alive between calls so steady-state sampling performs no heap
/// allocation. Hot loops (the zero-rebuild trial engine) hold one sampler
/// per worker.
///
/// Small draws (`k ≤ 64`, the route-kernel entry-sampling case) track
/// their swaps in a linear `(key, value)` list — the map holds at most
/// `2k` entries, so a linear probe is faster than any hashing — while
/// large draws fall back to the hash map. The backend is invisible in
/// the draws: only `gen_range(i..n)` touches the RNG, exactly once per
/// pick, in both.
#[derive(Debug, Default, Clone)]
pub struct IndexSampler {
    swaps: std::collections::HashMap<usize, usize>,
    small: Vec<(usize, usize)>,
}

impl IndexSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws `k` distinct indices uniformly from `0..n` into `out`
    /// (cleared first), reusing this sampler's scratch space.
    ///
    /// The RNG draw sequence is identical to [`sample_indices`].
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices_into<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        n: usize,
        k: usize,
        out: &mut Vec<usize>,
    ) {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        out.clear();
        out.reserve(k);
        if k <= LINEAR_SWAP_MAX {
            self.small.clear();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                let vi = linear_get(&self.small, i);
                let vj = linear_get(&self.small, j);
                out.push(vj);
                linear_set(&mut self.small, j, vi);
                linear_set(&mut self.small, i, vj);
            }
        } else {
            self.swaps.clear();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                let vi = *self.swaps.get(&i).unwrap_or(&i);
                let vj = *self.swaps.get(&j).unwrap_or(&j);
                out.push(vj);
                self.swaps.insert(j, vi);
                self.swaps.insert(i, vj);
            }
        }
    }

    /// Draws `k` distinct elements from `items` without replacement into
    /// `out` (cleared first), cloning the chosen elements.
    ///
    /// The RNG draw sequence is identical to [`sample_from`].
    ///
    /// # Panics
    ///
    /// Panics if `k > items.len()`.
    pub fn sample_from_into<R: Rng + ?Sized, T: Clone>(
        &mut self,
        rng: &mut R,
        items: &[T],
        k: usize,
        out: &mut Vec<T>,
    ) {
        let n = items.len();
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        out.clear();
        out.reserve(k);
        if k <= LINEAR_SWAP_MAX {
            self.small.clear();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                let vi = linear_get(&self.small, i);
                let vj = linear_get(&self.small, j);
                out.push(items[vj].clone());
                linear_set(&mut self.small, j, vi);
                linear_set(&mut self.small, i, vj);
            }
        } else {
            self.swaps.clear();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                let vi = *self.swaps.get(&i).unwrap_or(&i);
                let vj = *self.swaps.get(&j).unwrap_or(&j);
                out.push(items[vj].clone());
                self.swaps.insert(j, vi);
                self.swaps.insert(i, vj);
            }
        }
    }
}

/// Linear-probe lookup in the small swap list: identity when absent
/// (mirroring the hash map's `get(&i).unwrap_or(&i)`).
#[inline]
fn linear_get(swaps: &[(usize, usize)], key: usize) -> usize {
    swaps
        .iter()
        .find(|&&(k, _)| k == key)
        .map_or(key, |&(_, v)| v)
}

/// Linear-probe upsert in the small swap list.
#[inline]
fn linear_set(swaps: &mut Vec<(usize, usize)>, key: usize, value: usize) {
    match swaps.iter_mut().find(|&&mut (k, _)| k == key) {
        Some(entry) => entry.1 = value,
        None => swaps.push((key, value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(1..200usize);
            let k = rng.gen_range(0..=n);
            let picks = sample_indices(&mut rng, n, k);
            assert_eq!(picks.len(), k);
            assert!(picks.iter().all(|&i| i < n));
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates for n={n} k={k}");
        }
    }

    #[test]
    fn sample_indices_full_population_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut picks = sample_indices(&mut rng, 16, 16);
        picks.sort_unstable();
        assert_eq!(picks, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10;
        let mut counts = vec![0u32; n];
        let trials = 20_000;
        for _ in 0..trials {
            for i in sample_indices(&mut rng, n, 3) {
                counts[i] += 1;
            }
        }
        let expect = trials as f64 * 3.0 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 0.05 * expect,
                "index {i} drawn {c} times, expected ≈{expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_indices(&mut rng, 3, 4);
    }

    #[test]
    fn proportional_split_conserves_total() {
        let cases: &[(u64, &[f64])] = &[
            (100, &[1.0, 2.0, 3.0]),
            (7, &[0.4, 0.4, 0.2]),
            (1, &[5.0, 5.0]),
            (0, &[1.0]),
            (13, &[1e-9, 1.0, 1e-9]),
        ];
        for (total, weights) in cases {
            let split = proportional_split(*total, weights);
            assert_eq!(split.iter().sum::<u64>(), *total, "weights {weights:?}");
        }
    }

    #[test]
    fn proportional_split_proportions_close() {
        let split = proportional_split(1000, &[1.0, 2.0, 7.0]);
        assert_eq!(split, vec![100, 200, 700]);
    }

    #[test]
    fn stochastic_round_unbiased() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 40_000;
        let total: u64 = (0..trials).map(|_| stochastic_round(&mut rng, 2.3)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn stochastic_round_integer_is_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(stochastic_round(&mut rng, 7.0), 7);
            assert_eq!(stochastic_round(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 50_000;
        let hits = (0..trials).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.01, "observed {freq}");
    }

    #[test]
    fn bernoulli_degenerate() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
    }

    #[test]
    fn sampler_matches_free_functions_bit_for_bit() {
        let mut sampler = IndexSampler::new();
        let mut idx_buf = Vec::new();
        let mut items_buf: Vec<char> = Vec::new();
        let items: Vec<char> = ('a'..='z').collect();
        for seed in 0..64u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let n = 1 + (seed as usize * 7) % 120;
            let k = (seed as usize * 3) % (n + 1);
            sampler.sample_indices_into(&mut b, n, k, &mut idx_buf);
            assert_eq!(sample_indices(&mut a, n, k), idx_buf);
            let kk = (seed as usize) % (items.len() + 1);
            sampler.sample_from_into(&mut b, &items, kk, &mut items_buf);
            assert_eq!(sample_from(&mut a, &items, kk), items_buf);
            // Both RNGs must also be left in the same state.
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn stream_seeds_are_distinct_across_streams_and_indices() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for seed in [0u64, 1, 13, u64::MAX] {
            for stream in 0..8u64 {
                for index in 0..64u64 {
                    assert!(
                        seen.insert(stream_seed(seed, stream, index)),
                        "collision at seed={seed} stream={stream} index={index}"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_seed_no_degenerate_collapse_at_zero() {
        // The old xor-multiply derivation collapsed every stream to the
        // master seed at trial 0; the mixed derivation must not.
        let s0 = stream_seed(7, 0, 0);
        let s1 = stream_seed(7, 1, 0);
        let s2 = stream_seed(7, 2, 0);
        assert_ne!(s0, 7);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
    }

    #[test]
    fn splitmix64_is_stable() {
        // Reference values from the published SplitMix64 finalizer; the
        // derivation feeding every Monte Carlo stream must never drift.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sampler_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        IndexSampler::new().sample_indices_into(&mut rng, 3, 4, &mut out);
    }
}
