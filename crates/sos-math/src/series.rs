//! Small numeric-series helpers shared by sweeps, benches and tests.

/// Inclusive evenly spaced grid of `count` points from `start` to `end`.
///
/// # Panics
///
/// Panics if `count == 0`, or if `count == 1` while `start != end`.
///
/// # Example
///
/// ```
/// let g = sos_math::series::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, end: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "linspace needs at least one point");
    if count == 1 {
        assert!(
            start == end,
            "a single-point grid requires start == end ({start} != {end})"
        );
        return vec![start];
    }
    let step = (end - start) / (count - 1) as f64;
    (0..count).map(|i| start + step * i as f64).collect()
}

/// Direction of a (weak) monotone trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// Every step is non-decreasing.
    NonDecreasing,
    /// Every step is non-increasing.
    NonIncreasing,
    /// Constant within tolerance.
    Flat,
    /// Neither direction holds.
    Mixed,
}

/// Classifies the trend of `values` with absolute tolerance `tol`
/// (steps smaller than `tol` count as flat).
///
/// Used by the experiment harness to assert the *shapes* the paper reports
/// (e.g. "`P_S` decreases as `R` increases") without pinning exact numbers.
///
/// # Example
///
/// ```
/// use sos_math::series::{trend, Trend};
/// assert_eq!(trend(&[1.0, 0.8, 0.5], 1e-9), Trend::NonIncreasing);
/// assert_eq!(trend(&[0.5, 0.5 + 1e-12], 1e-9), Trend::Flat);
/// ```
pub fn trend(values: &[f64], tol: f64) -> Trend {
    let mut up = false;
    let mut down = false;
    for w in values.windows(2) {
        let d = w[1] - w[0];
        if d > tol {
            up = true;
        } else if d < -tol {
            down = true;
        }
    }
    match (up, down) {
        (true, true) => Trend::Mixed,
        (true, false) => Trend::NonDecreasing,
        (false, true) => Trend::NonIncreasing,
        (false, false) => Trend::Flat,
    }
}

/// Index of the maximum value (first occurrence). Returns `None` for empty
/// input or if any value is NaN.
pub fn argmax(values: &[f64]) -> Option<usize> {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    Some(best)
}

/// Finds the first index where series `a` crosses from `>= b` to `< b`
/// (a "crossover point" in the paper's tradeoff curves). Returns `None`
/// when no crossover exists.
///
/// # Panics
///
/// Panics if the series have different lengths.
pub fn crossover_index(a: &[f64], b: &[f64]) -> Option<usize> {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    let mut was_above = None;
    for i in 0..a.len() {
        let above = a[i] >= b[i];
        if let Some(prev) = was_above {
            if prev && !above {
                return Some(i);
            }
        }
        was_above = Some(above);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let g = linspace(-2.0, 2.0, 9);
        assert_eq!(g.len(), 9);
        assert_eq!(g[0], -2.0);
        assert_eq!(g[8], 2.0);
    }

    #[test]
    fn linspace_single_point() {
        assert_eq!(linspace(3.0, 3.0, 1), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "single-point grid")]
    fn linspace_single_point_mismatch() {
        linspace(0.0, 1.0, 1);
    }

    #[test]
    fn trend_classification() {
        assert_eq!(trend(&[1.0, 2.0, 3.0], 0.0), Trend::NonDecreasing);
        assert_eq!(trend(&[3.0, 2.0, 2.0], 1e-9), Trend::NonIncreasing);
        assert_eq!(trend(&[1.0, 1.0, 1.0], 1e-9), Trend::Flat);
        assert_eq!(trend(&[1.0, 2.0, 1.0], 1e-9), Trend::Mixed);
        assert_eq!(trend(&[], 1e-9), Trend::Flat);
        assert_eq!(trend(&[5.0], 1e-9), Trend::Flat);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn crossover_detection() {
        let a = [1.0, 0.9, 0.5, 0.2];
        let b = [0.6, 0.6, 0.6, 0.6];
        assert_eq!(crossover_index(&a, &b), Some(2));
        let never = [1.0, 1.0];
        let below = [0.0, 0.0];
        assert_eq!(crossover_index(&never, &below), None);
    }
}
