//! Design advisor: the paper's findings as actionable lint rules.
//!
//! Given a scenario and the threats it should survive, [`review`]
//! returns prioritized advice — each item backed by a specific result
//! reproduced in this workspace (the rule docs cite the figure or
//! experiment). This is the "so what" layer for deployment engineers
//! who will not read equations (1)–(27).

use crate::successive::SuccessiveAnalysis;
use crate::one_burst::OneBurstAnalysis;
use sos_core::{AttackConfig, ConfigError, PathEvaluator, Scenario, ThreatPreset};

/// How urgent a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; no action required.
    Info,
    /// Likely to cost availability under the stated threats.
    Warning,
    /// The design fails outright under a stated threat.
    Critical,
}

impl Severity {
    /// Stable label for output.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One piece of advice.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Urgency.
    pub severity: Severity,
    /// Stable machine-readable rule id (kebab-case).
    pub code: &'static str,
    /// Human-readable explanation with the evidence source.
    pub message: String,
}

impl std::fmt::Display for Advice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.severity.label(), self.code, self.message)
    }
}

/// Reviews a design against a threat list; returns advice sorted most
/// severe first.
///
/// # Errors
///
/// Propagates [`ConfigError`] if a threat cannot be priced against the
/// scenario.
pub fn review(
    scenario: &Scenario,
    threats: &[ThreatPreset],
) -> Result<Vec<Advice>, ConfigError> {
    let mut advice = Vec::new();
    let topo = scenario.topology();
    let layers = topo.layer_count();
    let break_in_threats: Vec<ThreatPreset> = threats
        .iter()
        .copied()
        .filter(|t| t.attack(scenario.system()).budget().break_in_trials > 0)
        .collect();

    // Rule: one-to-all (or near-total) mapping under break-in threats.
    // Evidence: Fig. 4(b) — P_S = 0 at every L once N_T > 0.
    let max_relative_degree = topo
        .boundaries()
        .take(layers) // SOS boundaries; the filter fan-out is separate
        .map(|(_, size, degree)| degree / size as f64)
        .fold(0.0f64, f64::max);
    if !break_in_threats.is_empty() && max_relative_degree >= 0.99 {
        advice.push(Advice {
            severity: Severity::Critical,
            code: "one-to-all-under-break-in",
            message: format!(
                "a layer boundary maps one-to-all; a single successful break-in \
                 discloses the entire next layer and P_S collapses to ~0 under \
                 {} (reproduced: Fig. 4(b))",
                break_in_threats[0].label()
            ),
        });
    }

    // Rule: single layer with break-in threats. Evidence: Figs 4(b)/8(b)
    // — layering is the main defence against disclosure cascades.
    if layers == 1 && !break_in_threats.is_empty() {
        advice.push(Advice {
            severity: Severity::Warning,
            code: "single-layer-no-depth",
            message: "L = 1 offers no depth against break-in cascades; \
                      servlet captures disclose the filters directly \
                      (reproduced: Fig. 8(b), more layers protect)"
                .to_string(),
        });
    }

    // Rule: deep layering under congestion-only threats. Evidence:
    // Fig. 4(a) — P_S declines monotonically with L under pure
    // congestion.
    let congestion_only: Vec<ThreatPreset> = threats
        .iter()
        .copied()
        .filter(|t| t.attack(scenario.system()).budget().break_in_trials == 0)
        .collect();
    if layers > 6 && !congestion_only.is_empty() {
        advice.push(Advice {
            severity: Severity::Warning,
            code: "deep-layers-thin-under-congestion",
            message: format!(
                "L = {layers} spreads {} SOS nodes thin; under pure congestion \
                 every extra layer multiplies the failure odds \
                 (reproduced: Fig. 4(a))",
                topo.total_sos_nodes()
            ),
        });
    }

    // Rule: degree-1 mapping fragility. Evidence: Fig. 4(a)/6(a) —
    // one-to-one is dominated by one-to-two across the successive grid.
    let min_degree = topo
        .boundaries()
        .take(layers)
        .map(|(_, _, degree)| degree)
        .fold(f64::INFINITY, f64::min);
    if min_degree <= 1.0 {
        advice.push(Advice {
            severity: Severity::Warning,
            code: "single-path-mapping",
            message: "a boundary has mapping degree 1: each hop has exactly one \
                      next-layer option, so one congested node severs every path \
                      through it (reproduced: one-to-two dominates one-to-one in \
                      Fig. 6(a))"
                .to_string(),
        });
    }

    // Rule: hardening beats provisioning. Evidence: sensitivity tornado
    // — P_B has the largest swing at the paper's operating point.
    if scenario.system().break_in_probability().value() > 0.6
        && !break_in_threats.is_empty()
    {
        advice.push(Advice {
            severity: Severity::Warning,
            code: "soft-nodes",
            message: format!(
                "P_B = {:.2}: node hardening is the single highest-leverage \
                 defence (reproduced: sensitivity tornado, P_B swing 0.36 at \
                 ±25%)",
                scenario.system().break_in_probability().value()
            ),
        });
    }

    // Rule: price every threat; flag outright failures.
    for threat in threats {
        let attack = threat.attack(scenario.system());
        let ps = price(scenario, attack)?;
        if ps < 0.10 {
            advice.push(Advice {
                severity: Severity::Critical,
                code: "threat-defeats-design",
                message: format!(
                    "P_S = {ps:.3} under {}: the design effectively fails this \
                     threat",
                    threat.label()
                ),
            });
        } else if ps < 0.5 {
            advice.push(Advice {
                severity: Severity::Info,
                code: "threat-majority-loss",
                message: format!(
                    "P_S = {ps:.3} under {}: most clients lose connectivity",
                    threat.label()
                ),
            });
        }
    }

    advice.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(b.code)));
    Ok(advice)
}

fn price(scenario: &Scenario, attack: AttackConfig) -> Result<f64, ConfigError> {
    Ok(match attack {
        AttackConfig::OneBurst { budget } => OneBurstAnalysis::new(scenario, budget)?
            .run()
            .success_probability(PathEvaluator::Binomial)
            .value(),
        AttackConfig::Successive { budget, params } => {
            SuccessiveAnalysis::new(scenario, budget, params)?
                .run()
                .success_probability(PathEvaluator::Binomial)
                .value()
        }
    })
}

/// Convenience: whether the advice list contains any critical finding.
pub fn has_critical(advice: &[Advice]) -> bool {
    advice.iter().any(|a| a.severity == Severity::Critical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::presets::paper_scenario;
    use sos_core::MappingDegree;

    fn all_threats() -> Vec<ThreatPreset> {
        ThreatPreset::ALL.to_vec()
    }

    #[test]
    fn original_sos_flagged_critical() {
        let scenario = paper_scenario(MappingDegree::OneToAll).unwrap();
        let advice = review(&scenario, &all_threats()).unwrap();
        assert!(has_critical(&advice));
        assert!(
            advice
                .iter()
                .any(|a| a.code == "one-to-all-under-break-in"),
            "{advice:?}"
        );
        // Sorted most severe first.
        for w in advice.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
    }

    #[test]
    fn paper_recommended_design_is_not_critical_on_its_defaults() {
        // L=4, one-to-two (the Fig. 6(a) winner) against the paper's
        // default intelligent threat only.
        let scenario = sos_core::Scenario::builder()
            .system(sos_core::SystemParams::paper_default())
            .layers(4)
            .mapping(MappingDegree::OneTo(2))
            .build()
            .unwrap();
        let advice =
            review(&scenario, &[ThreatPreset::PaperIntelligent]).unwrap();
        assert!(!has_critical(&advice), "{advice:?}");
    }

    #[test]
    fn single_layer_warned_under_break_in() {
        let scenario = sos_core::Scenario::builder()
            .system(sos_core::SystemParams::paper_default())
            .layers(1)
            .mapping(MappingDegree::OneTo(2))
            .build()
            .unwrap();
        let advice = review(&scenario, &[ThreatPreset::PatientIntruder]).unwrap();
        assert!(advice.iter().any(|a| a.code == "single-layer-no-depth"));
    }

    #[test]
    fn deep_layers_warned_under_congestion() {
        let scenario = sos_core::Scenario::builder()
            .system(sos_core::SystemParams::paper_default())
            .layers(8)
            .mapping(MappingDegree::OneTo(2))
            .build()
            .unwrap();
        let advice = review(&scenario, &[ThreatPreset::HeavyFlooder]).unwrap();
        assert!(advice
            .iter()
            .any(|a| a.code == "deep-layers-thin-under-congestion"));
    }

    #[test]
    fn one_to_one_warned_for_single_path() {
        let scenario = paper_scenario(MappingDegree::ONE_TO_ONE).unwrap();
        let advice = review(&scenario, &[ThreatPreset::ModerateFlooder]).unwrap();
        assert!(advice.iter().any(|a| a.code == "single-path-mapping"));
    }

    #[test]
    fn soft_nodes_flagged() {
        let scenario = sos_core::Scenario::builder()
            .system(sos_core::SystemParams::new(10_000, 100, 0.9).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .build()
            .unwrap();
        let advice = review(&scenario, &[ThreatPreset::PatientIntruder]).unwrap();
        assert!(advice.iter().any(|a| a.code == "soft-nodes"));
    }

    #[test]
    fn display_format() {
        let a = Advice {
            severity: Severity::Warning,
            code: "demo",
            message: "hello".to_string(),
        };
        assert_eq!(a.to_string(), "[warning] demo: hello");
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
