//! Timely delivery — the paper's §5 open issue, made quantitative.
//!
//! The paper observes a second trade-off orthogonal to resilience:
//! *"an increase in the number of layers increases resilience to
//! break-in attacks and also the latency of communication. An increase
//! in the mapping degree decreases resilience to break-in attacks.
//! However the latency here may be minimized due to more routing
//! choices."*
//!
//! This module models that trade-off. Per-hop delay is exponential with
//! mean [`LatencyModel::per_hop_mean`]; a forwarding node with `g` good
//! next-layer choices that routes *delay-aware* (probes its neighbors
//! and picks the fastest) sees an effective hop delay of `mean / g`
//! (minimum of `g` i.i.d. exponentials), while *oblivious* forwarding
//! pays the full mean regardless of `g`. Chord transport multiplies
//! each logical hop by its expected lookup length `~½·log₂ N`.
//!
//! [`latency_resilience_frontier`] sweeps a design grid and returns the
//! `(P_S, latency)` points with their Pareto front — the concrete
//! decision surface the paper's final remarks call for.

use crate::successive::SuccessiveAnalysis;
use sos_core::{
    AttackBudget, CompromiseState, ConfigError, MappingDegree, NodeDistribution,
    PathEvaluator, Scenario, SuccessiveParams, SystemParams, Topology,
};

/// How a forwarding node picks among its good next-layer neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardingDiscipline {
    /// Pick any good neighbor without regard to delay: every hop costs
    /// the full per-hop mean.
    #[default]
    Oblivious,
    /// Probe good neighbors and take the fastest: a hop with `g` good
    /// choices costs `mean / g` in expectation (min of exponentials).
    DelayAware,
}

impl ForwardingDiscipline {
    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            ForwardingDiscipline::Oblivious => "oblivious",
            ForwardingDiscipline::DelayAware => "delay-aware",
        }
    }
}

/// Latency model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Mean one-hop delay (arbitrary units; e.g. milliseconds).
    pub per_hop_mean: f64,
    /// Whether logical hops ride on Chord (expected stretch
    /// `½·log₂ N` underlay hops per logical hop) or go direct.
    pub chord_transport: bool,
    /// Forwarding discipline.
    pub discipline: ForwardingDiscipline,
}

impl LatencyModel {
    /// Direct transport, oblivious forwarding, unit mean — the
    /// baseline against which designs are compared.
    pub fn unit() -> Self {
        LatencyModel {
            per_hop_mean: 1.0,
            chord_transport: false,
            discipline: ForwardingDiscipline::Oblivious,
        }
    }

    /// Expected Chord stretch per logical hop for an overlay of `n`
    /// ring members (`½·log₂ n`, the classic Chord expectation, floored
    /// at one underlay hop).
    pub fn chord_stretch(overlay_nodes: u64) -> f64 {
        ((overlay_nodes.max(2) as f64).log2() / 2.0).max(1.0)
    }

    /// Expected end-to-end delivery latency for a topology in
    /// compromise state `state`, conditioned on delivery succeeding.
    ///
    /// The message crosses boundaries `1..=L+1`; at boundary `i` the
    /// forwarding node has on average `g_i = m_i · (1 − s_i/n_i)` good
    /// choices (floored at one, since we condition on success).
    ///
    /// # Panics
    ///
    /// Panics if `state` does not match the topology shape or the model
    /// has a non-positive hop mean.
    pub fn expected_latency(
        &self,
        scenario: &Scenario,
        state: &CompromiseState,
    ) -> f64 {
        assert!(
            self.per_hop_mean > 0.0,
            "per-hop mean must be positive, got {}",
            self.per_hop_mean
        );
        let topo: &Topology = scenario.topology();
        assert_eq!(
            state.layer_count(),
            topo.layer_count() + 1,
            "state does not match topology"
        );
        let stretch = if self.chord_transport {
            Self::chord_stretch(scenario.system().overlay_nodes())
        } else {
            1.0
        };
        let mut total = 0.0;
        for (i, size, degree) in topo.boundaries() {
            let good_fraction = 1.0 - state.bad_fraction(i);
            let good_choices = (degree * good_fraction).max(1.0);
            let hop = match self.discipline {
                ForwardingDiscipline::Oblivious => self.per_hop_mean,
                ForwardingDiscipline::DelayAware => self.per_hop_mean / good_choices,
            };
            // The final servlet→filter hop is always direct (filters
            // are off the ring).
            let hop_stretch = if i == topo.layer_count() + 1 {
                1.0
            } else {
                stretch
            };
            let _ = size;
            total += hop * hop_stretch;
        }
        total
    }

    /// Expected latency over a *clean* (unattacked) topology — the
    /// provisioning-time number.
    pub fn clean_latency(&self, scenario: &Scenario) -> f64 {
        self.expected_latency(scenario, &CompromiseState::clean(scenario.topology()))
    }
}

/// One candidate design with its resilience and latency coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Number of layers.
    pub layers: usize,
    /// Mapping policy label.
    pub mapping: String,
    /// `P_S` under the evaluated attack.
    pub ps: f64,
    /// Expected delivery latency under attack (conditioned on success).
    pub latency: f64,
    /// Whether the point survived the Pareto filter (maximal `P_S`,
    /// minimal latency).
    pub pareto_optimal: bool,
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "L={},{},{:.6},{:.4},{}",
            self.layers, self.mapping, self.ps, self.latency, self.pareto_optimal
        )
    }
}

/// Sweeps `layers × mappings` under a successive attack and returns all
/// design points with the Pareto front marked.
///
/// # Errors
///
/// Propagates configuration errors from scenario construction or the
/// analysis.
pub fn latency_resilience_frontier(
    system: SystemParams,
    distribution: NodeDistribution,
    budget: AttackBudget,
    params: SuccessiveParams,
    model: LatencyModel,
    layer_range: impl IntoIterator<Item = usize>,
    mappings: &[MappingDegree],
) -> Result<Vec<DesignPoint>, ConfigError> {
    let mut points = Vec::new();
    for layers in layer_range {
        for mapping in mappings {
            let scenario = Scenario::builder()
                .system(system)
                .layers(layers)
                .distribution(distribution.clone())
                .mapping(mapping.clone())
                .build()?;
            let report = SuccessiveAnalysis::new(&scenario, budget, params)?.run();
            let ps = report
                .success_probability(PathEvaluator::Binomial)
                .value();
            let latency = model.expected_latency(&scenario, &report.state);
            points.push(DesignPoint {
                layers,
                mapping: mapping.to_string(),
                ps,
                latency,
                pareto_optimal: false,
            });
        }
    }
    mark_pareto(&mut points);
    Ok(points)
}

/// Marks the Pareto-optimal points in place: a point is optimal when no
/// other point has `P_S ≥` *and* `latency ≤` with at least one strict.
pub fn mark_pareto(points: &mut [DesignPoint]) {
    for i in 0..points.len() {
        let dominated = points.iter().enumerate().any(|(j, other)| {
            j != i
                && other.ps >= points[i].ps
                && other.latency <= points[i].latency
                && (other.ps > points[i].ps || other.latency < points[i].latency)
        });
        points[i].pareto_optimal = !dominated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(layers: usize, mapping: MappingDegree) -> Scenario {
        Scenario::builder()
            .system(SystemParams::paper_default())
            .layers(layers)
            .mapping(mapping)
            .build()
            .unwrap()
    }

    #[test]
    fn clean_latency_counts_boundaries() {
        let model = LatencyModel::unit();
        // L layers + filter boundary, unit mean, direct, oblivious.
        assert_eq!(model.clean_latency(&scenario(3, MappingDegree::OneTo(2))), 4.0);
        assert_eq!(model.clean_latency(&scenario(1, MappingDegree::OneTo(2))), 2.0);
    }

    #[test]
    fn more_layers_cost_more_latency() {
        let model = LatencyModel::unit();
        let l3 = model.clean_latency(&scenario(3, MappingDegree::OneTo(2)));
        let l6 = model.clean_latency(&scenario(6, MappingDegree::OneTo(2)));
        assert!(l6 > l3);
    }

    #[test]
    fn delay_aware_forwarding_benefits_from_degree() {
        let mut model = LatencyModel::unit();
        model.discipline = ForwardingDiscipline::DelayAware;
        let narrow = model.clean_latency(&scenario(3, MappingDegree::ONE_TO_ONE));
        let wide = model.clean_latency(&scenario(3, MappingDegree::OneTo(5)));
        assert!(
            wide < narrow,
            "more routing choices should cut delay-aware latency: {wide} vs {narrow}"
        );
        // Oblivious forwarding sees no benefit.
        let oblivious = LatencyModel::unit();
        assert_eq!(
            oblivious.clean_latency(&scenario(3, MappingDegree::ONE_TO_ONE)),
            oblivious.clean_latency(&scenario(3, MappingDegree::OneTo(5)))
        );
    }

    #[test]
    fn chord_transport_stretches_latency() {
        let direct = LatencyModel::unit();
        let chord = LatencyModel {
            chord_transport: true,
            ..LatencyModel::unit()
        };
        let s = scenario(3, MappingDegree::OneTo(2));
        let d = direct.clean_latency(&s);
        let c = chord.clean_latency(&s);
        // ½·log2(10000) ≈ 6.64 per logical hop, final hop direct.
        assert!(c > 2.0 * d, "chord {c} should dwarf direct {d}");
        let expected = 3.0 * LatencyModel::chord_stretch(10_000) + 1.0;
        assert!((c - expected).abs() < 1e-9);
    }

    #[test]
    fn damage_slows_delay_aware_routing() {
        let mut model = LatencyModel::unit();
        model.discipline = ForwardingDiscipline::DelayAware;
        let s = scenario(3, MappingDegree::OneTo(5));
        let mut state = CompromiseState::clean(s.topology());
        let clean = model.expected_latency(&s, &state);
        state.set_congested(2, 20.0); // most of layer 2 gone
        let damaged = model.expected_latency(&s, &state);
        assert!(damaged > clean, "{damaged} vs {clean}");
    }

    #[test]
    fn frontier_marks_pareto_points() {
        let points = latency_resilience_frontier(
            SystemParams::paper_default(),
            NodeDistribution::Even,
            AttackBudget::paper_default(),
            SuccessiveParams::paper_default(),
            LatencyModel::unit(),
            1..=6,
            &[
                MappingDegree::ONE_TO_ONE,
                MappingDegree::OneTo(2),
                MappingDegree::OneTo(5),
            ],
        )
        .unwrap();
        assert_eq!(points.len(), 18);
        let pareto: Vec<_> = points.iter().filter(|p| p.pareto_optimal).collect();
        assert!(!pareto.is_empty());
        assert!(pareto.len() < points.len(), "not everything is optimal");
        // No pareto point dominates another pareto point.
        for a in &pareto {
            for b in &pareto {
                let dominates = a.ps >= b.ps
                    && a.latency <= b.latency
                    && (a.ps > b.ps || a.latency < b.latency);
                assert!(!dominates, "{a} dominates {b}");
            }
        }
        // The most resilient point overall must be on the front.
        let best = points
            .iter()
            .max_by(|a, b| a.ps.partial_cmp(&b.ps).unwrap())
            .unwrap();
        assert!(best.pareto_optimal);
    }

    #[test]
    fn mark_pareto_handles_duplicates() {
        let mut pts = vec![
            DesignPoint {
                layers: 1,
                mapping: "a".into(),
                ps: 0.5,
                latency: 2.0,
                pareto_optimal: false,
            },
            DesignPoint {
                layers: 2,
                mapping: "b".into(),
                ps: 0.5,
                latency: 2.0,
                pareto_optimal: false,
            },
        ];
        mark_pareto(&mut pts);
        // Identical points do not dominate each other.
        assert!(pts.iter().all(|p| p.pareto_optimal));
    }

    #[test]
    #[should_panic(expected = "per-hop mean must be positive")]
    fn non_positive_mean_rejected() {
        let model = LatencyModel {
            per_hop_mean: 0.0,
            ..LatencyModel::unit()
        };
        model.clean_latency(&scenario(3, MappingDegree::OneTo(2)));
    }
}
