//! Design-space optimization: pick `(L, n_i, m_i)` for an anticipated
//! threat model.
//!
//! The paper's conclusion — *"if the system is designed carefully
//! keeping potential attack scenarios in mind, more resilient
//! architectures can be designed"* — implies a concrete engineering
//! task: given the attacks you expect and a latency budget, choose the
//! design features. This module implements it as an exhaustive search
//! over the (small) design grid with two objectives and optional
//! constraints:
//!
//! * [`Objective::WorstCase`] — maximize the minimum `P_S` over the
//!   attack profiles (robust design);
//! * [`Objective::Weighted`] — maximize the expected `P_S` under a
//!   probability distribution over profiles.
//!
//! The search is deliberately exhaustive rather than heuristic: the
//! grid is `|L| × |mappings| × |distributions|` ≈ hundreds of points,
//! each priced by a closed form in microseconds, and exhaustiveness
//! makes the result auditable.

use crate::latency::LatencyModel;
use crate::one_burst::OneBurstAnalysis;
use crate::successive::SuccessiveAnalysis;
use sos_core::{
    AttackConfig, ConfigError, MappingDegree, NodeDistribution, PathEvaluator, Scenario,
    SystemParams,
};

/// A named attack profile to design against.
#[derive(Debug, Clone)]
pub struct AttackProfile {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// The attack itself.
    pub attack: AttackConfig,
}

impl AttackProfile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, attack: AttackConfig) -> Self {
        AttackProfile {
            name: name.into(),
            attack,
        }
    }
}

/// The design grid to search.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// Candidate layer counts.
    pub layers: Vec<usize>,
    /// Candidate mapping policies.
    pub mappings: Vec<MappingDegree>,
    /// Candidate node distributions.
    pub distributions: Vec<NodeDistribution>,
    /// Filter count (fixed across the grid).
    pub filters: u64,
}

impl DesignSpace {
    /// The paper's grid: `L ∈ 1..=6`, the five named mappings, the three
    /// named distributions, 10 filters.
    pub fn paper_grid() -> Self {
        DesignSpace {
            layers: (1..=6).collect(),
            mappings: MappingDegree::paper_named_set(),
            distributions: vec![
                NodeDistribution::Even,
                NodeDistribution::Increasing,
                NodeDistribution::Decreasing,
            ],
            filters: 10,
        }
    }

    /// Number of candidate designs.
    pub fn size(&self) -> usize {
        self.layers.len() * self.mappings.len() * self.distributions.len()
    }
}

/// What to maximize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// The minimum `P_S` over all profiles.
    WorstCase,
    /// The profile-weighted mean `P_S` (weights are supplied with the
    /// profiles via [`Optimizer::weights`]; unweighted = uniform).
    Weighted,
}

/// Optional feasibility constraints.
#[derive(Debug, Clone, Copy, Default)]
pub struct Constraints {
    /// Reject designs whose *clean* expected latency exceeds this.
    pub max_clean_latency: Option<f64>,
    /// Reject designs whose `P_S` under any profile falls below this.
    pub min_ps_per_profile: Option<f64>,
}

/// A scored, feasible design.
#[derive(Debug, Clone)]
pub struct RankedDesign {
    /// Layer count.
    pub layers: usize,
    /// Mapping policy.
    pub mapping: MappingDegree,
    /// Node distribution.
    pub distribution: NodeDistribution,
    /// Objective value (higher is better).
    pub score: f64,
    /// `P_S` per profile, in profile order.
    pub per_profile: Vec<f64>,
    /// Clean expected latency under the optimizer's latency model.
    pub clean_latency: f64,
}

impl std::fmt::Display for RankedDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "L={} {} {} score={:.4} latency={:.1}",
            self.layers, self.mapping, self.distribution, self.score, self.clean_latency
        )
    }
}

/// Exhaustive design optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    system: SystemParams,
    space: DesignSpace,
    profiles: Vec<AttackProfile>,
    weights: Option<Vec<f64>>,
    objective: Objective,
    constraints: Constraints,
    latency_model: LatencyModel,
    evaluator: PathEvaluator,
}

impl Optimizer {
    /// Creates an optimizer over `space` for `profiles`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or the space is empty — an
    /// optimization without candidates or threats is a caller bug.
    pub fn new(system: SystemParams, space: DesignSpace, profiles: Vec<AttackProfile>) -> Self {
        assert!(!profiles.is_empty(), "at least one attack profile required");
        assert!(space.size() > 0, "empty design space");
        Optimizer {
            system,
            space,
            profiles,
            weights: None,
            objective: Objective::WorstCase,
            constraints: Constraints::default(),
            latency_model: LatencyModel::unit(),
            evaluator: PathEvaluator::Binomial,
        }
    }

    /// Sets per-profile weights (used by [`Objective::Weighted`]).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the profile count or weights
    /// are not positive.
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            self.profiles.len(),
            "one weight per profile"
        );
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        self.weights = Some(weights);
        self
    }

    /// Sets the objective (default worst-case).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets feasibility constraints.
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the latency model used for the latency constraint/report.
    pub fn latency_model(mut self, model: LatencyModel) -> Self {
        self.latency_model = model;
        self
    }

    /// Sets the `P_S` evaluator (default binomial).
    pub fn evaluator(mut self, evaluator: PathEvaluator) -> Self {
        self.evaluator = evaluator;
        self
    }

    /// Searches the grid; returns feasible designs sorted best-first.
    ///
    /// Designs that cannot be built (e.g. a distribution that starves a
    /// layer at some `L`) are skipped silently — they are infeasible,
    /// not errors.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] only for errors that invalidate the
    /// whole search (an attack budget exceeding the overlay).
    pub fn run(&self) -> Result<Vec<RankedDesign>, ConfigError> {
        let mut ranked = Vec::new();
        for &layers in &self.space.layers {
            for mapping in &self.space.mappings {
                for distribution in &self.space.distributions {
                    let Ok(scenario) = Scenario::builder()
                        .system(self.system)
                        .layers(layers)
                        .distribution(distribution.clone())
                        .mapping(mapping.clone())
                        .filters(self.space.filters)
                        .build()
                    else {
                        continue; // infeasible grid point
                    };
                    let clean_latency = self.latency_model.clean_latency(&scenario);
                    if let Some(max) = self.constraints.max_clean_latency {
                        if clean_latency > max {
                            continue;
                        }
                    }
                    let mut per_profile = Vec::with_capacity(self.profiles.len());
                    for profile in &self.profiles {
                        let ps = self.price(&scenario, profile.attack)?;
                        per_profile.push(ps);
                    }
                    if let Some(min) = self.constraints.min_ps_per_profile {
                        if per_profile.iter().any(|&p| p < min) {
                            continue;
                        }
                    }
                    let score = match self.objective {
                        Objective::WorstCase => {
                            per_profile.iter().cloned().fold(f64::INFINITY, f64::min)
                        }
                        Objective::Weighted => {
                            let weights = self.weights.clone().unwrap_or_else(|| {
                                vec![1.0; self.profiles.len()]
                            });
                            let total: f64 = weights.iter().sum();
                            per_profile
                                .iter()
                                .zip(&weights)
                                .map(|(p, w)| p * w)
                                .sum::<f64>()
                                / total
                        }
                    };
                    ranked.push(RankedDesign {
                        layers,
                        mapping: mapping.clone(),
                        distribution: distribution.clone(),
                        score,
                        per_profile,
                        clean_latency,
                    });
                }
            }
        }
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.clean_latency.partial_cmp(&b.clean_latency).unwrap())
        });
        Ok(ranked)
    }

    fn price(&self, scenario: &Scenario, attack: AttackConfig) -> Result<f64, ConfigError> {
        let ps = match attack {
            AttackConfig::OneBurst { budget } => OneBurstAnalysis::new(scenario, budget)?
                .run()
                .success_probability(self.evaluator),
            AttackConfig::Successive { budget, params } => {
                SuccessiveAnalysis::new(scenario, budget, params)?
                    .run()
                    .success_probability(self.evaluator)
            }
        };
        Ok(ps.value())
    }

    /// The attack profiles being designed against.
    pub fn profiles(&self) -> &[AttackProfile] {
        &self.profiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{AttackBudget, SuccessiveParams};

    fn profiles() -> Vec<AttackProfile> {
        vec![
            AttackProfile::new(
                "flooder",
                AttackConfig::OneBurst {
                    budget: AttackBudget::congestion_only(6_000),
                },
            ),
            AttackProfile::new(
                "intruder",
                AttackConfig::Successive {
                    budget: AttackBudget::new(2_000, 1_000),
                    params: SuccessiveParams::new(5, 0.2).unwrap(),
                },
            ),
        ]
    }

    #[test]
    fn optimizer_ranks_best_first() {
        let ranked = Optimizer::new(
            SystemParams::paper_default(),
            DesignSpace::paper_grid(),
            profiles(),
        )
        .run()
        .unwrap();
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
        // Every reported score is the min of its per-profile values.
        for r in &ranked {
            let min = r.per_profile.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((r.score - min).abs() < 1e-12);
        }
    }

    #[test]
    fn worst_case_never_picks_one_to_all() {
        // One-to-all dies under the intruder profile, so it can never
        // win a worst-case optimization that includes break-ins.
        let ranked = Optimizer::new(
            SystemParams::paper_default(),
            DesignSpace::paper_grid(),
            profiles(),
        )
        .run()
        .unwrap();
        let best = &ranked[0];
        assert_ne!(best.mapping, MappingDegree::OneToAll, "{best}");
        assert!(best.score > 0.0);
    }

    #[test]
    fn latency_constraint_filters_deep_designs() {
        let unconstrained = Optimizer::new(
            SystemParams::paper_default(),
            DesignSpace::paper_grid(),
            profiles(),
        )
        .run()
        .unwrap();
        let constrained = Optimizer::new(
            SystemParams::paper_default(),
            DesignSpace::paper_grid(),
            profiles(),
        )
        .constraints(Constraints {
            max_clean_latency: Some(3.0), // allows L ≤ 2 only (unit model)
            min_ps_per_profile: None,
        })
        .run()
        .unwrap();
        assert!(constrained.len() < unconstrained.len());
        assert!(constrained.iter().all(|d| d.layers <= 2));
    }

    #[test]
    fn min_ps_constraint_can_empty_the_space() {
        let ranked = Optimizer::new(
            SystemParams::paper_default(),
            DesignSpace::paper_grid(),
            profiles(),
        )
        .constraints(Constraints {
            max_clean_latency: None,
            min_ps_per_profile: Some(0.999),
        })
        .run()
        .unwrap();
        assert!(
            ranked.is_empty(),
            "no design survives both profiles at P_S ≥ 0.999"
        );
    }

    #[test]
    fn weighted_objective_shifts_the_winner() {
        let base = Optimizer::new(
            SystemParams::paper_default(),
            DesignSpace::paper_grid(),
            profiles(),
        );
        // Weight the flooder overwhelmingly: high mapping degrees
        // (great against congestion) should rise in the ranking.
        let flood_heavy = base
            .clone()
            .objective(Objective::Weighted)
            .weights(vec![1_000.0, 1.0])
            .run()
            .unwrap();
        let winner = &flood_heavy[0];
        // Against a near-pure congestion threat the winner must do very
        // well on profile 0.
        assert!(winner.per_profile[0] > 0.9, "{winner}");
    }

    #[test]
    fn infeasible_grid_points_are_skipped() {
        // 100 SOS nodes over 101 layers is unbuildable; the optimizer
        // should skip it, not fail.
        let space = DesignSpace {
            layers: vec![3, 101],
            mappings: vec![MappingDegree::ONE_TO_ONE],
            distributions: vec![NodeDistribution::Even],
            filters: 10,
        };
        let ranked = Optimizer::new(SystemParams::paper_default(), space, profiles())
            .run()
            .unwrap();
        assert!(ranked.iter().all(|d| d.layers == 3));
        assert!(!ranked.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one attack profile")]
    fn empty_profiles_rejected() {
        Optimizer::new(
            SystemParams::paper_default(),
            DesignSpace::paper_grid(),
            vec![],
        );
    }
}
