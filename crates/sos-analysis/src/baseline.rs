//! Baselines: the *original* SOS architecture of Keromytis, Misra &
//! Rubenstein (SIGCOMM 2002).
//!
//! Two variants are modelled:
//!
//! * [`OriginalSosAnalysis`] — the fixed 3-layer (SOAP → beacon →
//!   servlet), one-to-all architecture analysed in the original paper
//!   under random congestion attacks. Expressed as a special case of the
//!   generalized model, which is exactly the ICDCS paper's point: the
//!   original design is one point in a larger design space.
//! * [`MultiRoleAnalysis`] — the original paper additionally assumed one
//!   physical node may simultaneously serve several layers. The ICDCS
//!   paper argues this is dangerous under break-in attacks (one broken
//!   node discloses the membership of several layers at once); this type
//!   quantifies that argument with a simple two-regime model.

use crate::one_burst::{OneBurstAnalysis, OneBurstReport};
use sos_core::{
    AttackBudget, ConfigError, MappingDegree, PathEvaluator, Probability, Scenario,
    SystemParams,
};

/// Number of layers in the original SOS architecture.
pub const ORIGINAL_SOS_LAYERS: usize = 3;

/// The original SOS architecture: 3 layers, one-to-all mapping.
///
/// # Example
///
/// ```
/// use sos_analysis::OriginalSosAnalysis;
/// use sos_core::{PathEvaluator, SystemParams};
///
/// let baseline = OriginalSosAnalysis::new(SystemParams::paper_default(), 10)?;
/// // Random congestion attack of 2000 nodes (original paper's model).
/// let report = baseline.under_random_congestion(2_000)?;
/// let ps = report.success_probability(PathEvaluator::Binomial);
/// assert!(ps.value() > 0.9); // one-to-all shrugs off random congestion
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OriginalSosAnalysis {
    scenario: Scenario,
}

impl OriginalSosAnalysis {
    /// Creates the baseline with SOS nodes split evenly over the three
    /// roles (SOAPs, beacons, secret servlets).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (e.g. too few SOS nodes for three
    /// layers).
    pub fn new(system: SystemParams, filters: u64) -> Result<Self, ConfigError> {
        let scenario = Scenario::builder()
            .system(system)
            .layers(ORIGINAL_SOS_LAYERS)
            .mapping(MappingDegree::OneToAll)
            .filters(filters)
            .build()?;
        Ok(OriginalSosAnalysis { scenario })
    }

    /// Creates the baseline with explicit role sizes.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors, including a mismatch between role
    /// sizes and `system.sos_nodes()`.
    pub fn with_role_sizes(
        system: SystemParams,
        soaps: u64,
        beacons: u64,
        servlets: u64,
        filters: u64,
    ) -> Result<Self, ConfigError> {
        let scenario = Scenario::builder()
            .system(system)
            .layer_sizes(vec![soaps, beacons, servlets])
            .mapping(MappingDegree::OneToAll)
            .filters(filters)
            .build()?;
        Ok(OriginalSosAnalysis { scenario })
    }

    /// The underlying 3-layer scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Evaluates the baseline under the original paper's attack model:
    /// purely random congestion of `congested_nodes` overlay nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidAttack`] when the budget exceeds the
    /// overlay population.
    pub fn under_random_congestion(
        &self,
        congested_nodes: u64,
    ) -> Result<OneBurstReport, ConfigError> {
        Ok(OneBurstAnalysis::new(
            &self.scenario,
            AttackBudget::congestion_only(congested_nodes),
        )?
        .run())
    }

    /// Evaluates the baseline under the ICDCS paper's intelligent
    /// one-burst attack — the configuration in which the original
    /// architecture collapses (one-to-all discloses everything).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidAttack`] when a budget exceeds the
    /// overlay population.
    pub fn under_intelligent_attack(
        &self,
        budget: AttackBudget,
    ) -> Result<OneBurstReport, ConfigError> {
        Ok(OneBurstAnalysis::new(&self.scenario, budget)?.run())
    }
}

/// The multi-role variant: every SOS node simultaneously serves all three
/// roles and (per one-to-all) knows every other SOS node and every filter.
///
/// Model: a single break-in anywhere discloses the entire membership, so
/// the system has exactly two regimes —
///
/// * with probability `q = 1 − (1 − P_B · n/N)^{N_T}` at least one
///   break-in succeeds: the attacker congests all filters first, then as
///   many disclosed SOS nodes as the remaining budget allows;
/// * otherwise the attack degenerates to random congestion over a single
///   logical layer of `n` one-to-all nodes.
///
/// `P_S = q · P_S(disclosed) + (1 − q) · P_S(random)`.
#[derive(Debug, Clone)]
pub struct MultiRoleAnalysis {
    system: SystemParams,
    filters: u64,
}

impl MultiRoleAnalysis {
    /// Creates the multi-role baseline.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroCount`] when `filters == 0`.
    pub fn new(system: SystemParams, filters: u64) -> Result<Self, ConfigError> {
        if filters == 0 {
            return Err(ConfigError::ZeroCount {
                name: "filter_count",
            });
        }
        Ok(MultiRoleAnalysis { system, filters })
    }

    /// Probability at least one break-in succeeds during `N_T` uniform
    /// trials.
    pub fn disclosure_probability(&self, break_in_trials: u64) -> Probability {
        let per_trial = self.system.break_in_probability().value()
            * self.system.sos_nodes() as f64
            / self.system.overlay_nodes() as f64;
        Probability::clamped(1.0 - (1.0 - per_trial).powf(break_in_trials as f64))
    }

    /// End-to-end `P_S` under the two-regime model.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidAttack`] when a budget exceeds the
    /// overlay population.
    pub fn success_probability(
        &self,
        budget: AttackBudget,
        evaluator: PathEvaluator,
    ) -> Result<Probability, ConfigError> {
        let big_n = self.system.overlay_nodes();
        if budget.break_in_trials > big_n || budget.congestion_capacity > big_n {
            return Err(ConfigError::InvalidAttack {
                reason: "budget exceeds overlay population".to_string(),
            });
        }
        let n = self.system.sos_nodes() as f64;
        let n_f = self.filters as f64;
        let p_b = self.system.break_in_probability().value();
        let q = self.disclosure_probability(budget.break_in_trials).value();

        // Disclosed regime: filters die first, then SOS nodes.
        let broken = p_b * n / big_n as f64 * budget.break_in_trials as f64;
        let budget_c = budget.congestion_capacity as f64;
        let ps_disclosed = if budget_c >= n_f {
            // All filters congested ⇒ no path regardless of the overlay.
            0.0
        } else {
            // Partially congested filter ring; SOS layer untouched
            // (attacker prefers filters — closest to the target).
            let good_filters = n_f - budget_c;
            let _ = good_filters;
            evaluator.layer_success(self.filters, budget_c, n_f)
        };

        // Random regime: one logical one-to-all layer of n nodes plus a
        // clean filter ring.
        let congested_random = budget_c * n / big_n as f64;
        let ps_random = evaluator.layer_success(
            self.system.sos_nodes(),
            congested_random.min(n - broken.min(n)),
            n,
        );

        Ok(Probability::clamped(
            q * ps_disclosed + (1.0 - q) * ps_random,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_sos_resists_random_congestion() {
        let baseline =
            OriginalSosAnalysis::new(SystemParams::paper_default(), 10).unwrap();
        let report = baseline.under_random_congestion(2_000).unwrap();
        // One-to-all mapping: binomial evaluator gives (0.2)^33-ish per
        // layer failure — essentially zero.
        let ps = report.success_probability(PathEvaluator::Binomial);
        assert!(ps.value() > 0.99, "P_S = {}", ps.value());
        // The paper-faithful hypergeometric evaluator saturates at 1.
        let ps_h = report.success_probability(PathEvaluator::Hypergeometric);
        assert_eq!(ps_h.value(), 1.0);
    }

    #[test]
    fn original_sos_collapses_under_break_in() {
        let baseline =
            OriginalSosAnalysis::new(SystemParams::paper_default(), 10).unwrap();
        let report = baseline
            .under_intelligent_attack(AttackBudget::new(2_000, 2_000))
            .unwrap();
        let ps = report.success_probability(PathEvaluator::Binomial);
        assert!(ps.value() < 0.01, "P_S = {}", ps.value());
    }

    #[test]
    fn with_role_sizes_validates_total() {
        let err = OriginalSosAnalysis::with_role_sizes(
            SystemParams::paper_default(),
            10,
            10,
            10,
            10,
        );
        assert!(err.is_err(), "30 ≠ 100 SOS nodes must be rejected");
        let ok = OriginalSosAnalysis::with_role_sizes(
            SystemParams::paper_default(),
            40,
            30,
            30,
            10,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn multi_role_disclosure_probability() {
        let mr = MultiRoleAnalysis::new(SystemParams::paper_default(), 10).unwrap();
        assert_eq!(mr.disclosure_probability(0).value(), 0.0);
        // Per-trial success = 0.5 * 100/10000 = 0.005;
        // q(200) = 1 - 0.995^200 ≈ 0.633.
        let q = mr.disclosure_probability(200).value();
        assert!((q - 0.6330).abs() < 1e-3, "q = {q}");
        // Monotone in N_T.
        assert!(mr.disclosure_probability(2_000).value() > q);
    }

    #[test]
    fn multi_role_collapses_under_break_in() {
        // The paper's qualitative claim: allowing multi-role nodes is
        // "very dangerous" under break-in attacks. With the paper's
        // default budget the disclosure regime (q ≈ 0.63) is a total
        // loss, so P_S drops to the surviving-regime mass ≈ 1 − q.
        let system = SystemParams::paper_default();
        let mr = MultiRoleAnalysis::new(system, 10).unwrap();
        let safe = mr
            .success_probability(AttackBudget::congestion_only(2_000), PathEvaluator::Binomial)
            .unwrap()
            .value();
        let attacked = mr
            .success_probability(AttackBudget::new(200, 2_000), PathEvaluator::Binomial)
            .unwrap()
            .value();
        assert!(safe > 0.99);
        assert!(attacked < 0.4, "multi-role should collapse: {attacked}");
        let expected = 1.0 - mr.disclosure_probability(200).value();
        assert!(
            (attacked - expected).abs() < 0.01,
            "attacked {attacked} vs surviving regime {expected}"
        );
        // And it keeps collapsing as N_T grows.
        let heavy = mr
            .success_probability(AttackBudget::new(2_000, 2_000), PathEvaluator::Binomial)
            .unwrap()
            .value();
        assert!(heavy < 0.01, "heavy break-in should annihilate: {heavy}");
    }

    #[test]
    fn multi_role_without_break_in_is_safe() {
        let mr = MultiRoleAnalysis::new(SystemParams::paper_default(), 10).unwrap();
        let ps = mr
            .success_probability(AttackBudget::congestion_only(2_000), PathEvaluator::Binomial)
            .unwrap();
        assert!(ps.value() > 0.99);
    }

    #[test]
    fn multi_role_rejects_bad_budget() {
        let mr = MultiRoleAnalysis::new(SystemParams::paper_default(), 10).unwrap();
        assert!(mr
            .success_probability(AttackBudget::new(20_000, 0), PathEvaluator::Binomial)
            .is_err());
    }
}
