//! Successive attack model — §3.2, Algorithm 1, equations (10)–(27).
//!
//! The break-in phase runs over up to `R` rounds. Each round the attacker
//! first attacks every node disclosed by the previous round (`X_j` nodes),
//! then spends the remainder of that round's quota `α = N_T / R` on
//! uniformly random nodes, borrowing from the global budget `β` as needed.
//! The attacker never attempts the same node twice and never congests a
//! node it broke into. Prior knowledge `P_E` seeds round 1 with
//! `X_1 = n_1 P_E` known first-layer nodes.
//!
//! Algorithm 1 distinguishes four cases per round, mapped here to
//! [`RoundCase`]:
//!
//! | paper case        | variant                      | effect |
//! |-------------------|------------------------------|--------|
//! | `X_j < α < β`     | [`RoundCase::DisclosedBelowQuota`]  | attack `X_j` + random `α−X_j`, continue |
//! | `X_j < β ≤ α`     | [`RoundCase::FinalPartialBudget`]   | attack `X_j` + random `β−X_j`, stop |
//! | `α ≤ X_j < β`     | [`RoundCase::DisclosedAboveQuota`]  | attack all `X_j`, continue |
//! | `X_j ≥ β`         | [`RoundCase::BudgetExhausted`]      | attack `β` of `X_j`, leave `f`, stop |
//!
//! ### Deliberate deviations from the paper's algebra
//!
//! Two places where a literal transcription of the equations would
//! double-count are implemented in overlap-free form (documented in
//! `DESIGN.md` and `EXPERIMENTS.md`):
//!
//! 1. Equation (25) sums per-round filter disclosures
//!    `Σ_k d^N_{L+1,k}`, but the same filter can be disclosed in several
//!    rounds. We track the cumulative disclosed-filter count as
//!    `n_f (1 − (1 − m/n_f)^{Σ_k b_{L,k}})`, which is exact under the
//!    model's independence assumptions and equals the paper's sum when
//!    `R = 1`.
//! 2. The paper does not model nodes that were randomly and
//!    unsuccessfully attacked in round `k` and disclosed only in a later
//!    round; neither do we (the executable attacker in `sos-attack`
//!    does, and the gap is measured in the evaluator ablation).

use sos_core::{
    AttackBudget, CompromiseState, ConfigError, PathEvaluator, Probability, Scenario,
    SuccessiveParams,
};

/// Which Algorithm-1 branch a round took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundCase {
    /// `X_j < α < β`: disclosed nodes fit below the round quota; spend
    /// the rest of the quota randomly and continue.
    DisclosedBelowQuota,
    /// `X_j < β ≤ α`: the remaining global budget fits in this round;
    /// spend it (disclosed first, then random) and stop.
    FinalPartialBudget,
    /// `α ≤ X_j < β`: disclosed nodes exceed the quota; attack all of
    /// them (borrowing from `β`) and continue.
    DisclosedAboveQuota,
    /// `X_j ≥ β`: more disclosed nodes than budget; attack a `β`-subset,
    /// leave the rest (`f`) for the congestion phase, and stop.
    BudgetExhausted,
}

impl RoundCase {
    /// Whether this case terminates the break-in phase.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            RoundCase::FinalPartialBudget | RoundCase::BudgetExhausted
        )
    }
}

/// Per-round record of every Algorithm-1 quantity (average case).
///
/// All per-layer vectors have `L` entries (SOS layers only) except
/// [`newly_disclosed`](Self::newly_disclosed), which has `L+1` with the
/// last entry being the filters disclosed *in this round*.
#[derive(Debug, Clone)]
pub struct RoundTrace {
    /// 1-based round number `j`.
    pub round: u32,
    /// Branch taken.
    pub case: RoundCase,
    /// Nodes known (disclosed, unattacked) at the start of the round
    /// (`X_j`).
    pub known_at_start: f64,
    /// Global budget `β` remaining at the start of the round.
    pub budget_before: f64,
    /// Deterministic attempts on disclosed nodes (`h^D_{i,j}`).
    pub attempted_disclosed: Vec<f64>,
    /// Random attempts (`h^A_{i,j}`).
    pub attempted_random: Vec<f64>,
    /// Successful break-ins (`b_{i,j} = b^D + b^A`).
    pub broken: Vec<f64>,
    /// Disclosed-never-attacked after this round (`d^N_{i,j}`; last entry
    /// = filters newly disclosed this round).
    pub newly_disclosed: Vec<f64>,
    /// Random-attempt survivors disclosed this round (`d^A_{i,j}`).
    pub disclosed_attempted: Vec<f64>,
    /// Disclosed nodes left unattacked by budget exhaustion (`f_{i,j}`).
    pub leftover_disclosed: Vec<f64>,
}

/// Validated successive analysis, ready to
/// [`run`](SuccessiveAnalysis::run).
#[derive(Debug, Clone)]
pub struct SuccessiveAnalysis {
    scenario: Scenario,
    budget: AttackBudget,
    params: SuccessiveParams,
}

impl SuccessiveAnalysis {
    /// Creates the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidAttack`] when a budget exceeds the
    /// overlay population (same constraints as the one-burst model).
    pub fn new(
        scenario: &Scenario,
        budget: AttackBudget,
        params: SuccessiveParams,
    ) -> Result<Self, ConfigError> {
        let n = scenario.system().overlay_nodes();
        if budget.break_in_trials > n {
            return Err(ConfigError::InvalidAttack {
                reason: format!(
                    "N_T = {} exceeds the overlay population N = {n}",
                    budget.break_in_trials
                ),
            });
        }
        if budget.congestion_capacity > n {
            return Err(ConfigError::InvalidAttack {
                reason: format!(
                    "N_C = {} exceeds the overlay population N = {n}",
                    budget.congestion_capacity
                ),
            });
        }
        Ok(SuccessiveAnalysis {
            scenario: scenario.clone(),
            budget,
            params,
        })
    }

    /// Executes Algorithm 1 plus equations (10)–(27) and returns the full
    /// report.
    pub fn run(&self) -> SuccessiveReport {
        let topo = self.scenario.topology();
        let l = topo.layer_count();
        let big_n = self.scenario.system().overlay_nodes() as f64;
        let p_b = self.scenario.system().break_in_probability().value();
        let n_t = self.budget.break_in_trials as f64;
        let n_c = self.budget.congestion_capacity as f64;
        let r = self.params.rounds();
        let alpha = n_t / r as f64;
        let n_f = topo.filter_count() as f64;
        let m_into = |i: usize| topo.degree(i);
        let size = |i: usize| topo.size_of_layer(i) as f64;

        // Cumulative per-SOS-layer state (index 0 = layer 1).
        let mut cum_attempted = vec![0.0f64; l]; // Σ_k h_{i,k} (+ f via cum_leftover)
        let mut cum_leftover = vec![0.0f64; l]; // Σ_k f_{i,k}
        let mut cum_broken = vec![0.0f64; l]; // Σ_k b_{i,k}
        let mut cum_failed_disclosed = vec![0.0f64; l]; // Σ_k u^D_{i,k}
        let mut cum_disclosed_attempted = vec![0.0f64; l]; // Σ_k d^A_{i,k}
        let mut cum_broken_servlets = 0.0f64; // Σ_k b_{L,k}, drives filter disclosure
        let mut filters_disclosed = 0.0f64; // overlap-free cumulative

        // Disclosed-unattacked carried into the next round (d^N_{i,j−1});
        // round 1 is seeded by prior knowledge at layer 1.
        let mut pending = vec![0.0f64; l];
        pending[0] = size(1) * self.params.prior_knowledge().value();

        let mut beta = n_t;
        let mut rounds: Vec<RoundTrace> = Vec::new();

        for round in 1..=r {
            let known: f64 = pending.iter().sum();
            let budget_before = beta;

            // Select the Algorithm-1 branch.
            let case = if known >= beta {
                RoundCase::BudgetExhausted
            } else if known < beta && beta <= alpha {
                RoundCase::FinalPartialBudget
            } else if known < alpha {
                RoundCase::DisclosedBelowQuota
            } else {
                RoundCase::DisclosedAboveQuota
            };

            // Deterministic and random attempt allocation.
            let mut attempted_disclosed = vec![0.0f64; l];
            let mut attempted_random = vec![0.0f64; l];
            let mut leftover = vec![0.0f64; l];
            let random_budget = match case {
                RoundCase::DisclosedBelowQuota => alpha - known,
                RoundCase::FinalPartialBudget => beta - known,
                RoundCase::DisclosedAboveQuota => 0.0,
                RoundCase::BudgetExhausted => 0.0,
            };
            match case {
                RoundCase::BudgetExhausted => {
                    // Attack a β-subset of the disclosed nodes,
                    // proportionally per layer; the rest becomes f_{i,j}.
                    for i in 0..l {
                        let share = if known > 0.0 {
                            pending[i] / known * beta
                        } else {
                            0.0
                        };
                        attempted_disclosed[i] = share;
                        leftover[i] = pending[i] - share;
                    }
                    beta = 0.0;
                }
                _ => {
                    attempted_disclosed.copy_from_slice(&pending);
                    // Random attempts land on nodes untouched so far,
                    // proportionally to each layer's untouched share
                    // (eq. (11); the denominator follows the paper).
                    let untouched_total: f64 = big_n
                        - known
                        - cum_attempted.iter().sum::<f64>();
                    let spend = random_budget.min(untouched_total.max(0.0));
                    if spend > 0.0 && untouched_total > 0.0 {
                        for i in 0..l {
                            let untouched_layer = (size(i + 1)
                                - pending[i]
                                - cum_attempted[i]
                                - cum_leftover[i])
                                .max(0.0);
                            attempted_random[i] =
                                untouched_layer / untouched_total * spend;
                        }
                    }
                    beta -= match case {
                        RoundCase::DisclosedBelowQuota => alpha,
                        RoundCase::FinalPartialBudget => beta,
                        RoundCase::DisclosedAboveQuota => known,
                        RoundCase::BudgetExhausted => unreachable!(),
                    };
                }
            }

            // Break-in outcomes (eqs (12)–(17)).
            let mut broken = vec![0.0f64; l];
            for i in 0..l {
                let h = attempted_disclosed[i] + attempted_random[i];
                broken[i] = p_b * h;
                cum_attempted[i] += h;
                cum_leftover[i] += leftover[i];
                cum_broken[i] += broken[i];
                cum_failed_disclosed[i] += (1.0 - p_b) * attempted_disclosed[i];
            }
            cum_broken_servlets += broken[l - 1];

            // Disclosure (eqs (18)–(20), (24)): layer i is disclosed by
            // round-j break-ins at layer i−1; overlaps with everything
            // attacked or left over so far are discounted.
            let mut newly_disclosed = vec![0.0f64; l + 1];
            let mut disclosed_attempted = vec![0.0f64; l];
            for i in 2..=l {
                let n_i = size(i);
                let m_i = m_into(i);
                let b_prev = broken[i - 2];
                let survive = (1.0 - m_i / n_i).max(0.0).powf(b_prev);
                let touched = cum_attempted[i - 1] + cum_leftover[i - 1];
                let z = n_i * (1.0 - survive * (1.0 - (touched / n_i).min(1.0)));
                newly_disclosed[i - 1] = (z - touched).max(0.0);
                disclosed_attempted[i - 1] = (1.0 - p_b)
                    * attempted_random[i - 1]
                    * (1.0 - survive);
                cum_disclosed_attempted[i - 1] += disclosed_attempted[i - 1];
            }
            // Filters: overlap-free cumulative disclosure driven by all
            // servlet-layer break-ins so far.
            let m_filter = m_into(l + 1);
            let filters_now = n_f
                * (1.0 - (1.0 - m_filter / n_f).max(0.0).powf(cum_broken_servlets));
            newly_disclosed[l] = (filters_now - filters_disclosed).max(0.0);
            filters_disclosed = filters_now;

            // Next round attacks what this round disclosed; layer 1 can
            // never be disclosed by break-ins.
            pending[..l].copy_from_slice(&newly_disclosed[..l]);
            pending[0] = 0.0;

            rounds.push(RoundTrace {
                round,
                case,
                known_at_start: known,
                budget_before,
                attempted_disclosed,
                attempted_random,
                broken,
                newly_disclosed,
                disclosed_attempted,
                leftover_disclosed: leftover,
            });

            if case.is_terminal() {
                break;
            }
        }

        // Congestion phase (eqs (25)–(27)). Known-but-not-broken nodes:
        // failed attempts on disclosed nodes (u^D, all rounds), the final
        // round's unattacked disclosures (d^N_{i,J}), random-attempt
        // survivors disclosed the same round (d^A, all rounds) and
        // budget-exhaustion leftovers (f).
        let last = rounds.last().expect("at least one round always runs");
        let mut known_per_layer = vec![0.0f64; l];
        for i in 0..l {
            known_per_layer[i] = cum_failed_disclosed[i]
                + last.newly_disclosed[i]
                + cum_disclosed_attempted[i]
                + cum_leftover[i];
        }
        let total_disclosed: f64 =
            known_per_layer.iter().sum::<f64>() + filters_disclosed;
        let total_broken: f64 = cum_broken.iter().sum();

        let mut congested = vec![0.0f64; l + 1];
        if n_c >= total_disclosed {
            let spare = n_c - total_disclosed;
            let pool = big_n - total_broken - (total_disclosed - filters_disclosed);
            for i in 0..l {
                let remaining =
                    (size(i + 1) - cum_broken[i] - known_per_layer[i]).max(0.0);
                let random_share = if pool > 0.0 {
                    spare * remaining / pool
                } else {
                    0.0
                };
                congested[i] = known_per_layer[i] + random_share;
            }
            congested[l] = filters_disclosed;
        } else {
            let ratio = if total_disclosed > 0.0 {
                n_c / total_disclosed
            } else {
                0.0
            };
            for i in 0..l {
                congested[i] = ratio * known_per_layer[i];
            }
            congested[l] = ratio * filters_disclosed;
        }

        // Cap at available nodes per layer.
        let mut broken_full = cum_broken.clone();
        broken_full.push(0.0); // filters cannot be broken into
        for i in 0..=l {
            let cap = (size(i + 1) - broken_full[i]).max(0.0);
            congested[i] = congested[i].min(cap);
        }

        let state =
            CompromiseState::from_counts(topo, broken_full, congested.clone());
        SuccessiveReport {
            scenario: self.scenario.clone(),
            budget: self.budget,
            params: self.params,
            rounds,
            congested,
            total_disclosed,
            total_broken,
            filters_disclosed,
            state,
        }
    }
}

/// Full output of a successive-attack analysis.
#[derive(Debug, Clone)]
pub struct SuccessiveReport {
    scenario: Scenario,
    budget: AttackBudget,
    params: SuccessiveParams,
    /// Per-round traces, in order; the last round is the terminal one
    /// (`J ≤ R`).
    pub rounds: Vec<RoundTrace>,
    /// Congested nodes per layer (`c_i`; last entry = filters).
    pub congested: Vec<f64>,
    /// Total disclosed-but-not-broken nodes at congestion time (`N_D`).
    pub total_disclosed: f64,
    /// Total broken-in nodes (`N_B`).
    pub total_broken: f64,
    /// Cumulative disclosed filters.
    pub filters_disclosed: f64,
    /// Final per-layer compromise state.
    pub state: CompromiseState,
}

impl SuccessiveReport {
    /// The scenario this report was computed for.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The attack budget used.
    pub fn budget(&self) -> AttackBudget {
        self.budget
    }

    /// The successive-model parameters used.
    pub fn params(&self) -> SuccessiveParams {
        self.params
    }

    /// Number of break-in rounds actually executed (`J ≤ R`).
    pub fn rounds_executed(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// End-to-end success probability `P_S` (equation (1)).
    pub fn success_probability(&self, evaluator: PathEvaluator) -> Probability {
        evaluator.success_probability(self.scenario.topology(), &self.state)
    }

    /// Per-layer success probabilities `P_1..=P_{L+1}`.
    pub fn layer_successes(&self, evaluator: PathEvaluator) -> Vec<f64> {
        evaluator.layer_successes(self.scenario.topology(), &self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_burst::OneBurstAnalysis;
    use sos_core::{MappingDegree, NodeDistribution, SystemParams};

    fn scenario(layers: usize, mapping: MappingDegree) -> Scenario {
        Scenario::builder()
            .system(SystemParams::paper_default())
            .layers(layers)
            .distribution(NodeDistribution::Even)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap()
    }

    fn paper_budget() -> AttackBudget {
        AttackBudget::new(200, 2_000)
    }

    #[test]
    fn degenerates_to_one_burst() {
        // R = 1, P_E = 0 must reproduce §3.1 exactly.
        for mapping in [
            MappingDegree::ONE_TO_ONE,
            MappingDegree::OneTo(5),
            MappingDegree::OneToHalf,
            MappingDegree::OneToAll,
        ] {
            for (n_t, n_c) in [(200u64, 2_000u64), (2_000, 2_000), (0, 6_000)] {
                let s = scenario(3, mapping.clone());
                let budget = AttackBudget::new(n_t, n_c);
                let ob = OneBurstAnalysis::new(&s, budget).unwrap().run();
                let succ = SuccessiveAnalysis::new(
                    &s,
                    budget,
                    SuccessiveParams::new(1, 0.0).unwrap(),
                )
                .unwrap()
                .run();
                for i in 1..=4 {
                    assert!(
                        (ob.state.bad(i) - succ.state.bad(i)).abs() < 1e-6,
                        "{mapping} N_T={n_t} N_C={n_c} layer {i}: {} vs {}",
                        ob.state.bad(i),
                        succ.state.bad(i)
                    );
                }
                let p1 = ob.success_probability(PathEvaluator::Binomial).value();
                let p2 = succ.success_probability(PathEvaluator::Binomial).value();
                assert!((p1 - p2).abs() < 1e-9, "{mapping}: {p1} vs {p2}");
            }
        }
    }

    #[test]
    fn executes_requested_rounds_when_budget_allows() {
        let s = scenario(3, MappingDegree::OneTo(2));
        let report = SuccessiveAnalysis::new(
            &s,
            paper_budget(),
            SuccessiveParams::new(3, 0.2).unwrap(),
        )
        .unwrap()
        .run();
        assert!(report.rounds_executed() >= 1 && report.rounds_executed() <= 3);
        // Budget is conserved: total attempts + leftovers ≤ N_T.
        let total_attempts: f64 = report
            .rounds
            .iter()
            .flat_map(|r| {
                r.attempted_disclosed
                    .iter()
                    .chain(&r.attempted_random)
                    .copied()
                    .collect::<Vec<_>>()
            })
            .sum();
        // Attempts also land on non-SOS nodes, so SOS-layer attempts are
        // well below N_T.
        assert!(total_attempts <= 200.0 + 1e-9);
    }

    #[test]
    fn prior_knowledge_hurts() {
        let s = scenario(3, MappingDegree::OneTo(5));
        let ps = |p_e: f64| {
            SuccessiveAnalysis::new(
                &s,
                paper_budget(),
                SuccessiveParams::new(3, p_e).unwrap(),
            )
            .unwrap()
            .run()
            .success_probability(PathEvaluator::Binomial)
            .value()
        };
        let base = ps(0.0);
        let known = ps(0.5);
        assert!(
            known < base,
            "prior knowledge should reduce P_S: {known} vs {base}"
        );
    }

    #[test]
    fn more_rounds_reduce_ps() {
        // Fig. 7: P_S decreases as R increases (mapping one-to-five).
        let s = scenario(3, MappingDegree::OneTo(5));
        let mut prev = f64::INFINITY;
        for r in 1..=8 {
            let ps = SuccessiveAnalysis::new(
                &s,
                paper_budget(),
                SuccessiveParams::new(r, 0.2).unwrap(),
            )
            .unwrap()
            .run()
            .success_probability(PathEvaluator::Binomial)
            .value();
            assert!(
                ps <= prev + 1e-6,
                "P_S not (weakly) decreasing at R = {r}: {ps} vs {prev}"
            );
            prev = ps;
        }
    }

    #[test]
    fn round1_uses_prior_knowledge_at_layer_one() {
        let s = scenario(3, MappingDegree::OneTo(2));
        let report = SuccessiveAnalysis::new(
            &s,
            paper_budget(),
            SuccessiveParams::new(3, 0.3).unwrap(),
        )
        .unwrap()
        .run();
        let r1 = &report.rounds[0];
        // X_1 = n_1 * P_E = 34 * 0.3 = 10.2.
        assert!((r1.known_at_start - 10.2).abs() < 1e-9);
        assert!((r1.attempted_disclosed[0] - 10.2).abs() < 1e-9);
        // Layer 1 is never *newly* disclosed.
        for r in &report.rounds {
            assert_eq!(r.newly_disclosed[0], 0.0);
        }
    }

    #[test]
    fn budget_exhaustion_leaves_leftovers() {
        // Huge prior knowledge + tiny N_T forces case X_j ≥ β in round 1.
        let s = scenario(3, MappingDegree::OneTo(2));
        let report = SuccessiveAnalysis::new(
            &s,
            AttackBudget::new(5, 2_000),
            SuccessiveParams::new(3, 1.0).unwrap(),
        )
        .unwrap()
        .run();
        assert_eq!(report.rounds_executed(), 1);
        let r1 = &report.rounds[0];
        assert_eq!(r1.case, RoundCase::BudgetExhausted);
        // X_1 = 34 nodes known, β = 5 attacked, 29 left over.
        assert!((r1.attempted_disclosed[0] - 5.0).abs() < 1e-9);
        assert!((r1.leftover_disclosed[0] - 29.0).abs() < 1e-9);
        // Leftovers are congested (N_C is ample).
        assert!(report.congested[0] >= 29.0 - 1e-9);
    }

    #[test]
    fn zero_break_in_budget_is_pure_congestion() {
        let s = scenario(3, MappingDegree::OneTo(2));
        let report = SuccessiveAnalysis::new(
            &s,
            AttackBudget::new(0, 2_000),
            SuccessiveParams::new(3, 0.0).unwrap(),
        )
        .unwrap()
        .run();
        assert_eq!(report.total_broken, 0.0);
        assert_eq!(report.filters_disclosed, 0.0);
        let ob = OneBurstAnalysis::new(&s, AttackBudget::new(0, 2_000))
            .unwrap()
            .run();
        let a = report.success_probability(PathEvaluator::Binomial).value();
        let b = ob.success_probability(PathEvaluator::Binomial).value();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn filters_disclosure_is_cumulative_and_bounded() {
        let s = scenario(2, MappingDegree::OneToAll);
        let report = SuccessiveAnalysis::new(
            &s,
            AttackBudget::new(2_000, 2_000),
            SuccessiveParams::new(4, 0.2).unwrap(),
        )
        .unwrap()
        .run();
        assert!(report.filters_disclosed <= 10.0 + 1e-9);
        let sum_rounds: f64 = report
            .rounds
            .iter()
            .map(|r| *r.newly_disclosed.last().unwrap())
            .sum();
        assert!((sum_rounds - report.filters_disclosed).abs() < 1e-9);
    }

    #[test]
    fn state_counts_stay_within_layer_sizes() {
        let s = scenario(4, MappingDegree::OneToAll);
        let report = SuccessiveAnalysis::new(
            &s,
            AttackBudget::new(10_000, 10_000),
            SuccessiveParams::new(5, 0.9).unwrap(),
        )
        .unwrap()
        .run();
        let topo = report.scenario().topology();
        for i in 1..=5 {
            assert!(report.state.bad(i) <= topo.size_of_layer(i) as f64 + 1e-9);
        }
        let ps = report.success_probability(PathEvaluator::Binomial);
        assert!((0.0..=1.0).contains(&ps.value()));
    }

    #[test]
    fn deeper_layering_resists_break_in() {
        // Paper: more layers improve resilience to break-in attacks
        // (under low mapping degree, heavy break-in).
        let heavy = AttackBudget::new(2_000, 2_000);
        let params = SuccessiveParams::new(3, 0.2).unwrap();
        let shallow = SuccessiveAnalysis::new(
            &scenario(2, MappingDegree::ONE_TO_ONE),
            heavy,
            params,
        )
        .unwrap()
        .run();
        let deep = SuccessiveAnalysis::new(
            &scenario(8, MappingDegree::ONE_TO_ONE),
            heavy,
            params,
        )
        .unwrap()
        .run();
        // Deeper layering should disclose fewer nodes per broken node
        // chain... compare the disclosed totals normalized by n.
        assert!(
            deep.total_disclosed <= shallow.total_disclosed + 1e-9,
            "deep {} vs shallow {}",
            deep.total_disclosed,
            shallow.total_disclosed
        );
    }
}
