//! One-burst attack model — §3.1, equations (1)–(9).
//!
//! The attacker spends all `N_T` break-in trials in a single round,
//! uniformly at random over the `N` overlay nodes (no prior knowledge),
//! then spends `N_C` congestion slots: first on every disclosed-but-not-
//! broken node, then randomly on the remaining population.
//!
//! All quantities are *average-case* (weak law of large numbers): layer
//! `i` receives `h_i = n_i N_T / N` break-in attempts of which
//! `b_i = P_B h_i` succeed. A successful break-in at layer `i−1`
//! discloses the node's `m_i` neighbors at layer `i`; overlaps between
//! multiple disclosures and between disclosure and direct attack are
//! discounted by equations (5)–(7).

use sos_core::{
    AttackBudget, CompromiseState, ConfigError, PathEvaluator, Probability, Scenario,
};

/// Validated one-burst analysis, ready to [`run`](OneBurstAnalysis::run).
#[derive(Debug, Clone)]
pub struct OneBurstAnalysis {
    scenario: Scenario,
    budget: AttackBudget,
}

impl OneBurstAnalysis {
    /// Creates the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidAttack`] when `N_T` or `N_C` exceeds
    /// the overlay population — the attacker cannot attempt more nodes
    /// than exist.
    pub fn new(scenario: &Scenario, budget: AttackBudget) -> Result<Self, ConfigError> {
        let n = scenario.system().overlay_nodes();
        if budget.break_in_trials > n {
            return Err(ConfigError::InvalidAttack {
                reason: format!(
                    "N_T = {} exceeds the overlay population N = {n}",
                    budget.break_in_trials
                ),
            });
        }
        if budget.congestion_capacity > n {
            return Err(ConfigError::InvalidAttack {
                reason: format!(
                    "N_C = {} exceeds the overlay population N = {n}",
                    budget.congestion_capacity
                ),
            });
        }
        Ok(OneBurstAnalysis {
            scenario: scenario.clone(),
            budget,
        })
    }

    /// Executes equations (1)–(9) and returns the full report.
    pub fn run(&self) -> OneBurstReport {
        let topo = self.scenario.topology();
        let l = topo.layer_count();
        let layers = l + 1; // including the filter layer
        let big_n = self.scenario.system().overlay_nodes() as f64;
        let p_b = self.scenario.system().break_in_probability().value();
        let n_t = self.budget.break_in_trials as f64;
        let n_c = self.budget.congestion_capacity as f64;

        let size = |i: usize| topo.size_of_layer(i) as f64;

        // Break-in phase: h_i and b_i (filters cannot be attacked).
        let mut attempted = vec![0.0; layers];
        let mut broken = vec![0.0; layers];
        for i in 1..=l {
            attempted[i - 1] = size(i) / big_n * n_t;
            broken[i - 1] = p_b * attempted[i - 1];
        }

        // Disclosure: z_i, d_i^N, d_i^A (eqs (5)–(7)); layer 1 cannot be
        // disclosed by break-ins, so both sets are empty there.
        let mut disclosed_new = vec![0.0; layers];
        let mut disclosed_attempted = vec![0.0; layers];
        for i in 2..=layers {
            let n_i = size(i);
            let m_i = topo.degree(i);
            let b_prev = broken[i - 2];
            let survive_disclosure = (1.0 - m_i / n_i).max(0.0).powf(b_prev);
            let h_i = attempted[i - 1];
            let z_i = n_i * (1.0 - survive_disclosure * (1.0 - h_i / n_i));
            disclosed_new[i - 1] = (z_i - h_i).max(0.0);
            disclosed_attempted[i - 1] =
                (h_i - broken[i - 1]).max(0.0) * (1.0 - survive_disclosure);
        }

        let total_disclosed: f64 = disclosed_new.iter().sum::<f64>()
            + disclosed_attempted.iter().sum::<f64>();
        let total_broken: f64 = broken.iter().sum();

        // Congestion phase: eqs (8)–(9).
        let mut congested = vec![0.0; layers];
        let filter_disclosed =
            disclosed_new[layers - 1] + disclosed_attempted[layers - 1];
        if n_c >= total_disclosed {
            // All disclosed nodes congested; spare budget spread randomly
            // over the remaining *overlay* good nodes (filters excluded).
            let spare = n_c - total_disclosed;
            let pool = big_n - total_broken - (total_disclosed - filter_disclosed);
            for i in 1..=l {
                let known =
                    disclosed_new[i - 1] + disclosed_attempted[i - 1];
                let remaining =
                    (size(i) - broken[i - 1] - known).max(0.0);
                let random_share = if pool > 0.0 {
                    spare * remaining / pool
                } else {
                    0.0
                };
                congested[i - 1] = known + random_share;
            }
            congested[layers - 1] = filter_disclosed;
        } else {
            // Only a random subset of the disclosed nodes is congested.
            let ratio = if total_disclosed > 0.0 {
                n_c / total_disclosed
            } else {
                0.0
            };
            for i in 1..=layers {
                congested[i - 1] =
                    ratio * (disclosed_new[i - 1] + disclosed_attempted[i - 1]);
            }
        }

        // Cap congestion at the nodes actually available in each layer.
        for i in 1..=layers {
            let cap = (size(i) - broken[i - 1]).max(0.0);
            congested[i - 1] = congested[i - 1].min(cap);
        }

        let state =
            CompromiseState::from_counts(topo, broken.clone(), congested.clone());
        OneBurstReport {
            scenario: self.scenario.clone(),
            budget: self.budget,
            attempted,
            broken,
            disclosed_new,
            disclosed_attempted,
            congested,
            total_disclosed,
            total_broken,
            state,
        }
    }
}

/// Full output of a one-burst analysis: the per-layer intermediate
/// quantities of §3.1 plus the final compromise state.
///
/// All vectors have `L+1` entries; index `L` (the last) is the filter
/// layer.
#[derive(Debug, Clone)]
pub struct OneBurstReport {
    scenario: Scenario,
    budget: AttackBudget,
    /// Break-in attempts per layer (`h_i`).
    pub attempted: Vec<f64>,
    /// Successful break-ins per layer (`b_i`).
    pub broken: Vec<f64>,
    /// Disclosed, never-attacked nodes per layer (`d_i^N`).
    pub disclosed_new: Vec<f64>,
    /// Disclosed nodes that survived a break-in attempt (`d_i^A`).
    pub disclosed_attempted: Vec<f64>,
    /// Congested nodes per layer (`c_i`).
    pub congested: Vec<f64>,
    /// Total disclosed-but-not-broken nodes (`N_D`).
    pub total_disclosed: f64,
    /// Total broken-in nodes (`N_B`).
    pub total_broken: f64,
    /// Final per-layer compromise state (`b_i`, `c_i`, `s_i`).
    pub state: CompromiseState,
}

impl OneBurstReport {
    /// The scenario this report was computed for.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The attack budget used.
    pub fn budget(&self) -> AttackBudget {
        self.budget
    }

    /// End-to-end success probability `P_S` (equation (1)).
    pub fn success_probability(&self, evaluator: PathEvaluator) -> Probability {
        evaluator.success_probability(self.scenario.topology(), &self.state)
    }

    /// Per-layer success probabilities `P_1..=P_{L+1}`.
    pub fn layer_successes(&self, evaluator: PathEvaluator) -> Vec<f64> {
        evaluator.layer_successes(self.scenario.topology(), &self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_core::{MappingDegree, NodeDistribution, SystemParams};

    fn scenario(layers: usize, mapping: MappingDegree) -> Scenario {
        Scenario::builder()
            .system(SystemParams::paper_default())
            .layers(layers)
            .distribution(NodeDistribution::Even)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap()
    }

    #[test]
    fn pure_congestion_matches_hand_computation() {
        // N_T = 0, N_C = 2000, L = 1, one-to-one: every layer loses a
        // uniform 20% ⇒ P_S = 0.8 (filters untouched).
        let s = scenario(1, MappingDegree::ONE_TO_ONE);
        let report = OneBurstAnalysis::new(&s, AttackBudget::congestion_only(2_000))
            .unwrap()
            .run();
        assert_eq!(report.total_broken, 0.0);
        assert_eq!(report.total_disclosed, 0.0);
        assert!((report.congested[0] - 20.0).abs() < 1e-9);
        assert_eq!(report.congested[1], 0.0, "filters not randomly congested");
        let ps = report.success_probability(PathEvaluator::Hypergeometric);
        assert!((ps.value() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn pure_congestion_multi_layer_product() {
        // L = 2, even split 50/50, one-to-one, N_C = 2000: each layer
        // loses 20% ⇒ P_S = 0.8².
        let s = scenario(2, MappingDegree::ONE_TO_ONE);
        let report = OneBurstAnalysis::new(&s, AttackBudget::congestion_only(2_000))
            .unwrap()
            .run();
        let ps = report.success_probability(PathEvaluator::Hypergeometric);
        assert!((ps.value() - 0.64).abs() < 1e-9);
    }

    #[test]
    fn break_in_phase_distributes_attempts_proportionally() {
        let s = scenario(4, MappingDegree::OneTo(2));
        let report = OneBurstAnalysis::new(&s, AttackBudget::new(2_000, 0))
            .unwrap()
            .run();
        // h_i = n_i / N * N_T = 25/10000 * 2000 = 5 per layer.
        for i in 0..4 {
            assert!((report.attempted[i] - 5.0).abs() < 1e-9);
            assert!((report.broken[i] - 2.5).abs() < 1e-9);
        }
        // Filters never attempted.
        assert_eq!(report.attempted[4], 0.0);
        assert_eq!(report.broken[4], 0.0);
        assert!((report.total_broken - 10.0).abs() < 1e-9);
    }

    #[test]
    fn disclosure_grows_with_mapping_degree() {
        let budget = AttackBudget::new(2_000, 0);
        let low = OneBurstAnalysis::new(&scenario(3, MappingDegree::ONE_TO_ONE), budget)
            .unwrap()
            .run();
        let high = OneBurstAnalysis::new(&scenario(3, MappingDegree::OneToAll), budget)
            .unwrap()
            .run();
        assert!(
            high.total_disclosed > low.total_disclosed,
            "one-to-all should disclose more: {} vs {}",
            high.total_disclosed,
            low.total_disclosed
        );
        // One-to-all with any successful break-in at layer i-1 discloses
        // the entire layer i: disclosed-new plus directly-attacked nodes
        // cover the whole layer (d^A is a subset of the attacked nodes).
        let n2 = high.scenario().topology().size_of_layer(2) as f64;
        let attacked_or_disclosed = high.disclosed_new[1] + high.attempted[1];
        assert!(
            (attacked_or_disclosed - n2).abs() < 1e-6,
            "{attacked_or_disclosed} vs {n2}"
        );
    }

    #[test]
    fn layer_one_never_disclosed() {
        let s = scenario(3, MappingDegree::OneToAll);
        let report = OneBurstAnalysis::new(&s, AttackBudget::new(2_000, 2_000))
            .unwrap()
            .run();
        assert_eq!(report.disclosed_new[0], 0.0);
        assert_eq!(report.disclosed_attempted[0], 0.0);
    }

    #[test]
    fn filters_congested_only_on_disclosure() {
        // Without break-ins the filters stay clean even under heavy
        // congestion budgets.
        let s = scenario(3, MappingDegree::OneToAll);
        let clean = OneBurstAnalysis::new(&s, AttackBudget::congestion_only(6_000))
            .unwrap()
            .run();
        assert_eq!(clean.congested[3], 0.0);
        // With break-ins, servlet-layer compromises disclose filters.
        let attacked = OneBurstAnalysis::new(&s, AttackBudget::new(2_000, 6_000))
            .unwrap()
            .run();
        assert!(attacked.congested[3] > 0.0);
    }

    #[test]
    fn scarce_congestion_budget_is_proportional() {
        // Make N_D large (one-to-all, heavy break-in) and N_C small.
        let s = scenario(3, MappingDegree::OneToAll);
        let report = OneBurstAnalysis::new(&s, AttackBudget::new(2_000, 10))
            .unwrap()
            .run();
        assert!(report.total_disclosed > 10.0);
        let total_congested: f64 = report.congested.iter().sum();
        assert!(
            (total_congested - 10.0).abs() < 1e-6,
            "scarce budget must be fully and exactly spent: {total_congested}"
        );
    }

    #[test]
    fn congestion_budget_conserved_when_abundant() {
        let s = scenario(3, MappingDegree::ONE_TO_ONE);
        let report = OneBurstAnalysis::new(&s, AttackBudget::new(200, 2_000))
            .unwrap()
            .run();
        // Congested overlay total = disclosed + spare * (overlay share).
        // All layers plus spillover must never exceed N_C.
        let total: f64 = report.congested.iter().sum();
        assert!(total <= 2_000.0 + 1e-6);
        // and every disclosed node is congested.
        for i in 0..4 {
            assert!(
                report.congested[i] + 1e-9
                    >= report.disclosed_new[i] + report.disclosed_attempted[i]
            );
        }
    }

    #[test]
    fn more_attack_resources_reduce_ps() {
        let s = scenario(3, MappingDegree::OneTo(2));
        let mut prev = f64::INFINITY;
        for n_c in [0u64, 1_000, 2_000, 4_000, 6_000] {
            let ps = OneBurstAnalysis::new(&s, AttackBudget::new(200, n_c))
                .unwrap()
                .run()
                .success_probability(PathEvaluator::Binomial)
                .value();
            assert!(ps <= prev + 1e-12, "P_S not monotone at N_C = {n_c}");
            prev = ps;
        }
        let mut prev = f64::INFINITY;
        for n_t in [0u64, 100, 200, 1_000, 2_000] {
            let ps = OneBurstAnalysis::new(&s, AttackBudget::new(n_t, 2_000))
                .unwrap()
                .run()
                .success_probability(PathEvaluator::Binomial)
                .value();
            assert!(ps <= prev + 1e-12, "P_S not monotone at N_T = {n_t}");
            prev = ps;
        }
    }

    #[test]
    fn one_to_all_collapses_under_break_in() {
        // Paper: "when the mapping is one to all, P_S = 0 in Fig. 4(b)".
        let s = scenario(3, MappingDegree::OneToAll);
        let report = OneBurstAnalysis::new(&s, AttackBudget::new(2_000, 2_000))
            .unwrap()
            .run();
        let ps = report.success_probability(PathEvaluator::Hypergeometric);
        assert!(ps.value() < 0.01, "P_S = {} should collapse", ps.value());
    }

    #[test]
    fn zero_attack_gives_certain_success() {
        let s = scenario(5, MappingDegree::OneToHalf);
        let report = OneBurstAnalysis::new(&s, AttackBudget::new(0, 0))
            .unwrap()
            .run();
        for eval in [PathEvaluator::Hypergeometric, PathEvaluator::Binomial] {
            assert_eq!(report.success_probability(eval).value(), 1.0);
        }
    }

    #[test]
    fn oversized_budgets_rejected() {
        let s = scenario(3, MappingDegree::ONE_TO_ONE);
        assert!(OneBurstAnalysis::new(&s, AttackBudget::new(10_001, 0)).is_err());
        assert!(OneBurstAnalysis::new(&s, AttackBudget::new(0, 10_001)).is_err());
        assert!(OneBurstAnalysis::new(&s, AttackBudget::new(10_000, 10_000)).is_ok());
    }

    #[test]
    fn state_counts_stay_within_layer_sizes() {
        let s = scenario(3, MappingDegree::OneToAll);
        let report = OneBurstAnalysis::new(&s, AttackBudget::new(10_000, 10_000))
            .unwrap()
            .run();
        let topo = report.scenario().topology();
        for i in 1..=4 {
            assert!(report.state.bad(i) <= topo.size_of_layer(i) as f64 + 1e-9);
        }
    }
}
