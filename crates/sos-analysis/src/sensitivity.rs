//! Parameter-sensitivity (tornado) analysis.
//!
//! The paper's conclusions are sensitivity statements — "`P_S` is
//! sensitive to `N_T`", "for higher mapping degrees `P_S` is more
//! sensitive to changing `N_T`" — evaluated by eyeballing curves. This
//! module makes them quantitative: perturb each system/attack parameter
//! by a relative step around an operating point and report the induced
//! `ΔP_S`, producing the ranking a deployment engineer needs ("which
//! knob should I defend first?").
//!
//! All derivatives are central finite differences on the successive
//! closed-form model (the paper's most general one), with integer
//! parameters stepped by at least 1.

use crate::successive::SuccessiveAnalysis;
use sos_core::{
    AttackBudget, ConfigError, MappingDegree, NodeDistribution, PathEvaluator, Scenario,
    SuccessiveParams, SystemParams,
};

/// The operating point to analyze around.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Overlay population `N`.
    pub overlay_nodes: u64,
    /// SOS nodes `n`.
    pub sos_nodes: u64,
    /// Break-in success probability `P_B`.
    pub break_in_probability: f64,
    /// Layers `L`.
    pub layers: usize,
    /// Mapping policy.
    pub mapping: MappingDegree,
    /// Node distribution.
    pub distribution: NodeDistribution,
    /// Filters.
    pub filters: u64,
    /// Break-in budget `N_T`.
    pub break_in_trials: u64,
    /// Congestion budget `N_C`.
    pub congestion_capacity: u64,
    /// Rounds `R`.
    pub rounds: u32,
    /// Prior knowledge `P_E`.
    pub prior_knowledge: f64,
}

impl OperatingPoint {
    /// The paper's default operating point (successive model defaults).
    pub fn paper_default() -> Self {
        OperatingPoint {
            overlay_nodes: 10_000,
            sos_nodes: 100,
            break_in_probability: 0.5,
            layers: 3,
            mapping: MappingDegree::OneTo(2),
            distribution: NodeDistribution::Even,
            filters: 10,
            break_in_trials: 200,
            congestion_capacity: 2_000,
            rounds: 3,
            prior_knowledge: 0.2,
        }
    }

    /// Prices this operating point.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn price(&self, evaluator: PathEvaluator) -> Result<f64, ConfigError> {
        let scenario = Scenario::builder()
            .system(SystemParams::new(
                self.overlay_nodes,
                self.sos_nodes,
                self.break_in_probability,
            )?)
            .layers(self.layers)
            .distribution(self.distribution.clone())
            .mapping(self.mapping.clone())
            .filters(self.filters)
            .build()?;
        let report = SuccessiveAnalysis::new(
            &scenario,
            AttackBudget::new(self.break_in_trials, self.congestion_capacity),
            SuccessiveParams::new(self.rounds, self.prior_knowledge)?,
        )?
        .run();
        Ok(report.success_probability(evaluator).value())
    }
}

/// Sensitivity of `P_S` to one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityEntry {
    /// Parameter name (e.g. `"N_T"`).
    pub parameter: &'static str,
    /// `P_S` with the parameter stepped down.
    pub ps_low: f64,
    /// `P_S` with the parameter stepped up.
    pub ps_high: f64,
    /// The relative step used (e.g. `0.2` = ±20%).
    pub relative_step: f64,
}

impl SensitivityEntry {
    /// Total swing `|P_S(high) − P_S(low)|` — the tornado bar length.
    pub fn swing(&self) -> f64 {
        (self.ps_high - self.ps_low).abs()
    }

    /// Signed direction: positive when increasing the parameter raises
    /// `P_S` (a defender-friendly knob).
    pub fn direction(&self) -> f64 {
        self.ps_high - self.ps_low
    }
}

impl std::fmt::Display for SensitivityEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.6},{:.6},{:.6}",
            self.parameter,
            self.ps_low,
            self.ps_high,
            self.swing()
        )
    }
}

/// Full tornado analysis around an operating point.
///
/// Perturbs each parameter by ±`relative_step` (integer parameters by
/// at least ±1; probabilities clamped into `[0, 1]`; `L` stepped ±1)
/// and returns entries sorted by swing, largest first.
///
/// # Errors
///
/// Propagates configuration errors from any perturbed point. Perturbed
/// points that are structurally infeasible (e.g. `L+1` starving a
/// layer) propagate their error — choose operating points away from the
/// feasibility boundary.
pub fn tornado(
    point: &OperatingPoint,
    relative_step: f64,
    evaluator: PathEvaluator,
) -> Result<Vec<SensitivityEntry>, ConfigError> {
    assert!(
        relative_step > 0.0 && relative_step < 1.0,
        "relative step must be in (0, 1), got {relative_step}"
    );
    let mut entries = Vec::new();

    let step_u64 = |v: u64| -> (u64, u64) {
        let d = ((v as f64 * relative_step).round() as u64).max(1);
        (v.saturating_sub(d), v + d)
    };
    let step_prob = |v: f64| -> (f64, f64) {
        (
            (v * (1.0 - relative_step)).max(0.0),
            (v * (1.0 + relative_step)).min(1.0),
        )
    };

    // N_T
    {
        let (lo, hi) = step_u64(point.break_in_trials);
        let mut a = point.clone();
        a.break_in_trials = lo;
        let mut b = point.clone();
        b.break_in_trials = hi.min(point.overlay_nodes);
        entries.push(SensitivityEntry {
            parameter: "N_T",
            ps_low: a.price(evaluator)?,
            ps_high: b.price(evaluator)?,
            relative_step,
        });
    }
    // N_C
    {
        let (lo, hi) = step_u64(point.congestion_capacity);
        let mut a = point.clone();
        a.congestion_capacity = lo;
        let mut b = point.clone();
        b.congestion_capacity = hi.min(point.overlay_nodes);
        entries.push(SensitivityEntry {
            parameter: "N_C",
            ps_low: a.price(evaluator)?,
            ps_high: b.price(evaluator)?,
            relative_step,
        });
    }
    // P_B
    {
        let (lo, hi) = step_prob(point.break_in_probability);
        let mut a = point.clone();
        a.break_in_probability = lo;
        let mut b = point.clone();
        b.break_in_probability = hi;
        entries.push(SensitivityEntry {
            parameter: "P_B",
            ps_low: a.price(evaluator)?,
            ps_high: b.price(evaluator)?,
            relative_step,
        });
    }
    // P_E
    {
        let (lo, hi) = step_prob(point.prior_knowledge);
        let mut a = point.clone();
        a.prior_knowledge = lo;
        let mut b = point.clone();
        b.prior_knowledge = hi;
        entries.push(SensitivityEntry {
            parameter: "P_E",
            ps_low: a.price(evaluator)?,
            ps_high: b.price(evaluator)?,
            relative_step,
        });
    }
    // R (±1)
    {
        let mut a = point.clone();
        a.rounds = point.rounds.saturating_sub(1).max(1);
        let mut b = point.clone();
        b.rounds = point.rounds + 1;
        entries.push(SensitivityEntry {
            parameter: "R",
            ps_low: a.price(evaluator)?,
            ps_high: b.price(evaluator)?,
            relative_step,
        });
    }
    // L (±1)
    {
        let mut a = point.clone();
        a.layers = point.layers.saturating_sub(1).max(1);
        let mut b = point.clone();
        b.layers = point.layers + 1;
        entries.push(SensitivityEntry {
            parameter: "L",
            ps_low: a.price(evaluator)?,
            ps_high: b.price(evaluator)?,
            relative_step,
        });
    }
    // n (SOS provisioning)
    {
        let (lo, hi) = step_u64(point.sos_nodes);
        let mut a = point.clone();
        a.sos_nodes = lo.max(point.layers as u64); // keep layers non-empty
        let mut b = point.clone();
        b.sos_nodes = hi.min(point.overlay_nodes);
        entries.push(SensitivityEntry {
            parameter: "n",
            ps_low: a.price(evaluator)?,
            ps_high: b.price(evaluator)?,
            relative_step,
        });
    }
    // N (overlay size)
    {
        let (lo, hi) = step_u64(point.overlay_nodes);
        let mut a = point.clone();
        a.overlay_nodes = lo.max(point.sos_nodes).max(point.congestion_capacity);
        let mut b = point.clone();
        b.overlay_nodes = hi;
        entries.push(SensitivityEntry {
            parameter: "N",
            ps_low: a.price(evaluator)?,
            ps_high: b.price(evaluator)?,
            relative_step,
        });
    }

    entries.sort_by(|a, b| b.swing().partial_cmp(&a.swing()).unwrap());
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_prices() {
        let p = OperatingPoint::paper_default();
        let ps = p.price(PathEvaluator::Binomial).unwrap();
        assert!(ps > 0.0 && ps < 1.0);
    }

    #[test]
    fn tornado_sorted_by_swing() {
        let entries =
            tornado(&OperatingPoint::paper_default(), 0.25, PathEvaluator::Binomial)
                .unwrap();
        assert_eq!(entries.len(), 8);
        for w in entries.windows(2) {
            assert!(w[0].swing() >= w[1].swing() - 1e-12);
        }
    }

    #[test]
    fn attack_knobs_hurt_defender_knobs_help() {
        let entries =
            tornado(&OperatingPoint::paper_default(), 0.25, PathEvaluator::Binomial)
                .unwrap();
        let by_name = |n: &str| entries.iter().find(|e| e.parameter == n).unwrap();
        // Raising attacker resources lowers P_S.
        for attacker in ["N_T", "N_C", "P_B", "P_E", "R"] {
            assert!(
                by_name(attacker).direction() <= 1e-9,
                "{attacker} should have negative direction: {:?}",
                by_name(attacker)
            );
        }
        // Raising the overlay size raises P_S (dilution).
        assert!(by_name("N").direction() >= -1e-9);
        // Counter-intuitive but real: at a *fixed* mapping degree,
        // provisioning more SOS nodes enlarges the attack surface
        // (more random break-in hits, more disclosure) without adding
        // per-hop redundancy, so P_S falls. (With one-to-all mappings
        // more nodes would help; see EXPERIMENTS.md.)
        assert!(by_name("n").direction() <= 1e-9, "{:?}", by_name("n"));
    }

    #[test]
    fn display_format_is_csv() {
        let e = SensitivityEntry {
            parameter: "N_T",
            ps_low: 0.5,
            ps_high: 0.3,
            relative_step: 0.2,
        };
        assert_eq!(e.to_string(), "N_T,0.500000,0.300000,0.200000");
        assert!((e.swing() - 0.2).abs() < 1e-12);
        assert!(e.direction() < 0.0);
    }

    #[test]
    #[should_panic(expected = "relative step must be in (0, 1)")]
    fn bad_step_rejected() {
        let _ = tornado(&OperatingPoint::paper_default(), 1.5, PathEvaluator::Binomial);
    }

    #[test]
    fn higher_mapping_more_sensitive_to_break_in() {
        // The paper's claim, quantified: the N_T swing grows with the
        // mapping degree — measured at a budget where both designs are
        // still alive (at the paper's full budget one-to-five is already
        // near P_S = 0, leaving no room to swing).
        let swing_for = |mapping: MappingDegree| {
            let mut p = OperatingPoint::paper_default();
            p.mapping = mapping;
            p.break_in_trials = 50;
            p.congestion_capacity = 1_000;
            tornado(&p, 0.25, PathEvaluator::Binomial)
                .unwrap()
                .into_iter()
                .find(|e| e.parameter == "N_T")
                .unwrap()
                .swing()
        };
        let low = swing_for(MappingDegree::ONE_TO_ONE);
        let high = swing_for(MappingDegree::OneTo(5));
        assert!(
            high > low,
            "one-to-five N_T swing {high} should exceed one-to-one {low}"
        );
    }
}
