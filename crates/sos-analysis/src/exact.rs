//! Exact (distribution-level) analysis of pure random congestion.
//!
//! The paper's average-case model plugs the *mean* number of bad nodes
//! `s_i` into `P(n_i, s_i, m_i)` and, for high mapping degrees, gets
//! `P_S ≡ 1` whenever `s_i < m_i` (see `DESIGN.md` §1). The actual
//! quantity of interest is an expectation over the *distribution* of
//! bad-node counts: under a random congestion attack of `N_C` nodes out
//! of `N`, the number of congested SOS nodes in layer `i` is
//! hypergeometric, `S_i ~ Hyp(N, n_i, N_C)`, and
//!
//! ```text
//! P_i = E[ 1 − C(S_i, m_i) / C(n_i, m_i) ]
//!     = Σ_k  Pr{S_i = k} · (1 − C(k, m_i)/C(n_i, m_i)).
//! ```
//!
//! This module computes that sum exactly (per layer, multiplying across
//! layers — the layers' counts are weakly negatively correlated through
//! the shared budget, an `O(n/N)` effect that the cross-validation tests
//! bound). It is exact only for the **pure congestion** attack
//! (`N_T = 0`, the Fig. 4(a) setting, and the attack model of the
//! original SOS paper); break-in attacks need the average-case model or
//! the simulator.

use sos_core::{AttackBudget, ConfigError, Probability, Scenario};
use sos_math::HypergeometricDist;

/// Exact pure-congestion analysis (see module docs).
#[derive(Debug, Clone)]
pub struct ExactCongestionAnalysis {
    scenario: Scenario,
    congestion: u64,
}

impl ExactCongestionAnalysis {
    /// Creates the analysis for a random congestion attack of
    /// `congestion` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidAttack`] when the budget exceeds
    /// the overlay population.
    pub fn new(scenario: &Scenario, congestion: u64) -> Result<Self, ConfigError> {
        let n = scenario.system().overlay_nodes();
        if congestion > n {
            return Err(ConfigError::InvalidAttack {
                reason: format!("N_C = {congestion} exceeds the overlay population N = {n}"),
            });
        }
        Ok(ExactCongestionAnalysis {
            scenario: scenario.clone(),
            congestion,
        })
    }

    /// Exact per-boundary success probability
    /// `P_i = E[1 − C(S_i, m_i)/C(n_i, m_i)]`.
    ///
    /// The filter boundary always returns 1 (filters are congested only
    /// upon disclosure, which pure congestion cannot cause).
    ///
    /// # Panics
    ///
    /// Panics if `boundary` is out of `1..=L+1`.
    pub fn layer_success(&self, boundary: usize) -> f64 {
        let topo = self.scenario.topology();
        let l = topo.layer_count();
        assert!(
            (1..=l + 1).contains(&boundary),
            "boundary {boundary} out of range"
        );
        if boundary == l + 1 {
            return 1.0;
        }
        let n_i = topo.size_of_layer(boundary);
        let m_i = (topo.degree(boundary).round() as u64).clamp(1, n_i);
        let dist = HypergeometricDist::new(
            self.scenario.system().overlay_nodes(),
            n_i,
            self.congestion,
        )
        .expect("validated at construction");
        let mut expect_failure = 0.0;
        for k in dist.min_k()..=dist.max_k() {
            if k < m_i {
                continue; // C(k, m) = 0
            }
            // C(k, m)/C(n_i, m) via the exact hypergeometric helper.
            let all_bad = sos_math::hypergeom::all_specific_in_sample(
                n_i as f64,
                k as f64,
                m_i,
            );
            expect_failure += dist.pmf(k) * all_bad;
        }
        (1.0 - expect_failure).clamp(0.0, 1.0)
    }

    /// Exact end-to-end `P_S` (product over boundaries; layer counts
    /// treated as independent — see module docs for the correlation
    /// caveat).
    pub fn success_probability(&self) -> Probability {
        let l = self.scenario.topology().layer_count();
        let mut ps = 1.0;
        for boundary in 1..=l + 1 {
            ps *= self.layer_success(boundary);
        }
        Probability::clamped(ps)
    }

    /// The congestion budget.
    pub fn congestion(&self) -> u64 {
        self.congestion
    }
}

/// Convenience: exact `P_S` for a budget that must be congestion-only.
///
/// # Errors
///
/// Returns [`ConfigError::InvalidAttack`] if the budget contains
/// break-in trials (the exact analysis does not model break-ins) or
/// exceeds the overlay.
pub fn exact_ps(scenario: &Scenario, budget: AttackBudget) -> Result<Probability, ConfigError> {
    if budget.break_in_trials > 0 {
        return Err(ConfigError::InvalidAttack {
            reason: format!(
                "exact analysis handles pure congestion only (N_T = {} given)",
                budget.break_in_trials
            ),
        });
    }
    Ok(ExactCongestionAnalysis::new(scenario, budget.congestion_capacity)?
        .success_probability())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_burst::OneBurstAnalysis;
    use sos_core::{MappingDegree, PathEvaluator, SystemParams};

    fn scenario(layers: usize, mapping: MappingDegree) -> Scenario {
        Scenario::builder()
            .system(SystemParams::paper_default())
            .layers(layers)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_average_case_for_degree_one() {
        // For m = 1 the failure probability is linear in S_i, so the
        // expectation equals the average-case value exactly.
        for n_c in [500u64, 2_000, 6_000] {
            let s = scenario(3, MappingDegree::ONE_TO_ONE);
            let exact = ExactCongestionAnalysis::new(&s, n_c)
                .unwrap()
                .success_probability()
                .value();
            let avg = OneBurstAnalysis::new(&s, AttackBudget::congestion_only(n_c))
                .unwrap()
                .run()
                .success_probability(PathEvaluator::Hypergeometric)
                .value();
            assert!(
                (exact - avg).abs() < 1e-6,
                "N_C={n_c}: exact {exact} vs average {avg}"
            );
        }
    }

    #[test]
    fn one_to_all_declines_where_average_case_saturates() {
        // The Fig. 4(a) resolution: average-case says P_S = 1 for
        // one-to-all at every L; the exact analysis declines with L.
        let mut prev = 1.0;
        let mut moved = false;
        for l in [1usize, 4, 8, 10] {
            let s = scenario(l, MappingDegree::OneToAll);
            let exact = ExactCongestionAnalysis::new(&s, 6_000)
                .unwrap()
                .success_probability()
                .value();
            let avg = OneBurstAnalysis::new(&s, AttackBudget::congestion_only(6_000))
                .unwrap()
                .run()
                .success_probability(PathEvaluator::Hypergeometric)
                .value();
            assert_eq!(avg, 1.0, "average-case saturates at L={l}");
            assert!(exact <= prev + 1e-12, "exact not declining at L={l}");
            if exact < prev - 1e-9 {
                moved = true;
            }
            prev = exact;
        }
        assert!(moved, "exact P_S should strictly decline somewhere");
        assert!(prev < 1.0, "exact P_S at L=10 must be below 1: {prev}");
    }

    #[test]
    fn zero_congestion_is_harmless() {
        let s = scenario(3, MappingDegree::OneToHalf);
        let exact = ExactCongestionAnalysis::new(&s, 0).unwrap();
        assert_eq!(exact.success_probability().value(), 1.0);
    }

    #[test]
    fn total_congestion_is_fatal() {
        let s = scenario(3, MappingDegree::OneToAll);
        let exact = ExactCongestionAnalysis::new(&s, 10_000).unwrap();
        // Every overlay node congested ⇒ every SOS node congested.
        assert!(exact.success_probability().value() < 1e-9);
    }

    #[test]
    fn filters_unaffected() {
        let s = scenario(2, MappingDegree::OneTo(2));
        let exact = ExactCongestionAnalysis::new(&s, 6_000).unwrap();
        assert_eq!(exact.layer_success(3), 1.0);
    }

    #[test]
    fn monotone_in_budget() {
        let s = scenario(4, MappingDegree::OneTo(5));
        let mut prev = 1.0;
        for n_c in (0..=10_000).step_by(2_000) {
            let ps = ExactCongestionAnalysis::new(&s, n_c)
                .unwrap()
                .success_probability()
                .value();
            assert!(ps <= prev + 1e-12, "not monotone at N_C={n_c}");
            prev = ps;
        }
    }

    #[test]
    fn exact_ps_rejects_break_in_budgets() {
        let s = scenario(3, MappingDegree::OneTo(2));
        assert!(exact_ps(&s, AttackBudget::new(1, 100)).is_err());
        assert!(exact_ps(&s, AttackBudget::congestion_only(100)).is_ok());
        assert!(ExactCongestionAnalysis::new(&s, 10_001).is_err());
    }
}
