//! Parameter-sweep machinery for regenerating the paper's figures.
//!
//! Every figure in the evaluation is a family of `P_S` curves over a
//! design or attack parameter. [`SweepSeries`] holds one curve,
//! [`SweepTable`] a figure's worth of curves with CSV `Display` output
//! (the format the `sos-bench` figure binaries print and the integration
//! tests parse).

use crate::one_burst::OneBurstAnalysis;
use crate::successive::SuccessiveAnalysis;
use serde::{Deserialize, Serialize};
use sos_core::{
    AttackBudget, ConfigError, MappingDegree, NodeDistribution, PathEvaluator, Scenario,
    SuccessiveParams, SystemParams,
};

/// A single `(x, y)` sample of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Swept parameter value.
    pub x: f64,
    /// Observed `P_S` (or other metric).
    pub y: f64,
}

/// One labelled curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Legend label, e.g. `"one-to-five, N_C=2000"`.
    pub label: String,
    /// Samples in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// Creates a series from parallel x/y slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_xy(label: impl Into<String>, xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        SweepSeries {
            label: label.into(),
            points: xs
                .iter()
                .zip(ys)
                .map(|(&x, &y)| SweepPoint { x, y })
                .collect(),
        }
    }

    /// The x values.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.x).collect()
    }

    /// The y values.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.y).collect()
    }
}

/// A full figure: several curves over a common x-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepTable {
    /// Figure title (e.g. `"fig4a"`).
    pub title: String,
    /// Name of the x-axis parameter (e.g. `"L"`).
    pub x_name: String,
    /// Name of the y-axis metric (normally `"P_S"`).
    pub y_name: String,
    /// The curves.
    pub series: Vec<SweepSeries>,
}

impl SweepTable {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        x_name: impl Into<String>,
        y_name: impl Into<String>,
    ) -> Self {
        SweepTable {
            title: title.into(),
            x_name: x_name.into(),
            y_name: y_name.into(),
            series: Vec::new(),
        }
    }

    /// Appends a curve.
    pub fn push(&mut self, series: SweepSeries) {
        self.series.push(series);
    }

    /// Looks up a curve by label.
    pub fn series_by_label(&self, label: &str) -> Option<&SweepSeries> {
        self.series.iter().find(|s| s.label == label)
    }
}

impl std::fmt::Display for SweepTable {
    /// CSV with a comment header:
    ///
    /// ```text
    /// # fig4a
    /// series,L,P_S
    /// one-to-one N_C=2000,1,0.800000
    /// ...
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "series,{},{}", self.x_name, self.y_name)?;
        for s in &self.series {
            for p in &s.points {
                writeln!(f, "{},{},{:.6}", s.label, p.x, p.y)?;
            }
        }
        Ok(())
    }
}

/// Shared inputs for the sweep helpers below.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// System-side parameters.
    pub system: SystemParams,
    /// Node distribution policy.
    pub distribution: NodeDistribution,
    /// Mapping-degree policy.
    pub mapping: MappingDegree,
    /// Filter count.
    pub filters: u64,
    /// Evaluator used to turn compromise states into `P_S`.
    pub evaluator: PathEvaluator,
}

impl SweepConfig {
    /// Paper defaults with the given mapping.
    pub fn paper_default(mapping: MappingDegree) -> Self {
        SweepConfig {
            system: SystemParams::paper_default(),
            distribution: NodeDistribution::Even,
            mapping,
            filters: 10,
            evaluator: PathEvaluator::Binomial,
        }
    }

    fn scenario(&self, layers: usize) -> Result<Scenario, ConfigError> {
        Scenario::builder()
            .system(self.system)
            .layers(layers)
            .distribution(self.distribution.clone())
            .mapping(self.mapping.clone())
            .filters(self.filters)
            .build()
    }
}

/// `P_S` versus the layer count `L` under the one-burst model
/// (Figs 4(a)/4(b)).
///
/// # Errors
///
/// Propagates configuration errors (e.g. a layer count that leaves a
/// layer empty).
pub fn sweep_layers_one_burst(
    config: &SweepConfig,
    budget: AttackBudget,
    layer_range: impl IntoIterator<Item = usize>,
    label: impl Into<String>,
) -> Result<SweepSeries, ConfigError> {
    let mut points = Vec::new();
    for l in layer_range {
        let scenario = config.scenario(l)?;
        let ps = OneBurstAnalysis::new(&scenario, budget)?
            .run()
            .success_probability(config.evaluator);
        points.push(SweepPoint {
            x: l as f64,
            y: ps.value(),
        });
    }
    Ok(SweepSeries {
        label: label.into(),
        points,
    })
}

/// `P_S` versus the layer count `L` under the successive model
/// (Figs 6(a)/6(b)).
///
/// # Errors
///
/// Propagates configuration errors.
pub fn sweep_layers_successive(
    config: &SweepConfig,
    budget: AttackBudget,
    params: SuccessiveParams,
    layer_range: impl IntoIterator<Item = usize>,
    label: impl Into<String>,
) -> Result<SweepSeries, ConfigError> {
    let mut points = Vec::new();
    for l in layer_range {
        let scenario = config.scenario(l)?;
        let ps = SuccessiveAnalysis::new(&scenario, budget, params)?
            .run()
            .success_probability(config.evaluator);
        points.push(SweepPoint {
            x: l as f64,
            y: ps.value(),
        });
    }
    Ok(SweepSeries {
        label: label.into(),
        points,
    })
}

/// `P_S` versus the round count `R` (Fig. 7).
///
/// # Errors
///
/// Propagates configuration errors.
pub fn sweep_rounds(
    config: &SweepConfig,
    budget: AttackBudget,
    prior_knowledge: f64,
    layers: usize,
    round_range: impl IntoIterator<Item = u32>,
    label: impl Into<String>,
) -> Result<SweepSeries, ConfigError> {
    let scenario = config.scenario(layers)?;
    let mut points = Vec::new();
    for r in round_range {
        let params = SuccessiveParams::new(r, prior_knowledge)?;
        let ps = SuccessiveAnalysis::new(&scenario, budget, params)?
            .run()
            .success_probability(config.evaluator);
        points.push(SweepPoint {
            x: r as f64,
            y: ps.value(),
        });
    }
    Ok(SweepSeries {
        label: label.into(),
        points,
    })
}

/// `P_S` versus the break-in budget `N_T` (Figs 8(a)/8(b)).
///
/// # Errors
///
/// Propagates configuration errors.
pub fn sweep_break_in(
    config: &SweepConfig,
    congestion_capacity: u64,
    params: SuccessiveParams,
    layers: usize,
    break_in_range: impl IntoIterator<Item = u64>,
    label: impl Into<String>,
) -> Result<SweepSeries, ConfigError> {
    let scenario = config.scenario(layers)?;
    let mut points = Vec::new();
    for n_t in break_in_range {
        let budget = AttackBudget::new(n_t, congestion_capacity);
        let ps = SuccessiveAnalysis::new(&scenario, budget, params)?
            .run()
            .success_probability(config.evaluator);
        points.push(SweepPoint {
            x: n_t as f64,
            y: ps.value(),
        });
    }
    Ok(SweepSeries {
        label: label.into(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sos_math::series::{trend, Trend};

    #[test]
    fn series_from_xy() {
        let s = SweepSeries::from_xy("demo", &[1.0, 2.0], &[0.9, 0.8]);
        assert_eq!(s.xs(), vec![1.0, 2.0]);
        assert_eq!(s.ys(), vec![0.9, 0.8]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_from_xy_mismatch_panics() {
        SweepSeries::from_xy("demo", &[1.0], &[0.9, 0.8]);
    }

    #[test]
    fn table_csv_format() {
        let mut t = SweepTable::new("fig-demo", "L", "P_S");
        t.push(SweepSeries::from_xy("a", &[1.0], &[0.5]));
        let csv = t.to_string();
        assert!(csv.starts_with("# fig-demo\nseries,L,P_S\n"));
        assert!(csv.contains("a,1,0.500000"));
        assert!(t.series_by_label("a").is_some());
        assert!(t.series_by_label("b").is_none());
    }

    #[test]
    fn layer_sweep_pure_congestion_declines() {
        // Fig. 4(a) shape: under pure congestion, P_S declines with L.
        let config = SweepConfig::paper_default(MappingDegree::ONE_TO_ONE);
        let series = sweep_layers_one_burst(
            &config,
            AttackBudget::congestion_only(2_000),
            1..=8,
            "one-to-one",
        )
        .unwrap();
        assert_eq!(series.points.len(), 8);
        assert_eq!(trend(&series.ys(), 1e-9), Trend::NonIncreasing);
        // L = 1 is exactly 0.8 under one-to-one.
        assert!((series.points[0].y - 0.8).abs() < 1e-9);
    }

    #[test]
    fn round_sweep_declines() {
        let config = SweepConfig::paper_default(MappingDegree::OneTo(5));
        let series = sweep_rounds(
            &config,
            AttackBudget::paper_default(),
            0.2,
            3,
            1..=8,
            "L=3",
        )
        .unwrap();
        assert_eq!(trend(&series.ys(), 1e-6), Trend::NonIncreasing);
    }

    #[test]
    fn break_in_sweep_declines() {
        let config = SweepConfig::paper_default(MappingDegree::OneTo(5));
        let series = sweep_break_in(
            &config,
            2_000,
            SuccessiveParams::paper_default(),
            3,
            [0u64, 200, 500, 1_000, 2_000, 5_000],
            "L=3",
        )
        .unwrap();
        assert_eq!(trend(&series.ys(), 1e-6), Trend::NonIncreasing);
    }

    #[test]
    fn invalid_layer_count_surfaces_error() {
        let config = SweepConfig::paper_default(MappingDegree::ONE_TO_ONE);
        // 100 SOS nodes over 101 layers cannot work.
        let res = sweep_layers_one_burst(
            &config,
            AttackBudget::congestion_only(100),
            [101usize],
            "bad",
        );
        assert!(res.is_err());
    }
}
