//! Closed-form average-case analysis of the generalized SOS architecture
//! under intelligent DDoS attacks — §3 of the ICDCS 2004 paper.
//!
//! Two attack models are implemented:
//!
//! * [`one_burst`] — §3.1: the attacker spends all `N_T` break-in trials
//!   at once, uniformly at random over the `N` overlay nodes, then
//!   congests the disclosed nodes (plus random spillover) with its `N_C`
//!   congestion budget. Equations (1)–(9).
//! * [`successive`] — §3.2: the break-in phase runs over `R` rounds; each
//!   round attacks the nodes disclosed by the previous round first and
//!   spends leftover budget randomly (Algorithm 1). The attacker may know
//!   a fraction `P_E` of the first layer a priori. Equations (10)–(27).
//!
//! Both produce a [`sos_core::CompromiseState`] (the per-layer `b_i`,
//! `c_i`) from which `P_S` is computed with any
//! [`sos_core::PathEvaluator`]. Setting `R = 1, P_E = 0` makes the
//! successive model numerically identical to the one-burst model (verified
//! by tests in both crates).
//!
//! The [`baseline`] module models the *original* SOS architecture
//! (SIGCOMM 2002) — fixed 3 layers, one-to-all mapping — including the
//! multi-role-node variant whose break-in fragility motivates the paper's
//! generalization. The [`sweep`] module provides the parameter-sweep
//! machinery used by the figure harness.
//!
//! # Example
//!
//! ```
//! use sos_analysis::one_burst::OneBurstAnalysis;
//! use sos_core::{AttackBudget, MappingDegree, PathEvaluator, Scenario, SystemParams};
//!
//! let scenario = Scenario::builder()
//!     .system(SystemParams::paper_default())
//!     .layers(3)
//!     .mapping(MappingDegree::ONE_TO_ONE)
//!     .build()?;
//! // Moderate pure-congestion attack (Fig. 4(a)).
//! let report = OneBurstAnalysis::new(&scenario, AttackBudget::congestion_only(2_000))?
//!     .run();
//! let ps = report.success_probability(PathEvaluator::Hypergeometric);
//! assert!(ps.value() > 0.4 && ps.value() < 0.6); // 0.8^3 * (filters ≈ 1)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod advisor;
pub mod baseline;
pub mod exact;
pub mod latency;
pub mod one_burst;
pub mod optimizer;
pub mod sensitivity;
pub mod successive;
pub mod sweep;

pub use advisor::{has_critical, review, Advice, Severity};
pub use baseline::{MultiRoleAnalysis, OriginalSosAnalysis};
pub use exact::{exact_ps, ExactCongestionAnalysis};
pub use latency::{latency_resilience_frontier, DesignPoint, ForwardingDiscipline, LatencyModel};
pub use one_burst::{OneBurstAnalysis, OneBurstReport};
pub use optimizer::{AttackProfile, Constraints, DesignSpace, Objective, Optimizer, RankedDesign};
pub use sensitivity::{tornado, OperatingPoint, SensitivityEntry};
pub use successive::{RoundCase, RoundTrace, SuccessiveAnalysis, SuccessiveReport};
pub use sweep::{SweepPoint, SweepSeries, SweepTable};
