//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in integer ticks.
///
/// Integer ticks (rather than floats) keep event ordering exact and
/// platform-independent; callers choose the tick granularity (e.g.
/// 1 tick = 1 ms of modelled network time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference in ticks.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, delta: u64) -> SimTime {
        SimTime(
            self.0
                .checked_add(delta)
                .expect("simulated time overflowed u64 ticks"),
        )
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, delta: u64) {
        *self = *self + delta;
    }
}

impl Sub for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("negative simulated-time difference")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        assert_eq!((t + 5).ticks(), 15);
        assert_eq!(t + 5 - t, 5);
        assert_eq!(t.since(SimTime::from_ticks(3)), 7);
        assert_eq!(SimTime::from_ticks(3).since(t), 0, "saturates");
        let mut u = t;
        u += 2;
        assert_eq!(u.ticks(), 12);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "negative simulated-time difference")]
    fn negative_difference_panics() {
        let _ = SimTime::from_ticks(1) - SimTime::from_ticks(2);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "t=42");
    }
}
