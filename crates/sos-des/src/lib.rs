//! Deterministic discrete-event simulation substrate.
//!
//! The protocol-level simulations in this workspace (the Chord
//! stabilization protocol in `sos-overlay`, the capacity/flow attack
//! model in `sos-sim`) need a common event loop with three properties:
//!
//! * **determinism** — identical schedules produce identical runs;
//!   ties at the same timestamp are broken by insertion order (FIFO),
//!   never by heap internals;
//! * **cheap scheduling** — a binary heap keyed by `(time, seq)`;
//! * **separation of state and engine** — the engine owns the clock and
//!   the queue; the caller owns the world state and interprets events.
//!
//! # Example
//!
//! ```
//! use sos_des::{Scheduler, SimTime};
//!
//! // Count ticks of two interleaved timers.
//! let mut sched = Scheduler::new();
//! sched.schedule(SimTime::from_ticks(10), "a");
//! sched.schedule(SimTime::from_ticks(5), "b");
//! sched.schedule(SimTime::from_ticks(10), "c"); // same time as "a", after it? no:
//! // "a" was scheduled first at t=10, so it fires first at t=10.
//! let mut order = Vec::new();
//! while let Some((t, ev)) = sched.pop() {
//!     order.push((t.ticks(), ev));
//! }
//! assert_eq!(order, vec![(5, "b"), (10, "a"), (10, "c")]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod time;

pub use engine::{run_until, Scheduler, Simulation, StepOutcome};
pub use time::SimTime;
