//! The event scheduler and a thin simulation driver.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic future-event queue.
///
/// Events fire in `(time, insertion order)` order: two events scheduled
/// for the same tick fire in the order they were scheduled, regardless
/// of heap internals — the property that makes protocol simulations
/// reproducible.
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated time (the timestamp of the last popped
    /// event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — schedules must be causal.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Pops the next event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().map(|Reverse(e)| e.at <= deadline)? {
            self.pop()
        } else {
            None
        }
    }
}

/// Outcome of driving a [`Simulation`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was processed.
    Progressed,
    /// The queue is empty; the simulation is quiescent.
    Quiescent,
    /// The next event lies beyond the supplied deadline.
    DeadlineReached,
}

/// A world that reacts to events — implement this and drive it with
/// [`run_until`].
///
/// The handler receives the scheduler so it can schedule follow-up
/// events (message replies, periodic timers).
pub trait Simulation {
    /// The event type flowing through the queue.
    type Event;

    /// Handles one event at simulated time `at`.
    fn handle(&mut self, at: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Drives `world` until `deadline` (inclusive) or quiescence; returns
/// how the run ended and the number of events processed.
pub fn run_until<W: Simulation>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    deadline: SimTime,
) -> (StepOutcome, u64) {
    let start = sched.processed();
    loop {
        match sched.pop_until(deadline) {
            Some((at, event)) => world.handle(at, event, sched),
            None => {
                let outcome = if sched.is_empty() {
                    StepOutcome::Quiescent
                } else {
                    StepOutcome::DeadlineReached
                };
                return (outcome, sched.processed() - start);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_tick() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule(SimTime::from_ticks(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn time_ordering_dominates() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ticks(30), "late");
        s.schedule(SimTime::from_ticks(10), "early");
        s.schedule(SimTime::from_ticks(20), "mid");
        assert_eq!(s.pop().unwrap().1, "early");
        assert_eq!(s.pop().unwrap().1, "mid");
        assert_eq!(s.pop().unwrap().1, "late");
        assert_eq!(s.now(), SimTime::from_ticks(30));
        assert_eq!(s.processed(), 3);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ticks(10), "a");
        s.pop();
        s.schedule_in(5, "b");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_ticks(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ticks(10), "a");
        s.pop();
        s.schedule(SimTime::from_ticks(5), "b");
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ticks(10), "a");
        s.schedule(SimTime::from_ticks(20), "b");
        assert!(s.pop_until(SimTime::from_ticks(15)).is_some());
        assert!(s.pop_until(SimTime::from_ticks(15)).is_none());
        assert_eq!(s.pending(), 1);
    }

    struct Counter {
        fired: Vec<u64>,
        limit: u64,
    }

    impl Simulation for Counter {
        type Event = u64;

        fn handle(&mut self, at: SimTime, event: u64, sched: &mut Scheduler<u64>) {
            self.fired.push(event);
            // Periodic timer: reschedule until the limit.
            if event < self.limit {
                sched.schedule(at + 10, event + 1);
            }
        }
    }

    #[test]
    fn run_until_drives_periodic_timer() {
        let mut world = Counter {
            fired: Vec::new(),
            limit: 5,
        };
        let mut sched = Scheduler::new();
        sched.schedule(SimTime::ZERO, 0);
        let (outcome, n) = run_until(&mut world, &mut sched, SimTime::from_ticks(25));
        assert_eq!(outcome, StepOutcome::DeadlineReached);
        assert_eq!(n, 3, "events at t=0, 10, 20");
        assert_eq!(world.fired, vec![0, 1, 2]);
        let (outcome, n) = run_until(&mut world, &mut sched, SimTime::from_ticks(1_000));
        assert_eq!(outcome, StepOutcome::Quiescent);
        assert_eq!(n, 3, "events at t=30, 40, 50 then stop");
        assert_eq!(world.fired, vec![0, 1, 2, 3, 4, 5]);
    }
}
