//! Property tests for the fault plane's determinism contract:
//! same seed + rates ⇒ identical injected fault schedule.

use proptest::prelude::*;
use sos_faults::{FaultConfig, FaultPlan, RetryPolicy};

fn arb_config() -> impl Strategy<Value = FaultConfig> {
    (
        // Loss is kept strictly positive so the config is never the
        // zero-fault one (FaultPlan::new rejects that by contract).
        0.01f64..=0.9,
        0.0f64..=0.9,
        1u64..=16,
        0.0f64..=0.5,
        0.0f64..=0.5,
        1u64..=16,
        0.0f64..=0.5,
        0u64..u64::MAX,
    )
        .prop_map(|(loss, delay, dt, crash, slow, st, mis, seed)| {
            FaultConfig::none()
                .loss(loss)
                .delay(delay, dt)
                .crash(crash)
                .slow(slow, st)
                .misroute(mis)
                .seed(seed)
        })
}

/// Replay one fixed query schedule against a plan and record everything
/// the plan injected.
fn schedule(plan: &FaultPlan, nodes: u32, hops: u64) -> Vec<(bool, u64, bool, u64, bool)> {
    let mut out = Vec::new();
    for k in 0..hops {
        let node = (k as u32) % nodes.max(1);
        let hop = plan.draw_hop();
        out.push((
            hop.lost,
            hop.delay_ticks,
            plan.is_crashed(node),
            plan.slow_penalty(node),
            plan.draw_misroute(),
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed + rates ⇒ bit-identical fault schedule.
    #[test]
    fn same_config_same_schedule(cfg in arb_config(), trial in 0u64..1000, hops in 1u64..256) {
        let a = FaultPlan::new(&cfg, trial);
        let b = FaultPlan::new(&cfg, trial);
        prop_assert_eq!(schedule(&a, 64, hops), schedule(&b, 64, hops));
    }

    /// A different fault seed decorrelates the schedule (for configs with
    /// a reasonable chance of any fault firing at all).
    #[test]
    fn different_seed_different_schedule(seed_a in 0u64..u64::MAX, seed_b in 0u64..u64::MAX) {
        prop_assume!(seed_a != seed_b);
        let base = FaultConfig::none().loss(0.5).crash(0.3).misroute(0.4);
        let a = FaultPlan::new(&base.seed(seed_a), 0);
        let b = FaultPlan::new(&base.seed(seed_b), 0);
        prop_assert_ne!(schedule(&a, 64, 512), schedule(&b, 64, 512));
    }

    /// Node-level faults are pure in the node id: probing extra nodes or
    /// interleaving hop draws never changes an answer.
    #[test]
    fn node_faults_pure(cfg in arb_config(), node in 0u32..u32::MAX) {
        let a = FaultPlan::new(&cfg, 1);
        let b = FaultPlan::new(&cfg, 1);
        // b does unrelated work first.
        for n in 0u32..64 {
            let _ = b.is_crashed(n);
            let _ = b.slow_penalty(n);
        }
        let _ = b.draw_hop();
        let _ = b.draw_misroute();
        prop_assert_eq!(a.is_crashed(node), b.is_crashed(node));
        prop_assert_eq!(a.slow_penalty(node), b.slow_penalty(node));
    }

    /// Backoff is monotone in the attempt number.
    #[test]
    fn backoff_monotone(base in 0u64..1024, attempts in 2u32..20) {
        let p = RetryPolicy::new(attempts, base, u64::MAX);
        let mut prev = 0;
        for a in 1..=attempts {
            let b = p.backoff_before(a);
            prop_assert!(b >= prev);
            prev = b;
        }
    }
}
