//! One sampled fault schedule for one trial.

use std::cell::Cell;

use crate::FaultConfig;

/// Domain-separation tags for the plan's PRF streams. Each fault class
/// reads from its own stream so adding a class never shifts another
/// class's samples.
const STREAM_CRASH: u64 = 0xC4A5_1101;
const STREAM_SLOW: u64 = 0xC4A5_1102;
const STREAM_HOP: u64 = 0xC4A5_1103;
const STREAM_MISROUTE: u64 = 0xC4A5_1104;

/// Trial-index mixing constant (same spirit as the engine's per-trial
/// stream derivation, different constant so the streams decorrelate).
const TRIAL_MIX: u64 = 0xA076_1D64_78BD_642F;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function, used
/// here as a tiny keyed PRF. Stateless, so node-level queries are
/// order-independent.
///
/// Public because other deterministic fault planes (e.g. the
/// `sos-serve` chaos proxy) derive their per-event decision streams
/// from the same primitive, keeping every injected fault a pure
/// function of `(seed, stream, index)`.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a PRF output to a uniform float in `[0, 1)` (53-bit mantissa).
pub fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Faults drawn for one hop delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopFault {
    /// The attempt's message is dropped in flight.
    pub lost: bool,
    /// Ticks of in-flight delay (0 = no delay fault).
    pub delay_ticks: u64,
}

impl HopFault {
    /// A fault-free attempt.
    pub fn clean() -> Self {
        HopFault { lost: false, delay_ticks: 0 }
    }
}

/// The fault schedule for a single trial, sampled from a [`FaultConfig`].
///
/// Determinism contract:
///
/// - **Node-level faults** ([`is_crashed`], [`slow_penalty`]) are pure
///   functions of `(config.seed, trial, node)` — query them in any order,
///   any number of times.
/// - **Hop-level faults** ([`draw_hop`], [`draw_misroute`]) consume a
///   counted stream: the *k*-th draw of a given kind is a pure function
///   of `(config.seed, trial, k)`. Two runs that make the same sequence
///   of draws see the same faults; observation (tracing) must never draw.
///
/// The plan is intentionally `!Sync` (interior counter) — it is built per
/// trial inside one worker thread, matching the engine's trial-parallel
/// execution model.
///
/// [`is_crashed`]: FaultPlan::is_crashed
/// [`slow_penalty`]: FaultPlan::slow_penalty
/// [`draw_hop`]: FaultPlan::draw_hop
/// [`draw_misroute`]: FaultPlan::draw_misroute
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Per-trial plan seed: `cfg.seed ^ trial * TRIAL_MIX`, pre-mixed.
    seed: u64,
    /// Counter for hop-level draws ([`FaultPlan::draw_hop`]).
    hop_draws: Cell<u64>,
    /// Counter for misroute draws ([`FaultPlan::draw_misroute`]).
    misroute_draws: Cell<u64>,
}

impl FaultPlan {
    /// Sample the fault schedule for `trial` from `cfg`.
    ///
    /// Panics if `cfg.is_none()`: zero-fault runs must not construct a
    /// plan (that is the bit-identity guarantee, enforced loudly).
    pub fn new(cfg: &FaultConfig, trial: u64) -> Self {
        assert!(
            !cfg.is_none(),
            "FaultPlan::new on a zero-fault config; check FaultConfig::is_none first"
        );
        FaultPlan {
            cfg: *cfg,
            seed: splitmix64(cfg.seed ^ trial.wrapping_mul(TRIAL_MIX)),
            hop_draws: Cell::new(0),
            misroute_draws: Cell::new(0),
        }
    }

    /// The configuration this plan was sampled from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Keyed PRF: one uniform `[0,1)` sample per `(stream, key)` pair.
    fn sample(&self, stream: u64, key: u64) -> f64 {
        unit(splitmix64(self.seed ^ splitmix64(stream.wrapping_add(key))))
    }

    /// Is `node` benignly crashed for this whole trial?
    ///
    /// Stateless in the node id — safe to query from liveness closures in
    /// any order without perturbing other streams.
    pub fn is_crashed(&self, node: u32) -> bool {
        self.cfg.crash_rate > 0.0
            && self.sample(STREAM_CRASH, u64::from(node)) < self.cfg.crash_rate
    }

    /// Slow-down penalty in ticks that `node` adds to each delivery it
    /// serves (0 if the node is not slow). Stateless in the node id.
    pub fn slow_penalty(&self, node: u32) -> u64 {
        if self.cfg.slow_rate > 0.0
            && self.sample(STREAM_SLOW, u64::from(node)) < self.cfg.slow_rate
        {
            self.cfg.slow_ticks
        } else {
            0
        }
    }

    /// Draw loss/delay faults for the next hop delivery attempt.
    ///
    /// Consumes one position of the hop stream per call (even when both
    /// rates are zero, so enabling one hop fault class never shifts
    /// another's schedule).
    pub fn draw_hop(&self) -> HopFault {
        let k = self.hop_draws.get();
        self.hop_draws.set(k + 1);
        let raw = splitmix64(self.seed ^ splitmix64(STREAM_HOP.wrapping_add(k)));
        // Two independent sub-samples from one stream position.
        let lost = self.cfg.loss_rate > 0.0
            && unit(splitmix64(raw ^ 0x1)) < self.cfg.loss_rate;
        let delayed = self.cfg.delay_rate > 0.0
            && unit(splitmix64(raw ^ 0x2)) < self.cfg.delay_rate;
        HopFault {
            lost,
            delay_ticks: if delayed { self.cfg.delay_ticks } else { 0 },
        }
    }

    /// Draw a Byzantine misroute decision for the next lookup step.
    ///
    /// Consumes one position of the misroute stream per call. Callers
    /// must only draw when `misroute_rate > 0` is possible for the run —
    /// the Chord protocol draws once per routing step.
    pub fn draw_misroute(&self) -> bool {
        let k = self.misroute_draws.get();
        self.misroute_draws.set(k + 1);
        self.cfg.misroute_rate > 0.0
            && unit(splitmix64(self.seed ^ splitmix64(STREAM_MISROUTE.wrapping_add(k))))
                < self.cfg.misroute_rate
    }

    /// Total hop-stream draws made so far (diagnostic).
    pub fn hop_draws(&self) -> u64 {
        self.hop_draws.get()
    }

    /// Total misroute-stream draws made so far (diagnostic).
    pub fn misroute_draws(&self) -> u64 {
        self.misroute_draws.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_config() -> FaultConfig {
        FaultConfig::none()
            .loss(0.3)
            .delay(0.2, 5)
            .crash(0.1)
            .slow(0.15, 3)
            .misroute(0.25)
            .seed(1234)
    }

    #[test]
    #[should_panic(expected = "zero-fault config")]
    fn refuses_zero_fault_plan() {
        let _ = FaultPlan::new(&FaultConfig::none(), 0);
    }

    #[test]
    fn node_faults_are_order_independent() {
        let cfg = busy_config();
        let a = FaultPlan::new(&cfg, 7);
        let b = FaultPlan::new(&cfg, 7);
        let forward: Vec<_> = (0u32..256).map(|n| a.is_crashed(n)).collect();
        let backward: Vec<_> = (0u32..256).rev().map(|n| b.is_crashed(n)).collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        // Interleaving hop draws does not shift node-level answers.
        let _ = b.draw_hop();
        assert_eq!(a.is_crashed(42), b.is_crashed(42));
        assert_eq!(a.slow_penalty(42), b.slow_penalty(42));
    }

    #[test]
    fn hop_stream_is_reproducible() {
        let cfg = busy_config();
        let a = FaultPlan::new(&cfg, 3);
        let b = FaultPlan::new(&cfg, 3);
        let sa: Vec<_> = (0..512).map(|_| a.draw_hop()).collect();
        let sb: Vec<_> = (0..512).map(|_| b.draw_hop()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.hop_draws(), 512);
    }

    #[test]
    fn trials_decorrelate() {
        let cfg = busy_config();
        let a = FaultPlan::new(&cfg, 0);
        let b = FaultPlan::new(&cfg, 1);
        let sa: Vec<_> = (0..256).map(|_| a.draw_hop()).collect();
        let sb: Vec<_> = (0..256).map(|_| b.draw_hop()).collect();
        assert_ne!(sa, sb);
        let ca: Vec<_> = (0u32..1024).map(|n| a.is_crashed(n)).collect();
        let cb: Vec<_> = (0u32..1024).map(|n| b.is_crashed(n)).collect();
        assert_ne!(ca, cb);
    }

    #[test]
    fn rates_hit_expected_frequencies() {
        let cfg = FaultConfig::none().loss(0.3).crash(0.1).seed(99);
        let plan = FaultPlan::new(&cfg, 0);
        let losses = (0..20_000).filter(|_| plan.draw_hop().lost).count();
        let crashes = (0u32..20_000).filter(|&n| plan.is_crashed(n)).count();
        let loss_freq = losses as f64 / 20_000.0;
        let crash_freq = crashes as f64 / 20_000.0;
        assert!((loss_freq - 0.3).abs() < 0.02, "loss freq {loss_freq}");
        assert!((crash_freq - 0.1).abs() < 0.02, "crash freq {crash_freq}");
    }

    #[test]
    fn disabled_classes_never_fire() {
        let cfg = FaultConfig::none().loss(1.0).seed(5);
        let plan = FaultPlan::new(&cfg, 0);
        for n in 0u32..512 {
            assert!(!plan.is_crashed(n));
            assert_eq!(plan.slow_penalty(n), 0);
        }
        for _ in 0..512 {
            let f = plan.draw_hop();
            assert!(f.lost, "loss_rate = 1.0 drops everything");
            assert_eq!(f.delay_ticks, 0);
            assert!(!plan.draw_misroute());
        }
    }

    #[test]
    fn misroute_stream_independent_of_hop_stream() {
        let cfg = busy_config();
        let a = FaultPlan::new(&cfg, 11);
        let b = FaultPlan::new(&cfg, 11);
        // a interleaves hop draws; b does not. Misroute answers match.
        let ma: Vec<_> = (0..64)
            .map(|_| {
                let _ = a.draw_hop();
                a.draw_misroute()
            })
            .collect();
        let mb: Vec<_> = (0..64).map(|_| b.draw_misroute()).collect();
        assert_eq!(ma, mb);
    }
}
