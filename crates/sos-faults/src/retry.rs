//! Bounded retry with exponential backoff in simulated ticks.

/// Retry policy for hop delivery: up to `max_attempts` tries, with
/// exponential backoff between attempts and a per-route deadline budget
/// measured in simulated ticks.
///
/// [`RetryPolicy::none`] (also `Default`) is the paper-faithful policy:
/// exactly one attempt, no backoff — delivery behaves exactly as the
/// fault-unaware code did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum delivery attempts per hop (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in simulated ticks; doubles on
    /// each further attempt (`backoff_base << (attempt - 2)`).
    pub backoff_base: u64,
    /// Total simulated-tick budget per route; once a route has spent
    /// this many ticks on backoff/delay/slow-down, no further retries
    /// are scheduled.
    pub deadline: u64,
}

impl RetryPolicy {
    /// Single attempt, no backoff — the paper-faithful policy.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, backoff_base: 0, deadline: u64::MAX }
    }

    /// A policy with `max_attempts` tries, `backoff_base` initial
    /// backoff ticks, and a per-route `deadline` tick budget.
    ///
    /// Panics if `max_attempts == 0`.
    pub fn new(max_attempts: u32, backoff_base: u64, deadline: u64) -> Self {
        assert!(max_attempts >= 1, "max_attempts must be >= 1");
        RetryPolicy { max_attempts, backoff_base, deadline }
    }

    /// `true` for the single-attempt policy (no retry behavior at all).
    pub fn is_none(&self) -> bool {
        self.max_attempts <= 1
    }

    /// Backoff in ticks before the given 1-based attempt (0 for the
    /// first attempt, `backoff_base` before the second, doubling after,
    /// saturating on overflow).
    pub fn backoff_before(&self, attempt: u32) -> u64 {
        if attempt <= 1 || self.backoff_base == 0 {
            return 0;
        }
        let doublings = attempt - 2;
        if doublings >= 64 {
            return u64::MAX;
        }
        self.backoff_base.saturating_mul(1u64 << doublings)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_single_attempt() {
        let p = RetryPolicy::none();
        assert!(p.is_none());
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_before(1), 0);
        assert_eq!(RetryPolicy::default(), p);
    }

    #[test]
    fn backoff_doubles() {
        let p = RetryPolicy::new(5, 4, 1_000);
        assert!(!p.is_none());
        assert_eq!(p.backoff_before(1), 0);
        assert_eq!(p.backoff_before(2), 4);
        assert_eq!(p.backoff_before(3), 8);
        assert_eq!(p.backoff_before(4), 16);
        assert_eq!(p.backoff_before(5), 32);
    }

    #[test]
    fn backoff_saturates() {
        let p = RetryPolicy::new(200, u64::MAX / 2, u64::MAX);
        assert_eq!(p.backoff_before(100), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "max_attempts must be >= 1")]
    fn rejects_zero_attempts() {
        let _ = RetryPolicy::new(0, 1, 10);
    }
}
