//! Per-scenario fault rates.

/// Rates for the five independent fault classes, plus the fault seed.
///
/// All rates are probabilities in `[0, 1]`. The builder methods panic on
/// out-of-range values — a fault configuration is experiment input, so a
/// bad value is a programming error, not a runtime condition.
///
/// [`FaultConfig::none`] (also `Default`) is the paper-faithful
/// configuration: all rates zero. Callers must check [`is_none`] and skip
/// building a [`FaultPlan`](crate::FaultPlan) entirely in that case so
/// the zero-fault code path stays bit-identical to the fault-unaware one.
///
/// [`is_none`]: FaultConfig::is_none
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a hop delivery attempt is dropped in flight.
    pub loss_rate: f64,
    /// Probability that a hop delivery attempt is delayed (but arrives).
    pub delay_rate: f64,
    /// Simulated ticks added by one delay fault.
    pub delay_ticks: u64,
    /// Probability that a given node is benignly crashed for the trial.
    pub crash_rate: f64,
    /// Probability that a given node is slow for the whole trial.
    pub slow_rate: f64,
    /// Simulated ticks a slow node adds to each delivery it serves.
    pub slow_ticks: u64,
    /// Probability that a lookup step is misdirected by stale/Byzantine
    /// routing state.
    pub misroute_rate: f64,
    /// Seed for the fault plane, independent of the simulation seed.
    pub seed: u64,
}

impl FaultConfig {
    /// The zero-fault configuration (all rates `0.0`).
    pub fn none() -> Self {
        FaultConfig {
            loss_rate: 0.0,
            delay_rate: 0.0,
            delay_ticks: 4,
            crash_rate: 0.0,
            slow_rate: 0.0,
            slow_ticks: 2,
            misroute_rate: 0.0,
            seed: 0,
        }
    }

    /// `true` when every rate is zero: no [`FaultPlan`](crate::FaultPlan)
    /// should be constructed and delivery must take the fault-unaware
    /// path.
    pub fn is_none(&self) -> bool {
        self.loss_rate == 0.0
            && self.delay_rate == 0.0
            && self.crash_rate == 0.0
            && self.slow_rate == 0.0
            && self.misroute_rate == 0.0
    }

    /// Set the per-attempt message loss probability.
    pub fn loss(mut self, rate: f64) -> Self {
        Self::check_rate("loss_rate", rate);
        self.loss_rate = rate;
        self
    }

    /// Set the per-attempt message delay probability and its cost.
    pub fn delay(mut self, rate: f64, ticks: u64) -> Self {
        Self::check_rate("delay_rate", rate);
        self.delay_rate = rate;
        self.delay_ticks = ticks;
        self
    }

    /// Set the per-node benign crash probability.
    pub fn crash(mut self, rate: f64) -> Self {
        Self::check_rate("crash_rate", rate);
        self.crash_rate = rate;
        self
    }

    /// Set the per-node slow-down probability and its per-delivery cost.
    pub fn slow(mut self, rate: f64, ticks: u64) -> Self {
        Self::check_rate("slow_rate", rate);
        self.slow_rate = rate;
        self.slow_ticks = ticks;
        self
    }

    /// Set the per-lookup-step Byzantine misroute probability.
    pub fn misroute(mut self, rate: f64) -> Self {
        Self::check_rate("misroute_rate", rate);
        self.misroute_rate = rate;
        self
    }

    /// Set the fault-plane seed (independent of the simulation seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn check_rate(name: &str, rate: f64) {
        assert!(
            (0.0..=1.0).contains(&rate) && rate.is_finite(),
            "{name} must be in [0, 1], got {rate}"
        );
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultConfig::none().is_none());
        assert!(FaultConfig::default().is_none());
        // A seed alone does not make a fault plane.
        assert!(FaultConfig::none().seed(42).is_none());
    }

    #[test]
    fn any_rate_makes_it_some() {
        assert!(!FaultConfig::none().loss(0.1).is_none());
        assert!(!FaultConfig::none().delay(0.1, 3).is_none());
        assert!(!FaultConfig::none().crash(0.1).is_none());
        assert!(!FaultConfig::none().slow(0.1, 2).is_none());
        assert!(!FaultConfig::none().misroute(0.1).is_none());
    }

    #[test]
    #[should_panic(expected = "loss_rate must be in [0, 1]")]
    fn rejects_out_of_range_rate() {
        let _ = FaultConfig::none().loss(1.5);
    }

    #[test]
    #[should_panic(expected = "crash_rate must be in [0, 1]")]
    fn rejects_nan_rate() {
        let _ = FaultConfig::none().crash(f64::NAN);
    }
}
