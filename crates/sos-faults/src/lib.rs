//! Deterministic, seedable fault injection for the SOS simulation stack.
//!
//! The paper's model is fault-free: a hop fails only because its
//! destination (or, on Chord, an intermediate) is *compromised*. Real
//! substrates also suffer benign faults — lossy links, slow or crashed
//! nodes, stale (Byzantine) routing state — and those change resilience
//! curves in ways an attacker cannot: benign faults are *transient* or
//! at least *apolitical*, so retries and fallback routes recover them,
//! while compromises are not recoverable by persistence alone.
//!
//! This crate is the fault *plane*: it decides, deterministically from a
//! seed, which faults strike where. It deliberately knows nothing about
//! overlays, transports, or simulations — nodes are raw `u32` ids — so it
//! sits below `sos-overlay` in the dependency graph and can be consulted
//! from transport hop delivery and from every Chord protocol lookup step.
//!
//! Three pieces:
//!
//! - [`FaultConfig`] — per-scenario rates for the five fault classes
//!   (message loss, message delay, node crash, node slow-down, Byzantine
//!   misroute) plus a dedicated fault seed. [`FaultConfig::none`] is the
//!   paper-faithful zero-fault configuration; code that receives it must
//!   not build a [`FaultPlan`] at all, which is how zero-fault runs stay
//!   bit-identical to the pre-fault code path.
//! - [`FaultPlan`] — one sampled fault schedule for one trial. Node-level
//!   faults (crash, slow-down) are stateless functions of the node id, so
//!   query order is irrelevant; hop-level faults (loss, delay, misroute)
//!   are drawn from a counted stream, deterministic for a fixed call
//!   sequence. The plan's randomness derives solely from
//!   `FaultConfig::seed ^ trial` and never touches the simulation's own
//!   RNG streams.
//! - [`RetryPolicy`] — bounded retries with exponential backoff measured
//!   in simulated ticks and a per-route deadline budget, applied by
//!   `Transport::deliver_with` in `sos-overlay`.
//!
//! [`HopIncident`] and [`Fallback`] are the shared vocabulary for
//! reporting what the fault plane did to a hop, so `sos-sim` can convert
//! incidents into `sos-observe` events without re-deriving them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod plan;
mod retry;

pub use config::FaultConfig;
pub use plan::{splitmix64, unit, FaultPlan, HopFault};
pub use retry::RetryPolicy;

/// What the fault plane (or the retry loop around it) did to one hop.
///
/// Produced by `Transport::deliver_with` in `sos-overlay` and surfaced
/// through `sos-sim::routing` so traced runs can show *why* a route
/// survived or died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopIncident {
    /// The message for this attempt was dropped in flight.
    Loss {
        /// 1-based delivery attempt that suffered the drop.
        attempt: u32,
    },
    /// The message was delayed by `ticks` simulated ticks but arrived.
    Delay {
        /// Simulated ticks added to the hop latency.
        ticks: u64,
    },
    /// The hop destination is benignly crashed; no retry can help.
    CrashedDestination,
    /// Every substrate route to the destination runs through crashed
    /// nodes (Chord/Protocol lookups found no alive path).
    CrashedRoute,
    /// The destination is alive but slow; service added `ticks` ticks.
    Slow {
        /// Simulated ticks of slow-down penalty.
        ticks: u64,
    },
    /// A Byzantine intermediate misdirected the lookup on this attempt.
    Misroute {
        /// 1-based delivery attempt that was misrouted.
        attempt: u32,
    },
    /// The retry loop scheduled another attempt after backing off.
    Retry {
        /// 1-based attempt number being started.
        attempt: u32,
        /// Backoff ticks waited before this attempt.
        backoff: u64,
    },
    /// The per-route deadline budget ran out before the retries did.
    DeadlineExhausted {
        /// Simulated ticks accumulated when the budget was exceeded.
        ticks: u64,
    },
}

impl HopIncident {
    /// `true` for incidents that are injected faults (as opposed to the
    /// retry loop's own bookkeeping).
    pub fn is_fault(&self) -> bool {
        !matches!(
            self,
            HopIncident::Retry { .. } | HopIncident::DeadlineExhausted { .. }
        )
    }
}

/// Graceful-degradation stage taken after a hop exhausted its retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// Abandoned finger-table routing and walked successor lists.
    SuccessorWalk,
    /// Abandoned this next-layer neighbor and tried an alternate one.
    AlternateNeighbor,
}

impl Fallback {
    /// Stable label used in event payloads and CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            Fallback::SuccessorWalk => "successor-walk",
            Fallback::AlternateNeighbor => "alternate-neighbor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incident_fault_classification() {
        assert!(HopIncident::Loss { attempt: 1 }.is_fault());
        assert!(HopIncident::Delay { ticks: 3 }.is_fault());
        assert!(HopIncident::CrashedDestination.is_fault());
        assert!(HopIncident::CrashedRoute.is_fault());
        assert!(HopIncident::Slow { ticks: 2 }.is_fault());
        assert!(HopIncident::Misroute { attempt: 2 }.is_fault());
        assert!(!HopIncident::Retry { attempt: 2, backoff: 1 }.is_fault());
        assert!(!HopIncident::DeadlineExhausted { ticks: 9 }.is_fault());
    }

    #[test]
    fn fallback_labels_are_distinct() {
        assert_ne!(
            Fallback::SuccessorWalk.label(),
            Fallback::AlternateNeighbor.label()
        );
    }
}
