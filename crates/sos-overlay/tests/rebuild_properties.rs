//! Property tests for the zero-rebuild construction paths: rebuilding
//! a dirty structure in place (`build_into`) must be observationally
//! identical to building a fresh one — same topology, same statuses,
//! same RNG consumption — across randomized scenarios and ring sizes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sos_core::{MappingDegree, Scenario, SystemParams};
use sos_overlay::{ChordRing, NodeId, NodeStatus, Overlay};

fn scenario(big_n: u64, sos: u64, layers: usize, mapping: MappingDegree) -> Scenario {
    Scenario::builder()
        .system(SystemParams::new(big_n, sos, 0.5).unwrap())
        .layers(layers)
        .mapping(mapping)
        .filters(6)
        .build()
        .unwrap()
}

/// Compares every public observable of two overlays.
fn assert_overlays_match(fresh: &Overlay, reused: &Overlay) {
    assert_eq!(fresh.overlay_node_count(), reused.overlay_node_count());
    assert_eq!(fresh.layer_count(), reused.layer_count());
    assert_eq!(fresh.total_bad(), reused.total_bad());
    for layer in 1..=fresh.layer_count() {
        assert_eq!(fresh.layer_members(layer), reused.layer_members(layer));
    }
    for id in fresh.overlay_ids() {
        assert_eq!(fresh.role(id), reused.role(id));
        assert_eq!(fresh.status(id), reused.status(id));
        assert_eq!(fresh.neighbors(id), reused.neighbors(id));
        assert_eq!(fresh.is_good(id), reused.is_good(id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Overlay::build_into` on an arbitrarily dirty overlay (different
    /// scenario shape, attack damage) equals a fresh `Overlay::build`
    /// bit for bit, including the number of RNG draws consumed.
    #[test]
    fn overlay_rebuild_matches_fresh_build(
        seed in 0u64..10_000,
        big_n in 300u64..1_500,
        sos in 24u64..80,
        layers in 2usize..5,
        mapping_k in 1u64..6,
        dirty_seed in 0u64..10_000,
    ) {
        let target = scenario(big_n, sos, layers, MappingDegree::OneTo(mapping_k));
        // Dirty state: an overlay of a *different* shape with damage.
        let dirty_scenario = scenario(500, 40, 3, MappingDegree::ONE_TO_ONE);
        let mut dirty_rng = StdRng::seed_from_u64(dirty_seed);
        let mut reused = Overlay::build(&dirty_scenario, &mut dirty_rng);
        let victims: Vec<NodeId> = reused.overlay_ids().take(25).collect();
        for v in victims {
            reused.set_status(v, NodeStatus::Congested);
        }

        let mut fresh_rng = StdRng::seed_from_u64(seed);
        let mut reuse_rng = StdRng::seed_from_u64(seed);
        let fresh = Overlay::build(&target, &mut fresh_rng);
        reused.build_into(&target, &mut reuse_rng);

        assert_overlays_match(&fresh, &reused);
        // Same draw count: the streams stay aligned after the build.
        prop_assert_eq!(fresh_rng.gen::<u64>(), reuse_rng.gen::<u64>());
    }

    /// `ChordRing::build_into` on a dirty ring equals a fresh build:
    /// same ids, same lookups from every member, same RNG consumption.
    #[test]
    fn ring_rebuild_matches_fresh_build(
        seed in 0u64..10_000,
        members_n in 1u32..400,
        dirty_n in 1u32..400,
    ) {
        let members: Vec<NodeId> = (0..members_n).map(NodeId).collect();
        let mut reused = {
            let dirty: Vec<NodeId> = (500..500 + dirty_n).map(NodeId).collect();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1_57);
            ChordRing::build(&mut rng, &dirty)
        };

        let mut fresh_rng = StdRng::seed_from_u64(seed);
        let mut reuse_rng = StdRng::seed_from_u64(seed);
        let fresh = ChordRing::build(&mut fresh_rng, &members);
        reused.build_into(&mut reuse_rng, &members);

        prop_assert_eq!(fresh.len(), reused.len());
        let mut probe = StdRng::seed_from_u64(seed ^ 0xBEEF);
        for &m in &members {
            prop_assert_eq!(fresh.id_of(m), reused.id_of(m));
            prop_assert_eq!(fresh.successor(m), reused.successor(m));
            let key = probe.gen::<u64>();
            prop_assert_eq!(fresh.lookup(m, key), reused.lookup(m, key));
        }
        prop_assert_eq!(fresh_rng.gen::<u64>(), reuse_rng.gen::<u64>());
    }

    /// The engine's *delta* reuse path: transitioning a built (and
    /// attack-damaged) overlay between two structure-preserving knob
    /// settings via `rebuild_neighbors_only` equals a fresh build of the
    /// target scenario bit for bit — in both transition orders, with
    /// the same RNG consumption.
    #[test]
    fn delta_rebuild_matches_fresh_across_knob_pairs(
        seed in 0u64..10_000,
        big_n in 300u64..1_200,
        sos in 24u64..64,
        layers in 2usize..5,
        k1 in 1u64..6,
        k2 in 1u64..6,
    ) {
        let a = scenario(big_n, sos, layers, MappingDegree::OneTo(k1));
        let b = scenario(big_n, sos, layers, MappingDegree::OneTo(k2));
        for (from, to) in [(&a, &b), (&b, &a)] {
            let mut reused = Overlay::build(from, &mut StdRng::seed_from_u64(seed));
            // Damage from a finished trial must not leak through.
            let victims: Vec<NodeId> = reused.overlay_ids().take(20).collect();
            for v in victims {
                reused.set_status(v, NodeStatus::Congested);
            }
            prop_assert!(reused.structure_matches(to));

            let mut fresh_rng = StdRng::seed_from_u64(seed);
            let mut reuse_rng = StdRng::seed_from_u64(seed);
            let fresh = Overlay::build(to, &mut fresh_rng);
            reused.rebuild_neighbors_only(to, &mut reuse_rng);

            assert_overlays_match(&fresh, &reused);
            prop_assert_eq!(fresh_rng.gen::<u64>(), reuse_rng.gen::<u64>());
        }
    }

    /// The engine's *exact* reuse path: a memo hit keeps the built
    /// overlay and only calls `reset_statuses`, which must equal a
    /// fresh build from the same seed once attack damage is cleared.
    #[test]
    fn status_reset_matches_fresh_build(
        seed in 0u64..10_000,
        big_n in 300u64..1_200,
        sos in 24u64..64,
        layers in 2usize..5,
        mapping_k in 1u64..6,
        damage in 0usize..60,
    ) {
        let s = scenario(big_n, sos, layers, MappingDegree::OneTo(mapping_k));
        let mut reused = Overlay::build(&s, &mut StdRng::seed_from_u64(seed));
        let victims: Vec<NodeId> = reused.overlay_ids().take(damage).collect();
        for v in victims {
            reused.set_status(v, NodeStatus::Broken);
        }
        reused.reset_statuses();
        let fresh = Overlay::build(&s, &mut StdRng::seed_from_u64(seed));
        assert_overlays_match(&fresh, &reused);
    }
}
