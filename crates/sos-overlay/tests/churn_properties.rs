//! Property tests for churn invariants:
//!
//! * node counts are conserved by churn steps (the overlay never gains
//!   or loses nodes; with promotion the SOS population is conserved
//!   too, without it SOS losses are exactly the `SosLost` events);
//! * after a stabilize round, no dead node is retained in any alive
//!   node's successor list on the protocol ring.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sos_core::{MappingDegree, Scenario, SystemParams};
use sos_overlay::churn::{ChurnEvent, ChurnModel};
use sos_overlay::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
use sos_overlay::{NodeId, Overlay, Role};

fn build_overlay(seed: u64) -> Overlay {
    let scenario = Scenario::builder()
        .system(SystemParams::new(400, 48, 0.5).unwrap())
        .layers(3)
        .mapping(MappingDegree::OneTo(2))
        .filters(8)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    Overlay::build(&scenario, &mut rng)
}

fn sos_population(o: &Overlay) -> usize {
    (1..=o.layer_count()).map(|l| o.layer_members(l).len()).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Churn conserves the overlay node population, and with promotion
    /// enabled conserves the SOS population exactly; without promotion
    /// the SOS population shrinks by exactly the number of `SosLost`
    /// events. Every overlay node always has exactly one role.
    #[test]
    fn churn_conserves_node_counts(
        seed in 0u64..10_000,
        rate in 0.0f64..0.3,
        promote_bit in 0u8..2,
        steps in 1usize..8,
    ) {
        let promote = promote_bit == 1;
        let mut o = build_overlay(seed);
        let nodes_before = o.overlay_node_count();
        let sos_before = sos_population(&o);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let model = ChurnModel::new(rate, promote);
        let mut sos_lost = 0usize;
        for _ in 0..steps {
            for e in model.step(&mut o, &mut rng) {
                if matches!(e, ChurnEvent::SosLost { .. }) {
                    sos_lost += 1;
                }
            }
        }
        prop_assert_eq!(o.overlay_node_count(), nodes_before);
        if promote {
            prop_assert_eq!(sos_population(&o), sos_before);
            prop_assert_eq!(sos_lost, 0);
        } else {
            prop_assert_eq!(sos_population(&o), sos_before - sos_lost);
        }
        // Role bookkeeping stays consistent: each layer member is an Sos
        // node of that layer, and each claims exactly one layer.
        for layer in 1..=o.layer_count() {
            for &m in o.layer_members(layer) {
                prop_assert_eq!(o.role(m), Role::Sos { layer: layer as u16 });
                prop_assert_eq!(o.layer_of(m), Some(layer));
            }
        }
    }
}

fn build_protocol(n: usize, seed: u64) -> (ChordProtocol, sos_des::Scheduler<sos_overlay::MaintenanceEvent>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut proto = ChordProtocol::new(ProtocolConfig::default());
    let mut sched = sos_des::Scheduler::new();
    let mut ids: Vec<u64> = Vec::new();
    for i in 0..n {
        let mut id = rng.gen::<u64>();
        while ids.contains(&id) {
            id = rng.gen::<u64>();
        }
        ids.push(id);
        if i == 0 {
            proto.bootstrap(id, NodeId(i as u32), &mut sched);
        } else {
            let via = ids[rng.gen_range(0..i)];
            proto.join(id, NodeId(i as u32), via, &mut sched);
            let now = sched.now();
            run_maintenance(&mut proto, &mut sched, now + 25);
        }
    }
    let now = sched.now();
    run_maintenance(&mut proto, &mut sched, now + 2_000);
    (proto, sched, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// After a full stabilize round following failures, no alive node
    /// retains a dead node in its successor list: stabilize both skips
    /// dead heads *and* filters dead entries when copying the
    /// successor's list forward.
    #[test]
    fn stabilize_purges_dead_successor_entries(
        seed in 0u64..10_000,
        kill_fraction in 0.1f64..0.3,
    ) {
        let n = 48usize;
        let (mut proto, mut sched, ids) = build_protocol(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let kills = ((n as f64) * kill_fraction) as usize;
        let mut killed = std::collections::HashSet::new();
        while killed.len() < kills {
            let victim = ids[rng.gen_range(0..ids.len())];
            if killed.insert(victim) {
                proto.kill(victim);
            }
        }
        // One full stabilize round for every node (interval is 10 ticks;
        // give a couple of rounds so rescue paths also settle).
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 50);
        for id in proto.alive_ids() {
            let list = proto.successor_list_of(id).unwrap();
            prop_assert!(!list.is_empty(), "alive node {id} has an empty list");
            for &entry in list {
                prop_assert!(
                    proto.is_alive(entry),
                    "alive node {} retains dead successor {} after stabilize",
                    id,
                    entry
                );
            }
        }
    }
}
