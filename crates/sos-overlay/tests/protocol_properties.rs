//! Property-based tests for the Chord substrate: the oracle ring and
//! the maintenance protocol under random join/kill schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sos_des::Scheduler;
use sos_overlay::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
use sos_overlay::{ChordRing, NodeId};
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oracle_ring_lookup_always_matches_naive(
        n in 2u32..150,
        seed in 0u64..1_000,
        keys in prop::collection::vec(0u64..u64::MAX, 1..20),
    ) {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let ring = ChordRing::build(&mut rng, &members);
        for key in keys {
            let from = NodeId(rng.gen_range(0..n));
            let out = ring.lookup(from, key);
            prop_assert_eq!(out.owner, ring.owner_of(key));
            // Path length stays within the Chord bound with slack.
            prop_assert!(out.hops() <= 2 * 64);
        }
    }

    #[test]
    fn oracle_ring_survives_random_failures(
        n in 20u32..120,
        seed in 0u64..1_000,
        dead_fraction in 0.0f64..0.4,
    ) {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let ring = ChordRing::build(&mut rng, &members);
        let dead: HashSet<NodeId> = members
            .iter()
            .filter(|_| rng.gen::<f64>() < dead_fraction)
            .copied()
            .collect();
        for _ in 0..10 {
            let key = rng.gen::<u64>();
            let owner = ring.owner_of(key);
            let alive_sources: Vec<NodeId> = members
                .iter()
                .filter(|m| !dead.contains(m))
                .copied()
                .collect();
            prop_assume!(!alive_sources.is_empty());
            let from = alive_sources[rng.gen_range(0..alive_sources.len())];
            let result = ring.lookup_avoiding(from, key, |x| !dead.contains(&x));
            if dead.contains(&owner) {
                prop_assert!(result.is_none(), "dead owner cannot be found");
            } else if let Some(out) = result {
                // When a route exists it must be correct and clean.
                prop_assert_eq!(out.owner, owner);
                prop_assert!(out.path.iter().all(|p| !dead.contains(p)));
            }
            // A missing route is acceptable only under heavy failure
            // (successor-list exhaustion); correctness is what we pin.
        }
    }

    #[test]
    fn protocol_converges_after_random_schedule(
        n in 4usize..40,
        kills in 0usize..8,
        seed in 0u64..500,
    ) {
        prop_assume!(kills < n / 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proto = ChordProtocol::new(ProtocolConfig::default());
        let mut sched = Scheduler::new();
        let mut ids: Vec<u64> = Vec::new();
        let mut used = HashSet::new();
        for i in 0..n {
            let mut id = rng.gen::<u64>();
            while !used.insert(id) {
                id = rng.gen::<u64>();
            }
            ids.push(id);
            if i == 0 {
                proto.bootstrap(id, NodeId(i as u32), &mut sched);
            } else {
                let via = ids[rng.gen_range(0..i)];
                proto.join(id, NodeId(i as u32), via, &mut sched);
                let now = sched.now();
                run_maintenance(&mut proto, &mut sched, now + 25);
            }
        }
        // Random kills.
        let mut killed = HashSet::new();
        while killed.len() < kills {
            let victim = ids[rng.gen_range(0..ids.len())];
            if killed.insert(victim) {
                proto.kill(victim);
            }
        }
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 5_000);
        prop_assert!(
            proto.is_converged(),
            "fraction = {}",
            proto.convergence_fraction()
        );
        // Converged lookups match the oracle from every alive node.
        let survivors: Vec<u64> = ids
            .iter()
            .filter(|id| !killed.contains(id))
            .copied()
            .collect();
        for _ in 0..5 {
            let key = rng.gen::<u64>();
            let from = survivors[rng.gen_range(0..survivors.len())];
            prop_assert_eq!(proto.lookup(from, key), proto.oracle_successor(key));
        }
    }
}
