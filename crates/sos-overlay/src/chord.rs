//! A Chord distributed hash table (Stoica et al., SIGCOMM 2001).
//!
//! The original SOS architecture routes between overlay layers over
//! Chord: a beacon is "the node whose Chord identifier owns the hash of
//! the target's name", and every inter-layer message traverses `O(log N)`
//! Chord hops. The ICDCS analysis abstracts each traversal into a single
//! logical hop; this module restores the substrate so the simulator can
//! also measure what the abstraction hides (compromised *intermediate*
//! hops — the `ablation-chord` experiment).
//!
//! The implementation is a faithful, simulation-grade Chord:
//!
//! * 64-bit circular identifier space,
//! * per-node finger tables (`finger[k] = successor(id + 2^k)`),
//! * successor lists for fault tolerance,
//! * iterative greedy lookup via closest-preceding-finger,
//! * failure-aware lookup that routes around dead nodes using fingers
//!   and successor lists,
//! * `join` / `leave` membership changes.
//!
//! Lookups are performed centrally over the ring state (this is a
//! simulator, not a networked implementation), but only ever use the
//! state a real Chord node would have: its own fingers and successor
//! list.

use crate::bitset::NodeBitSet;
use crate::node::NodeId;
use rand::Rng;
use std::collections::HashSet;

/// Bits in the identifier space (and maximum finger-table size).
pub const ID_BITS: usize = 64;

/// Successor-list length (Chord recommends `Ω(log N)`; 16 covers the
/// simulation scales used here).
pub const SUCCESSOR_LIST_LEN: usize = 16;

/// Result of a successful lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The node owning the key (the key's successor on the ring).
    pub owner: NodeId,
    /// Nodes visited, starting with the querying node and ending with
    /// `owner`.
    pub path: Vec<NodeId>,
}

impl LookupOutcome {
    /// Number of hops taken (edges, i.e. `path.len() - 1`).
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// A Chord ring over a set of overlay nodes.
#[derive(Debug, Clone)]
pub struct ChordRing {
    /// Ring positions sorted by identifier.
    ids: Vec<u64>,
    /// `members[pos]` is the overlay node at ring position `pos`.
    members: Vec<NodeId>,
    /// `position_of[node.index()]` = ring position, `u32::MAX` when the
    /// node is not on the ring (dense map: members are overlay ids).
    position_of: Vec<u32>,
    /// `fingers[pos][k]` = position of `successor(ids[pos] + 2^k)`.
    fingers: Vec<Vec<usize>>,
    /// `successors[pos]` = the next `SUCCESSOR_LIST_LEN` positions.
    successors: Vec<Vec<usize>>,
    /// `steps[pos]` = the distinct clockwise position-offsets of every
    /// finger and successor-list entry of `pos`, sorted ascending. Ids
    /// ascend with ring position, so the clockwise distance to a key
    /// strictly decreases along the arc from `pos` to the key's owner:
    /// the greedy step (distance-argmin over alive candidates) is the
    /// alive entry with the largest offset not past the owner, found by
    /// scanning this table backward from the owner's offset.
    steps: Vec<Vec<u32>>,
    /// Identifier-draw scratch reused by [`ChordRing::build_into`].
    pairs: Vec<(u64, NodeId)>,
}

/// Draws one distinct uniformly random 64-bit identifier per member into
/// `pairs`, sorted ascending by identifier.
///
/// One draw per member, then a sort; identifier collisions among `n`
/// uniform `u64` draws have probability ≈ `n²/2⁶⁵` (≈ 5·10⁻¹² at
/// n = 10⁴), but determinism demands a defined resolution: any id equal
/// to its sorted predecessor is re-rolled and the sort repeated until
/// all are distinct. [`ChordRing::build_into`] and
/// [`ChordRing::build_reference`] share this helper so their RNG
/// consumption stays draw-for-draw identical.
fn draw_ring_ids<R: Rng + ?Sized>(rng: &mut R, members: &[NodeId], pairs: &mut Vec<(u64, NodeId)>) {
    pairs.clear();
    pairs.reserve(members.len());
    for &m in members {
        pairs.push((rng.gen::<u64>(), m));
    }
    pairs.sort_unstable_by_key(|&(id, _)| id);
    loop {
        let mut collided = false;
        for i in 1..pairs.len() {
            if pairs[i].0 == pairs[i - 1].0 {
                pairs[i].0 = rng.gen::<u64>();
                collided = true;
            }
        }
        if !collided {
            break;
        }
        pairs.sort_unstable_by_key(|&(id, _)| id);
    }
}

impl ChordRing {
    /// Builds a ring over `members`, assigning each a distinct uniformly
    /// random 64-bit identifier drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn build<R: Rng + ?Sized>(rng: &mut R, members: &[NodeId]) -> Self {
        let mut ring = ChordRing {
            ids: Vec::new(),
            members: Vec::new(),
            position_of: Vec::new(),
            fingers: Vec::new(),
            successors: Vec::new(),
            steps: Vec::new(),
            pairs: Vec::new(),
        };
        ring.build_into(rng, members);
        ring
    }

    /// Rebuilds this ring in place over `members`, reusing every existing
    /// allocation (identifier table, finger tables, successor lists,
    /// draw scratch).
    ///
    /// Consumes the RNG identically to [`ChordRing::build`], so a reused
    /// ring is indistinguishable from a freshly built one at the same RNG
    /// state — the zero-rebuild trial engine relies on this.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn build_into<R: Rng + ?Sized>(&mut self, rng: &mut R, members: &[NodeId]) {
        assert!(!members.is_empty(), "a Chord ring needs at least one node");

        draw_ring_ids(rng, members, &mut self.pairs);

        self.ids.clear();
        self.ids.extend(self.pairs.iter().map(|&(id, _)| id));
        self.members.clear();
        self.members.extend(self.pairs.iter().map(|&(_, m)| m));
        self.rebuild_tables();
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the ring is empty (never true for a built ring, but part
    /// of the conventional pair with [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Ring position of `node`, if it is on the ring.
    #[inline]
    fn position(&self, node: NodeId) -> Option<usize> {
        self.position_of
            .get(node.index())
            .and_then(|&p| (p != u32::MAX).then_some(p as usize))
    }

    /// The Chord identifier of a member.
    pub fn id_of(&self, node: NodeId) -> Option<u64> {
        self.position(node).map(|p| self.ids[p])
    }

    /// Whether `node` is on the ring.
    pub fn contains(&self, node: NodeId) -> bool {
        self.position(node).is_some()
    }

    /// The node owning `key` — the first node whose identifier is `>=
    /// key` (wrapping), found by direct successor scan. This is the
    /// correctness oracle for [`lookup`](Self::lookup).
    pub fn owner_of(&self, key: u64) -> NodeId {
        self.members[self.successor_position(key)]
    }

    /// The immediate ring successor of a member node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on the ring.
    pub fn successor(&self, node: NodeId) -> NodeId {
        let pos = self
            .position(node)
            .unwrap_or_else(|| panic!("{node} is not on the ring"));
        self.members[self.successors[pos][0]]
    }

    /// Iterative Chord lookup of `key` starting at `from`, assuming all
    /// nodes are alive.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not on the ring.
    pub fn lookup(&self, from: NodeId, key: u64) -> LookupOutcome {
        self.lookup_avoiding(from, key, |_| true)
            .expect("lookup with all nodes alive cannot fail")
    }

    /// Failure-aware lookup: only routes through nodes for which
    /// `is_alive` returns `true` (the starting node is assumed alive —
    /// it is the one querying). Returns `None` when every remaining
    /// route is blocked or the key's owner itself is dead.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not on the ring.
    pub fn lookup_avoiding<F>(&self, from: NodeId, key: u64, is_alive: F) -> Option<LookupOutcome>
    where
        F: Fn(NodeId) -> bool,
    {
        let mut pos = self
            .position(from)
            .unwrap_or_else(|| panic!("{from} is not on the ring"));
        let owner_pos = self.successor_position(key);
        let owner = self.members[owner_pos];
        if !is_alive(owner) {
            return None;
        }
        let mut path = vec![self.members[pos]];
        // Greedy routing strictly shrinks clockwise distance to the key,
        // so n hops is a hard upper bound; the explicit cap also guards
        // the degenerate everything-dead cases.
        let max_hops = self.len() + SUCCESSOR_LIST_LEN + 1;
        for _ in 0..max_hops {
            if pos == owner_pos {
                return Some(LookupOutcome { owner, path });
            }
            let next = self.best_alive_step(pos, owner_pos, &is_alive)?;
            debug_assert_ne!(next, pos, "routing must make progress");
            pos = next;
            path.push(self.members[pos]);
        }
        None
    }

    /// Allocation-free variant of [`ChordRing::lookup_avoiding`] for hot
    /// paths that only need the owner and hop count: returns
    /// `(owner, hops)` without materializing the visited path. Takes the
    /// same routing decisions, so `lookup_avoiding_hops(..) ==
    /// lookup_avoiding(..).map(|o| (o.owner, o.hops()))`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not on the ring.
    pub fn lookup_avoiding_hops<F>(
        &self,
        from: NodeId,
        key: u64,
        is_alive: F,
    ) -> Option<(NodeId, usize)>
    where
        F: Fn(NodeId) -> bool,
    {
        let mut pos = self
            .position(from)
            .unwrap_or_else(|| panic!("{from} is not on the ring"));
        let owner_pos = self.successor_position(key);
        let owner = self.members[owner_pos];
        if !is_alive(owner) {
            return None;
        }
        let max_hops = self.len() + SUCCESSOR_LIST_LEN + 1;
        for hops in 0..max_hops {
            if pos == owner_pos {
                return Some((owner, hops));
            }
            let next = self.best_alive_step(pos, owner_pos, &is_alive)?;
            debug_assert_ne!(next, pos, "routing must make progress");
            pos = next;
        }
        None
    }

    /// Degraded-mode lookup: ignore finger tables entirely and walk
    /// successor lists clockwise from `from` until the key's owner is
    /// reached. O(n) hops instead of O(log n), but each step needs only
    /// one alive entry in the local successor list — the
    /// graceful-degradation fallback when greedy finger routing is
    /// blocked. Returns `None` when the owner is dead or a gap of
    /// `SUCCESSOR_LIST_LEN` consecutive dead nodes severs the walk.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not on the ring.
    pub fn successor_walk<F>(&self, from: NodeId, key: u64, is_alive: F) -> Option<LookupOutcome>
    where
        F: Fn(NodeId) -> bool,
    {
        let mut pos = self
            .position(from)
            .unwrap_or_else(|| panic!("{from} is not on the ring"));
        let owner_pos = self.successor_position(key);
        let owner = self.members[owner_pos];
        if !is_alive(owner) {
            return None;
        }
        let mut path = vec![self.members[pos]];
        // Each step advances at least one position clockwise, so n steps
        // suffice to come full circle.
        for _ in 0..self.len() {
            if pos == owner_pos {
                return Some(LookupOutcome { owner, path });
            }
            // First alive successor; because the owner is alive, the
            // walk can never step past it (the entry *is* the owner when
            // every position in between is dead).
            let next = self.successors[pos]
                .iter()
                .copied()
                .find(|&s| s == owner_pos || is_alive(self.members[s]))?;
            pos = next;
            path.push(self.members[pos]);
        }
        None
    }

    /// Allocation-free variant of [`ChordRing::successor_walk`] for hot
    /// paths that only need the owner and hop count.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not on the ring.
    pub fn successor_walk_hops<F>(
        &self,
        from: NodeId,
        key: u64,
        is_alive: F,
    ) -> Option<(NodeId, usize)>
    where
        F: Fn(NodeId) -> bool,
    {
        let mut pos = self
            .position(from)
            .unwrap_or_else(|| panic!("{from} is not on the ring"));
        let owner_pos = self.successor_position(key);
        let owner = self.members[owner_pos];
        if !is_alive(owner) {
            return None;
        }
        for hops in 0..self.len() {
            if pos == owner_pos {
                return Some((owner, hops));
            }
            let next = self.successors[pos]
                .iter()
                .copied()
                .find(|&s| s == owner_pos || is_alive(self.members[s]))?;
            pos = next;
        }
        None
    }

    /// Adds a node with a fresh random identifier and rebuilds routing
    /// state (the simulation-grade equivalent of join + stabilization).
    ///
    /// # Panics
    ///
    /// Panics if `node` is already on the ring.
    pub fn join<R: Rng + ?Sized>(&mut self, rng: &mut R, node: NodeId) {
        assert!(!self.contains(node), "{node} already joined");
        let mut id = rng.gen::<u64>();
        while self.ids.binary_search(&id).is_ok() {
            id = rng.gen::<u64>();
        }
        let insert_at = self.ids.partition_point(|&x| x < id);
        self.ids.insert(insert_at, id);
        self.members.insert(insert_at, node);
        self.rebuild_tables();
    }

    /// Removes a node and rebuilds routing state.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on the ring or is the last node.
    pub fn leave(&mut self, node: NodeId) {
        let pos = self
            .position(node)
            .unwrap_or_else(|| panic!("{node} is not on the ring"));
        assert!(self.len() > 1, "cannot remove the last ring node");
        self.ids.remove(pos);
        self.members.remove(pos);
        self.rebuild_tables();
    }

    /// Position of the first node with identifier `>= key` (wrapping).
    fn successor_position(&self, key: u64) -> usize {
        successor_position_in(&self.ids, key)
    }

    /// The best alive next hop from `pos` toward `key` (whose owner is
    /// at `owner_pos`).
    ///
    /// Classic Chord greedy step: jump straight to the key's owner if it
    /// is in our routing state; otherwise move to the alive finger or
    /// successor-list entry that is the closest *preceding* node of the
    /// key (strictly closer than we are). The clockwise distance to the
    /// key strictly decreases every step, which guarantees termination.
    ///
    /// Resolved via the precomputed offset table: ids ascend with ring
    /// position, so candidates in the arc `(pos, owner_pos]` are exactly
    /// those strictly closer to the key than `pos` (the owner counted by
    /// fiat), and distance decreases with offset along that arc — the
    /// distance-argmin over alive candidates is the alive entry with the
    /// largest offset not past the owner. A backward scan finds it in a
    /// handful of probes instead of a distance computation per entry.
    fn best_alive_step<F>(&self, pos: usize, owner_pos: usize, is_alive: &F) -> Option<usize>
    where
        F: Fn(NodeId) -> bool,
    {
        let n = self.len();
        let owner_off = (owner_pos + n - pos) % n;
        let offs = &self.steps[pos];
        let hi = offs.partition_point(|&o| (o as usize) <= owner_off);
        for &o in offs[..hi].iter().rev() {
            let mut cand = pos + o as usize;
            if cand >= n {
                cand -= n;
            }
            if is_alive(self.members[cand]) {
                return Some(cand);
            }
        }
        None
    }

    /// Rebuilds position, successor-list and finger-table state from
    /// `ids`/`members`, reusing existing allocations.
    ///
    /// Finger tables are built level-batched over the sorted id array
    /// (structure-of-arrays order): for a fixed finger level `k`, the
    /// targets `ids[p] + 2^k` are themselves sorted in `p` (up to one
    /// wrap split), so one monotone two-pointer merge resolves that
    /// level for *every* node in O(n) — where the per-node construction
    /// pays a `log n` binary search per level. Levels with
    /// `2^k <=` the minimum clockwise gap (including the wrap gap)
    /// resolve to the ring successor for every node and dedup away, so
    /// they are skipped outright — at simulation scales (min gap ≈
    /// `2^64 / n²`) that skips well over half the 64 levels. The result
    /// is identical to the exhaustive per-`k` scan (see
    /// [`ChordRing::build_reference`] and the oracle tests).
    ///
    /// # Panics
    ///
    /// Panics if `members` contains duplicates.
    fn rebuild_tables(&mut self) {
        let n = self.len();

        // Dense position map (u32::MAX = absent). Refill from scratch;
        // the table is sized to the largest member id.
        let max_index = self.members.iter().map(|m| m.index()).max().unwrap_or(0);
        self.position_of.clear();
        self.position_of.resize(max_index + 1, u32::MAX);
        for (p, &m) in self.members.iter().enumerate() {
            let slot = &mut self.position_of[m.index()];
            assert_eq!(*slot, u32::MAX, "duplicate members");
            *slot = p as u32;
        }

        // Successor lists depend only on `n` (entries are `(p+k) % n`),
        // so a rebuild at unchanged ring size — the per-trial hot case —
        // reuses them untouched. The lists are only ever written here,
        // always consistently with their length, so `len == n` with the
        // right per-list length certifies them.
        let list_len = SUCCESSOR_LIST_LEN.min(n.saturating_sub(1));
        let successors_valid = self.successors.len() == n
            && self.successors.first().is_none_or(|l| l.len() == list_len);
        if !successors_valid {
            for list in &mut self.successors {
                list.clear();
            }
            self.successors.resize_with(n, Vec::new);
            for (p, list) in self.successors.iter_mut().enumerate() {
                list.clear();
                list.extend((1..=list_len).map(|k| (p + k) % n));
            }
        }

        for table in &mut self.fingers {
            table.clear();
        }
        self.fingers.resize_with(n, Vec::new);
        let ids = &self.ids;
        if n == 1 {
            self.fingers[0].push(0);
            self.rebuild_steps();
            return;
        }
        // Every table starts at the ring successor: each level `k` with
        // `2^k` inside the successor gap resolves there and dedups away.
        for (p, table) in self.fingers.iter_mut().enumerate() {
            table.push((p + 1) % n);
        }
        // Minimum clockwise gap, wrap gap included: a level whose span
        // fits inside *every* gap lands each target strictly between a
        // node and its successor, so the whole level dedups away and is
        // skipped without a scan.
        let mut min_gap = ids[0].wrapping_sub(ids[n - 1]);
        for w in ids.windows(2) {
            min_gap = min_gap.min(w[1] - w[0]);
        }
        for k in 0..ID_BITS {
            let d = 1u64 << k;
            if d <= min_gap {
                continue;
            }
            // `ids` is sorted, so within each of the two segments below
            // the targets ascend in `p` and the circular lower bound
            // `s(p)` ascends with them — one forward-only merge pointer
            // per segment resolves the level in O(n).
            //
            // Segment A: `ids[p] + d` does not overflow. Targets are the
            // absolute values `ids[p] + d`; a target past the largest id
            // wraps to position 0.
            let no_overflow = ids.partition_point(|&id| id <= u64::MAX - d);
            let mut q = 0usize;
            for p in 0..no_overflow {
                let t = ids[p] + d;
                while q < n && ids[q] < t {
                    q += 1;
                }
                let s = if q == n { 0 } else { q };
                let table = &mut self.fingers[p];
                if *table.last().expect("table is non-empty") != s {
                    table.push(s);
                }
            }
            // Segment B: `ids[p] + d` wraps past zero. The wrapped
            // targets are again ascending in `p` (same offset, larger
            // bases), and always land at or before `p` itself.
            let mut q = 0usize;
            for p in no_overflow..n {
                let t = ids[p].wrapping_add(d);
                while q < n && ids[q] < t {
                    q += 1;
                }
                let s = if q == n { 0 } else { q };
                let table = &mut self.fingers[p];
                if *table.last().expect("table is non-empty") != s {
                    table.push(s);
                }
            }
        }
        self.rebuild_steps();
    }

    /// Exhaustive reference construction: identical RNG consumption and
    /// output to [`ChordRing::build`], but finger tables are built with
    /// the original per-`k` binary-search scan and all routing state is
    /// freshly allocated. Kept as the correctness oracle for the
    /// gap-shortcut construction and as the "before" cost model for the
    /// perf baseline.
    #[doc(hidden)]
    pub fn build_reference<R: Rng + ?Sized>(rng: &mut R, members: &[NodeId]) -> Self {
        assert!(!members.is_empty(), "a Chord ring needs at least one node");
        let unique: HashSet<_> = members.iter().collect();
        assert_eq!(unique.len(), members.len(), "duplicate members");

        let mut pairs: Vec<(u64, NodeId)> = Vec::new();
        draw_ring_ids(rng, members, &mut pairs);

        let ids: Vec<u64> = pairs.iter().map(|&(id, _)| id).collect();
        let members: Vec<NodeId> = pairs.iter().map(|&(_, m)| m).collect();
        let n = ids.len();
        // The pre-optimization implementation kept a hash position map.
        let position_map: std::collections::HashMap<NodeId, usize> = members
            .iter()
            .enumerate()
            .map(|(p, &m)| (m, p))
            .collect();
        let max_index = members.iter().map(|m| m.index()).max().unwrap_or(0);
        let mut position_of = vec![u32::MAX; max_index + 1];
        for (&m, &p) in &position_map {
            position_of[m.index()] = p as u32;
        }
        let successors: Vec<Vec<usize>> = (0..n)
            .map(|p| {
                (1..=SUCCESSOR_LIST_LEN.min(n.saturating_sub(1)))
                    .map(|k| (p + k) % n)
                    .collect()
            })
            .collect();
        let fingers: Vec<Vec<usize>> = (0..n)
            .map(|p| {
                let base = ids[p];
                let mut table = Vec::with_capacity(ID_BITS);
                for k in 0..ID_BITS {
                    let target = base.wrapping_add(1u64 << k);
                    table.push(successor_position_in(&ids, target));
                }
                table.dedup();
                table
            })
            .collect();

        let mut ring = ChordRing {
            ids,
            members,
            position_of,
            fingers,
            successors,
            steps: Vec::new(),
            pairs: Vec::new(),
        };
        ring.rebuild_steps();
        ring
    }

    /// Fills `mask` with the ring *positions* whose member satisfies
    /// `is_alive` — the structure-of-arrays liveness form the masked
    /// lookups consume. Word-at-a-time reset, then one probe per
    /// position; the mask is `n` bits (cache-resident even at 10⁴
    /// nodes), so the per-candidate hot-path probe replaces a
    /// `members[cand]` gather plus an overlay status lookup with a
    /// single bit test.
    pub fn fill_alive_positions<F>(&self, is_alive: F, mask: &mut NodeBitSet)
    where
        F: Fn(NodeId) -> bool,
    {
        mask.fill_first(self.len());
        for (pos, &m) in self.members.iter().enumerate() {
            if !is_alive(m) {
                mask.remove_index(pos);
            }
        }
    }

    /// Masked counterpart of [`ChordRing::lookup_avoiding_hops`]:
    /// liveness comes from a position-indexed bit mask (see
    /// [`ChordRing::fill_alive_positions`]) instead of a per-node
    /// closure, with the querying node treated as alive exactly like the
    /// closure form's `n == from` clause. Takes identical routing
    /// decisions, so for a mask filled from the same predicate the
    /// result is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not on the ring.
    pub fn lookup_avoiding_hops_masked(
        &self,
        from: NodeId,
        key: u64,
        alive: &NodeBitSet,
    ) -> Option<(NodeId, usize)> {
        self.lookup_masked_inner(from, key, alive, None)
    }

    /// [`lookup_avoiding_hops_masked`](Self::lookup_avoiding_hops_masked)
    /// that additionally records the walk's *intermediate* members (the
    /// nodes strictly between `from` and the owner, in walk order) into
    /// `trace` (cleared first).
    ///
    /// The greedy step is memoryless — the choice at a position depends
    /// only on `(position, key, alive)`, with `from` exempted from the
    /// mask — so when `from` itself is alive in the mask, the walk's
    /// suffix from any intermediate `m` (at `h - i` of the walk's `h`
    /// hops) is exactly what a fresh lookup from `m` would take: callers
    /// can cache one traced walk as `h - i` hop answers for every
    /// intermediate, and (on a stuck walk) a blocked answer for each.
    /// When `from` is *not* alive the exemption breaks that suffix
    /// property, so the trace is left empty and only the `from` answer
    /// may be cached.
    pub fn lookup_avoiding_hops_masked_traced(
        &self,
        from: NodeId,
        key: u64,
        alive: &NodeBitSet,
        trace: &mut Vec<NodeId>,
    ) -> Option<(NodeId, usize)> {
        trace.clear();
        self.lookup_masked_inner(from, key, alive, Some(trace))
    }

    fn lookup_masked_inner(
        &self,
        from: NodeId,
        key: u64,
        alive: &NodeBitSet,
        mut trace: Option<&mut Vec<NodeId>>,
    ) -> Option<(NodeId, usize)> {
        let from_pos = self
            .position(from)
            .unwrap_or_else(|| panic!("{from} is not on the ring"));
        if trace.is_some() && !alive.contains_index(from_pos) {
            // Suffix caching is only sound when the `n == from` liveness
            // exemption is vacuous (see the traced variant's docs).
            trace = None;
        }
        let mut pos = from_pos;
        let owner_pos = self.successor_position(key);
        if !(owner_pos == from_pos || alive.contains_index(owner_pos)) {
            return None;
        }
        let owner = self.members[owner_pos];
        let max_hops = self.len() + SUCCESSOR_LIST_LEN + 1;
        for hops in 0..max_hops {
            if pos == owner_pos {
                return Some((owner, hops));
            }
            let next = self.best_alive_step_masked(pos, owner_pos, from_pos, alive)?;
            debug_assert_ne!(next, pos, "routing must make progress");
            pos = next;
            if let Some(t) = trace.as_deref_mut() {
                if pos != owner_pos {
                    t.push(self.members[pos]);
                }
            }
        }
        None
    }

    /// Batched form of [`ChordRing::lookup_avoiding_hops_masked`]: one
    /// `(from, key)` query per lane, all resolved against the same
    /// per-trial liveness mask. Results land in `out` (cleared first),
    /// index-aligned with `queries`.
    ///
    /// Each lookup takes exactly the decisions of the scalar call —
    /// this is a grouping, not an approximation — but running a trial's
    /// route lanes through one pass keeps the finger/successor rows and
    /// the mask words hot across queries instead of re-faulting them in
    /// per route between unrelated work.
    ///
    /// # Panics
    ///
    /// Panics if any queried `from` is not on the ring.
    pub fn lookup_avoiding_hops_masked_batch(
        &self,
        queries: &[(NodeId, u64)],
        alive: &NodeBitSet,
        out: &mut Vec<Option<(NodeId, usize)>>,
    ) {
        out.clear();
        out.reserve(queries.len());
        out.extend(
            queries
                .iter()
                .map(|&(from, key)| self.lookup_avoiding_hops_masked(from, key, alive)),
        );
    }

    /// Masked counterpart of [`ChordRing::successor_walk_hops`] (see
    /// [`ChordRing::lookup_avoiding_hops_masked`] for the mask
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not on the ring.
    pub fn successor_walk_hops_masked(
        &self,
        from: NodeId,
        key: u64,
        alive: &NodeBitSet,
    ) -> Option<(NodeId, usize)> {
        let from_pos = self
            .position(from)
            .unwrap_or_else(|| panic!("{from} is not on the ring"));
        let mut pos = from_pos;
        let owner_pos = self.successor_position(key);
        if !(owner_pos == from_pos || alive.contains_index(owner_pos)) {
            return None;
        }
        let owner = self.members[owner_pos];
        for hops in 0..self.len() {
            if pos == owner_pos {
                return Some((owner, hops));
            }
            let next = self.successors[pos]
                .iter()
                .copied()
                .find(|&s| s == owner_pos || s == from_pos || alive.contains_index(s))?;
            pos = next;
        }
        None
    }

    /// [`ChordRing::best_alive_step`] over a position-indexed liveness
    /// mask (`from_pos` counts as alive). Same backward offset-table
    /// scan; the typical step costs one or two mask probes.
    fn best_alive_step_masked(
        &self,
        pos: usize,
        owner_pos: usize,
        from_pos: usize,
        alive: &NodeBitSet,
    ) -> Option<usize> {
        let n = self.len();
        let owner_off = (owner_pos + n - pos) % n;
        let offs = &self.steps[pos];
        let hi = offs.partition_point(|&o| (o as usize) <= owner_off);
        for &o in offs[..hi].iter().rev() {
            let mut cand = pos + o as usize;
            if cand >= n {
                cand -= n;
            }
            if cand == from_pos || alive.contains_index(cand) {
                return Some(cand);
            }
        }
        None
    }

    /// Rebuilds `steps` (the sorted clockwise-offset form of each node's
    /// candidate set) from the current finger tables and successor
    /// lists, reusing existing allocations.
    fn rebuild_steps(&mut self) {
        let n = self.len();
        for table in &mut self.steps {
            table.clear();
        }
        self.steps.resize_with(n, Vec::new);
        let fingers = &self.fingers;
        let successors = &self.successors;
        for (p, table) in self.steps.iter_mut().enumerate() {
            table.clear();
            table.extend(
                fingers[p]
                    .iter()
                    .chain(successors[p].iter())
                    .map(|&c| ((c + n - p) % n) as u32)
                    .filter(|&o| o != 0),
            );
            table.sort_unstable();
            table.dedup();
        }
    }
}

/// Position of the first id `>= key` in the sorted `ids` (wrapping).
fn successor_position_in(ids: &[u64], key: u64) -> usize {
    let p = ids.partition_point(|&x| x < key);
    if p == ids.len() {
        0
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: u32, seed: u64) -> ChordRing {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ChordRing::build(&mut rng, &members)
    }

    /// Clockwise distance from `a` to `b` on the 2^64 ring.
    fn clockwise_distance(a: u64, b: u64) -> u64 {
        b.wrapping_sub(a)
    }

    /// The greedy step as the pre-offset-table implementation computed
    /// it: scan every finger and successor-list entry, take the owner
    /// outright if present and alive, else the distance-argmin among
    /// alive candidates strictly closer to the key. Oracle for
    /// `best_alive_step_masked`'s backward offset scan.
    fn distance_scan_step(
        r: &ChordRing,
        pos: usize,
        owner_pos: usize,
        key: u64,
        from_pos: usize,
        alive: &NodeBitSet,
    ) -> Option<usize> {
        let my_dist = clockwise_distance(r.ids[pos], key);
        let mut best: Option<(u64, usize)> = None;
        for &cand in r.fingers[pos].iter().chain(r.successors[pos].iter()) {
            if cand == pos {
                continue;
            }
            if !(cand == from_pos || alive.contains_index(cand)) {
                continue;
            }
            if cand == owner_pos {
                return Some(cand);
            }
            let d = clockwise_distance(r.ids[cand], key);
            if d < my_dist {
                match best {
                    Some((bd, _)) if bd <= d => {}
                    _ => best = Some((d, cand)),
                }
            }
        }
        best.map(|(_, p)| p)
    }

    #[test]
    fn offset_scan_step_matches_distance_scan() {
        for (n, seed) in [(3u32, 11u64), (40, 12), (100, 13), (333, 14)] {
            let r = ring(n, seed);
            let n = n as usize;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let mut alive = NodeBitSet::new();
            for _ in 0..400 {
                let salt = rng.gen::<u64>();
                r.fill_alive_positions(|m| (m.0 as u64).wrapping_mul(salt) % 10 < 7, &mut alive);
                let key = rng.gen::<u64>();
                let owner_pos = r.successor_position(key);
                let pos = rng.gen_range(0..n);
                if pos == owner_pos {
                    continue;
                }
                let from_pos = rng.gen_range(0..n);
                assert_eq!(
                    r.best_alive_step_masked(pos, owner_pos, from_pos, &alive),
                    distance_scan_step(&r, pos, owner_pos, key, from_pos, &alive),
                    "n {n} pos {pos} owner {owner_pos} from {from_pos} key {key}"
                );
            }
        }
    }

    #[test]
    fn build_basics() {
        let r = ring(100, 1);
        assert_eq!(r.len(), 100);
        assert!(!r.is_empty());
        assert!(r.contains(NodeId(5)));
        assert!(!r.contains(NodeId(100)));
        assert!(r.id_of(NodeId(5)).is_some());
        assert!(r.id_of(NodeId(100)).is_none());
    }

    #[test]
    fn ids_are_sorted_and_unique() {
        let r = ring(500, 2);
        assert!(r.ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lookup_matches_naive_owner() {
        let r = ring(200, 3);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            let key = rng.gen::<u64>();
            let from = NodeId(rng.gen_range(0..200));
            let out = r.lookup(from, key);
            assert_eq!(out.owner, r.owner_of(key), "key {key}");
            assert_eq!(*out.path.first().unwrap(), from);
            assert_eq!(*out.path.last().unwrap(), out.owner);
        }
    }

    #[test]
    fn lookup_is_logarithmic() {
        let r = ring(1_024, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut max_hops = 0;
        for _ in 0..300 {
            let key = rng.gen::<u64>();
            let from = NodeId(rng.gen_range(0..1_024));
            max_hops = max_hops.max(r.lookup(from, key).hops());
        }
        // Chord bound: O(log n) w.h.p.; allow generous slack.
        assert!(max_hops <= 2 * 10, "max hops = {max_hops}");
        assert!(max_hops >= 2, "suspiciously short paths");
    }

    #[test]
    fn lookup_from_owner_is_trivial() {
        let r = ring(50, 6);
        let owner = r.owner_of(12345);
        let key_id = r.id_of(owner).unwrap();
        let out = r.lookup(owner, key_id);
        assert_eq!(out.owner, owner);
        assert_eq!(out.hops(), 0);
    }

    #[test]
    fn lookup_avoiding_routes_around_failures() {
        let r = ring(300, 7);
        let mut rng = StdRng::seed_from_u64(8);
        // Kill 30% of nodes (but never the queried owner or source).
        for trial in 0..100 {
            let key = rng.gen::<u64>();
            let owner = r.owner_of(key);
            let from = NodeId(rng.gen_range(0..300));
            if from == owner {
                continue;
            }
            let dead: HashSet<NodeId> = (0..300u32)
                .map(NodeId)
                .filter(|&n| n != owner && n != from && rng.gen::<f64>() < 0.3)
                .collect();
            let out = r.lookup_avoiding(from, key, |n| !dead.contains(&n));
            let out = out.unwrap_or_else(|| panic!("trial {trial} found no route"));
            assert_eq!(out.owner, owner);
            assert!(out.path.iter().all(|n| !dead.contains(n)));
        }
    }

    #[test]
    fn lookup_avoiding_fails_when_owner_dead() {
        let r = ring(50, 9);
        let key = 42u64;
        let owner = r.owner_of(key);
        let from = r.members.iter().find(|&&m| m != owner).copied().unwrap();
        assert!(r.lookup_avoiding(from, key, |n| n != owner).is_none());
    }

    #[test]
    fn join_inserts_and_keeps_lookups_correct() {
        let mut r = ring(64, 10);
        let mut rng = StdRng::seed_from_u64(11);
        for new in 64..96u32 {
            r.join(&mut rng, NodeId(new));
        }
        assert_eq!(r.len(), 96);
        for _ in 0..200 {
            let key = rng.gen::<u64>();
            let from = NodeId(rng.gen_range(0..96));
            assert_eq!(r.lookup(from, key).owner, r.owner_of(key));
        }
    }

    #[test]
    fn leave_removes_and_keeps_lookups_correct() {
        let mut r = ring(64, 12);
        let mut rng = StdRng::seed_from_u64(13);
        for gone in 0..32u32 {
            r.leave(NodeId(gone));
        }
        assert_eq!(r.len(), 32);
        for _ in 0..200 {
            let key = rng.gen::<u64>();
            let from = NodeId(rng.gen_range(32..64));
            let out = r.lookup(from, key);
            assert_eq!(out.owner, r.owner_of(key));
            assert!(out.path.iter().all(|n| n.0 >= 32));
        }
    }

    #[test]
    fn single_node_ring() {
        let members = [NodeId(7)];
        let mut rng = StdRng::seed_from_u64(14);
        let r = ChordRing::build(&mut rng, &members);
        assert_eq!(r.owner_of(0), NodeId(7));
        let out = r.lookup(NodeId(7), u64::MAX);
        assert_eq!(out.owner, NodeId(7));
        assert_eq!(out.hops(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate members")]
    fn duplicate_members_rejected() {
        let mut rng = StdRng::seed_from_u64(15);
        ChordRing::build(&mut rng, &[NodeId(1), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "already joined")]
    fn double_join_rejected() {
        let mut r = ring(4, 16);
        let mut rng = StdRng::seed_from_u64(17);
        r.join(&mut rng, NodeId(0));
    }

    fn assert_same_ring(a: &ChordRing, b: &ChordRing) {
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.members, b.members);
        assert_eq!(a.position_of, b.position_of);
        assert_eq!(a.successors, b.successors);
        assert_eq!(a.fingers, b.fingers);
    }

    #[test]
    fn gap_shortcut_matches_reference_construction() {
        for (n, seed) in [(1u32, 0u64), (2, 1), (3, 2), (17, 3), (64, 4), (500, 5)] {
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let fast = ChordRing::build(&mut rng_a, &members);
            let reference = ChordRing::build_reference(&mut rng_b, &members);
            assert_same_ring(&fast, &reference);
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn build_into_reuse_matches_fresh_build() {
        // Dirty the reused ring with a different membership first.
        let mut reused = ring(300, 42);
        for (n, seed) in [(1u32, 6u64), (64, 7), (200, 8), (512, 9)] {
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let fresh = ChordRing::build(&mut rng_a, &members);
            reused.build_into(&mut rng_b, &members);
            assert_same_ring(&fresh, &reused);
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn hops_variants_match_path_variants() {
        let r = ring(300, 21);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..200 {
            let key = rng.gen::<u64>();
            let from = NodeId(rng.gen_range(0..300));
            let dead: HashSet<NodeId> = (0..300u32)
                .map(NodeId)
                .filter(|&n| n != from && rng.gen::<f64>() < 0.3)
                .collect();
            let alive = |n: NodeId| !dead.contains(&n);
            let full = r.lookup_avoiding(from, key, alive);
            let lean = r.lookup_avoiding_hops(from, key, alive);
            assert_eq!(full.as_ref().map(|o| (o.owner, o.hops())), lean);
            let full = r.successor_walk(from, key, alive);
            let lean = r.successor_walk_hops(from, key, alive);
            assert_eq!(full.as_ref().map(|o| (o.owner, o.hops())), lean);
        }
    }

    #[test]
    fn masked_lookups_match_closure_lookups() {
        let r = ring(300, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let mut mask = NodeBitSet::new();
        for _ in 0..200 {
            let key = rng.gen::<u64>();
            let from = NodeId(rng.gen_range(0..300));
            // Kill 30% — sometimes including `from` itself, which the
            // closure form treats as alive via the `n == from` clause.
            let dead: HashSet<NodeId> = (0..300u32)
                .map(NodeId)
                .filter(|_| rng.gen::<f64>() < 0.3)
                .collect();
            let alive = |n: NodeId| n == from || !dead.contains(&n);
            r.fill_alive_positions(|n| !dead.contains(&n), &mut mask);
            assert_eq!(
                r.lookup_avoiding_hops(from, key, alive),
                r.lookup_avoiding_hops_masked(from, key, &mask)
            );
            assert_eq!(
                r.successor_walk_hops(from, key, alive),
                r.successor_walk_hops_masked(from, key, &mask)
            );
        }
    }

    #[test]
    fn traced_lookup_suffixes_match_fresh_lookups() {
        // The suffix-splice contract: a traced walk's intermediate `i`
        // must answer a fresh lookup with the walk's remaining hops
        // (delivered) or a blocked walk of its own (stuck) — and an
        // origin dead in the mask must leave the trace empty.
        let r = ring(300, 51);
        let mut rng = StdRng::seed_from_u64(52);
        let mut mask = NodeBitSet::new();
        let mut trace = Vec::new();
        let mut spliced = 0u32;
        for _ in 0..200 {
            let key = rng.gen::<u64>();
            let from = NodeId(rng.gen_range(0..300));
            let dead: HashSet<NodeId> = (0..300u32)
                .map(NodeId)
                .filter(|_| rng.gen::<f64>() < 0.3)
                .collect();
            r.fill_alive_positions(|n| !dead.contains(&n), &mut mask);
            let out = r.lookup_avoiding_hops_masked_traced(from, key, &mask, &mut trace);
            assert_eq!(out, r.lookup_avoiding_hops_masked(from, key, &mask));
            if dead.contains(&from) {
                assert!(trace.is_empty(), "dead origin must not trace");
                continue;
            }
            for (i, &mid) in trace.iter().enumerate() {
                spliced += 1;
                let fresh = r.lookup_avoiding_hops_masked(mid, key, &mask);
                match out {
                    Some((owner, hops)) => {
                        assert!(!trace.contains(&owner), "trace holds intermediates only");
                        assert_eq!(fresh, Some((owner, hops - (i + 1))));
                    }
                    None => assert_eq!(fresh, None),
                }
            }
        }
        assert!(spliced > 100, "walks should yield intermediates: {spliced}");
    }

    #[test]
    fn rebuild_across_sizes_keeps_successor_lists_correct() {
        // The successor-list fast path skips the rebuild when n is
        // unchanged; cycle through sizes (n, other n, back) and check
        // every list against its definition.
        let mut r = ring(64, 40);
        for n in [64u32, 64, 200, 17, 17, 1, 64] {
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let mut rng = StdRng::seed_from_u64(u64::from(n) + 1000);
            r.build_into(&mut rng, &members);
            let n = n as usize;
            let list_len = SUCCESSOR_LIST_LEN.min(n - 1);
            assert_eq!(r.successors.len(), n);
            for (p, list) in r.successors.iter().enumerate() {
                let expect: Vec<usize> = (1..=list_len).map(|k| (p + k) % n).collect();
                assert_eq!(*list, expect, "position {p} of {n}");
            }
        }
    }

    #[test]
    fn successor_wraps_around() {
        let r = ring(16, 18);
        // The owner of a key greater than the max id is the smallest id.
        let max_id = *r.ids.last().unwrap();
        if max_id < u64::MAX {
            assert_eq!(r.owner_of(max_id.wrapping_add(1)), r.members[0]);
        }
        // successor(last) = first member.
        let last_member = *r.members.last().unwrap();
        assert_eq!(r.successor(last_member), r.members[0]);
    }
}
