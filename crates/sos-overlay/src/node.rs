//! Node identity, roles and health status.

use serde::{Deserialize, Serialize};

/// Dense index of a node inside an [`crate::overlay::Overlay`].
///
/// Indices `0..N` are overlay nodes (SOS nodes hidden among bystanders);
/// indices `N..N+F` are filters. The numbering is an implementation
/// detail of the overlay; use [`crate::overlay::Overlay::role`] to
/// interpret an id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What part a node plays in the SOS architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// An SOS node serving 1-based layer `layer` (1 = SOAP-equivalent,
    /// `L` = secret-servlet-equivalent).
    Sos {
        /// The 1-based layer this node serves.
        layer: u16,
    },
    /// A filter in the ring around the target (layer `L+1`).
    Filter,
    /// An ordinary overlay node not participating in SOS. Bystanders
    /// matter because the attacker cannot tell them from SOS nodes when
    /// attacking randomly.
    Bystander,
}

impl Role {
    /// The 1-based layer this role occupies, if any (`L+1` is encoded by
    /// the caller since `Role` does not know `L`).
    pub fn sos_layer(&self) -> Option<u16> {
        match self {
            Role::Sos { layer } => Some(*layer),
            _ => None,
        }
    }

    /// Whether this node participates in the architecture (SOS node or
    /// filter).
    pub fn is_protected_infrastructure(&self) -> bool {
        !matches!(self, Role::Bystander)
    }
}

/// Health of a node under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NodeStatus {
    /// Functioning normally.
    #[default]
    Good,
    /// Broken into: the attacker controls it and has read its neighbor
    /// table. Broken nodes do not forward traffic and are never also
    /// congested (the paper's convention).
    Broken,
    /// Congested by DDoS traffic: cannot forward, but its secrets are
    /// safe.
    Congested,
}

impl NodeStatus {
    /// A *bad* node is broken into or congested — it cannot route.
    pub fn is_bad(&self) -> bool {
        !matches!(self, NodeStatus::Good)
    }

    /// Whether the node still routes traffic.
    pub fn is_good(&self) -> bool {
        matches!(self, NodeStatus::Good)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "#42");
    }

    #[test]
    fn role_layer_extraction() {
        assert_eq!(Role::Sos { layer: 3 }.sos_layer(), Some(3));
        assert_eq!(Role::Filter.sos_layer(), None);
        assert_eq!(Role::Bystander.sos_layer(), None);
        assert!(Role::Filter.is_protected_infrastructure());
        assert!(!Role::Bystander.is_protected_infrastructure());
    }

    #[test]
    fn status_predicates() {
        assert!(NodeStatus::Good.is_good());
        assert!(!NodeStatus::Good.is_bad());
        assert!(NodeStatus::Broken.is_bad());
        assert!(NodeStatus::Congested.is_bad());
        assert_eq!(NodeStatus::default(), NodeStatus::Good);
    }
}
