//! Overlay membership dynamics (churn).
//!
//! The SOS papers treat the overlay membership as static during an
//! attack; real overlays churn. This module adds a churn process on top
//! of an [`Overlay`]: bystanders arrive and depart, and when an SOS
//! node departs (or is retired by the operator after a compromise) a
//! bystander is *promoted* into its layer — the role replacement the
//! original SOS paper sketches for healing the architecture. The Chord
//! ring can be kept in sync via its `join`/`leave` operations.
//!
//! Churn interacts with attacks in two ways the simulator can measure:
//!
//! * promotion heals layers (a promoted node is fresh: unknown to the
//!   attacker, with a new neighbor table);
//! * departure of *good* SOS nodes is damage the attacker gets for
//!   free.

use crate::node::{NodeId, NodeStatus, Role};
use crate::overlay::Overlay;
use rand::Rng;
use sos_math::sampling::{sample_from, stochastic_round};

/// A single churn event applied to the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A bystander left the overlay (no effect on the architecture).
    BystanderDeparted(NodeId),
    /// An SOS node left; a bystander was promoted into its layer.
    SosReplaced {
        /// The departed SOS node.
        departed: NodeId,
        /// The promoted replacement.
        promoted: NodeId,
        /// 1-based layer affected.
        layer: usize,
    },
    /// An SOS node left and no bystander was available to promote; the
    /// layer shrank by one.
    SosLost {
        /// The departed SOS node.
        departed: NodeId,
        /// 1-based layer affected.
        layer: usize,
    },
}

/// Churn process parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Expected fraction of overlay nodes departing per step.
    pub departure_rate: f64,
    /// Whether departed SOS nodes are replaced by promoted bystanders.
    pub promote_replacements: bool,
}

impl ChurnModel {
    /// Creates a churn model.
    ///
    /// # Panics
    ///
    /// Panics if `departure_rate` is outside `[0, 1]`.
    pub fn new(departure_rate: f64, promote_replacements: bool) -> Self {
        assert!(
            (0.0..=1.0).contains(&departure_rate),
            "departure rate out of range: {departure_rate}"
        );
        ChurnModel {
            departure_rate,
            promote_replacements,
        }
    }

    /// Applies one churn step to `overlay`, returning the events.
    ///
    /// Departing nodes are chosen uniformly among overlay nodes
    /// (filters never churn). A departing SOS node is replaced — if the
    /// model promotes and a good bystander exists — by a uniformly
    /// chosen good bystander, which inherits the layer and draws a
    /// fresh neighbor table of the same size; all neighbor tables
    /// pointing at the departed node are repaired to point at the
    /// replacement.
    pub fn step<R: Rng + ?Sized>(&self, overlay: &mut Overlay, rng: &mut R) -> Vec<ChurnEvent> {
        let n = overlay.overlay_node_count();
        let departures = stochastic_round(rng, n as f64 * self.departure_rate)
            .min(n as u64) as usize;
        let all: Vec<NodeId> = overlay.overlay_ids().collect();
        let departing = sample_from(rng, &all, departures);
        let mut events = Vec::with_capacity(departing.len());
        for node in departing {
            match overlay.role(node) {
                Role::Bystander => {
                    // Departure of a bystander only matters if it was
                    // congested (the attacker's slot frees) — status is
                    // reset either way.
                    overlay.set_status(node, NodeStatus::Good);
                    events.push(ChurnEvent::BystanderDeparted(node));
                }
                Role::Filter => unreachable!("filters are not overlay nodes"),
                Role::Sos { layer } => {
                    let layer = layer as usize;
                    let replacement = if self.promote_replacements {
                        self.pick_bystander(overlay, rng)
                    } else {
                        None
                    };
                    match replacement {
                        Some(promoted) => {
                            overlay.replace_sos_node(node, promoted, rng);
                            events.push(ChurnEvent::SosReplaced {
                                departed: node,
                                promoted,
                                layer,
                            });
                        }
                        None => {
                            overlay.retire_sos_node(node);
                            events.push(ChurnEvent::SosLost {
                                departed: node,
                                layer,
                            });
                        }
                    }
                }
            }
        }
        events
    }

    fn pick_bystander<R: Rng + ?Sized>(
        &self,
        overlay: &Overlay,
        rng: &mut R,
    ) -> Option<NodeId> {
        let candidates: Vec<NodeId> = overlay
            .overlay_ids()
            .filter(|&id| overlay.role(id) == Role::Bystander && overlay.is_good(id))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(sample_from(rng, &candidates, 1)[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};

    fn overlay(seed: u64) -> Overlay {
        let scenario = Scenario::builder()
            .system(SystemParams::new(500, 60, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::OneTo(2))
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::build(&scenario, &mut rng)
    }

    #[test]
    fn churn_preserves_sos_population_with_promotion() {
        let mut o = overlay(1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = ChurnModel::new(0.10, true);
        for _ in 0..10 {
            model.step(&mut o, &mut rng);
        }
        let total: usize = (1..=3).map(|l| o.layer_members(l).len()).collect::<Vec<_>>().iter().sum();
        assert_eq!(total, 60, "promotion must conserve SOS membership");
        // Layer membership and roles stay consistent.
        for layer in 1..=3usize {
            for &m in o.layer_members(layer) {
                assert_eq!(o.layer_of(m), Some(layer));
            }
        }
    }

    #[test]
    fn churn_without_promotion_shrinks_layers() {
        let mut o = overlay(3);
        let mut rng = StdRng::seed_from_u64(4);
        let model = ChurnModel::new(0.10, false);
        let mut lost = 0;
        for _ in 0..10 {
            for e in model.step(&mut o, &mut rng) {
                if matches!(e, ChurnEvent::SosLost { .. }) {
                    lost += 1;
                }
            }
        }
        let total: usize = (1..=3).map(|l| o.layer_members(l).len()).sum();
        assert_eq!(total, 60 - lost);
        assert!(lost > 0, "10% churn for 10 steps should hit SOS nodes");
    }

    #[test]
    fn promoted_nodes_have_fresh_tables_and_inbound_repairs() {
        let mut o = overlay(5);
        let mut rng = StdRng::seed_from_u64(6);
        // Deterministic single replacement via the Overlay API (a step
        // with many events can re-churn the same node, so assert on one
        // isolated swap).
        let departed = o.layer_members(2)[0];
        let promoted = o
            .overlay_ids()
            .find(|&id| o.role(id) == Role::Bystander)
            .unwrap();
        o.replace_sos_node(departed, promoted, &mut rng);
        assert_eq!(o.layer_of(promoted), Some(2));
        assert_eq!(o.role(departed), Role::Bystander);
        // Fresh table of the mapping degree into layer 3.
        assert_eq!(o.neighbors(promoted).len(), 2);
        for &nb in o.neighbors(promoted) {
            assert_eq!(o.layer_of(nb), Some(3));
        }
        // No neighbor table still points at the departed node.
        for id in o.overlay_ids() {
            assert!(
                !o.neighbors(id).contains(&departed),
                "{id} still points at departed {departed}"
            );
        }
        // Churn steps with promotion keep producing replacement events.
        let model = ChurnModel::new(0.2, true);
        let mut replaced = 0;
        for _ in 0..10 {
            for e in model.step(&mut o, &mut rng) {
                if matches!(e, ChurnEvent::SosReplaced { .. }) {
                    replaced += 1;
                }
            }
        }
        assert!(replaced > 0, "no replacement in 10 steps at 20% churn");
    }

    #[test]
    fn zero_churn_is_identity() {
        let mut o = overlay(7);
        let before_l1 = o.layer_members(1).to_vec();
        let mut rng = StdRng::seed_from_u64(8);
        let events = ChurnModel::new(0.0, true).step(&mut o, &mut rng);
        assert!(events.is_empty());
        assert_eq!(o.layer_members(1), &before_l1[..]);
    }

    #[test]
    #[should_panic(expected = "departure rate out of range")]
    fn invalid_rate_rejected() {
        ChurnModel::new(1.5, true);
    }
}
