//! How one logical overlay hop (layer `i−1` node → layer `i` neighbor)
//! is realized.
//!
//! The ICDCS analysis treats a hop as a direct message: it succeeds iff
//! the destination is good. The original SOS system actually routes each
//! hop over Chord, so a hop can *also* fail because every Chord route to
//! the destination is blocked by compromised intermediate nodes. The
//! difference between the two transports is measured by the
//! `ablation-chord` experiment.

use crate::bitset::NodeBitSet;
use crate::chord::ChordRing;
use crate::node::NodeId;
use crate::overlay::Overlay;
use crate::protocol::ChordProtocol;
use sos_faults::{FaultPlan, HopIncident, RetryPolicy};

/// Outcome of delivering one logical hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The message reached the destination in `hops` underlay hops.
    Delivered {
        /// Underlay hops traversed (1 for direct transport).
        hops: usize,
    },
    /// No usable route: the destination is bad, or (Chord transport)
    /// every route is blocked by bad intermediate nodes.
    Blocked,
}

impl DeliveryOutcome {
    /// Whether the hop succeeded.
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryOutcome::Delivered { .. })
    }
}

/// Result of one fault-aware hop delivery
/// ([`Transport::deliver_with`]): the outcome plus what the fault plane
/// and the retry loop did along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopDelivery {
    /// Final outcome after all attempts.
    pub outcome: DeliveryOutcome,
    /// Delivery attempts made (1 when no fault plan is active).
    pub attempts: u32,
    /// Simulated ticks spent on backoff, delays and slow-downs.
    pub ticks: u64,
    /// Everything the fault plane injected, in order.
    pub incidents: Vec<HopIncident>,
}

impl HopDelivery {
    /// Whether the hop ultimately succeeded.
    pub fn is_delivered(&self) -> bool {
        self.outcome.is_delivered()
    }
}

/// Transport used between overlay nodes.
#[derive(Debug, Clone)]
pub enum Transport {
    /// Hops are direct messages — the paper's abstraction.
    Direct,
    /// Hops traverse the Chord ring; intermediate nodes must be good.
    /// Filters are infrastructure off the ring, so the final
    /// servlet→filter hop is always direct.
    Chord(ChordRing),
    /// Hops resolve through the *protocol* state (possibly stale
    /// fingers and successor lists) — the transport for measuring what
    /// an attack costs while the ring is still converging. A hop fails
    /// when the protocol's lookup misroutes (stale owner) or dead
    /// pointers exhaust the successor lists. After damaging the
    /// overlay, call [`Transport::sync_damage`] to mirror the damage
    /// onto the protocol ring (it no-ops for the other variants, so it
    /// is always safe to call unconditionally).
    Protocol(ChordProtocol),
}

impl Transport {
    /// Delivers one logical hop from `from` to `to` on `overlay`.
    ///
    /// The sender `from` is assumed functional (it is the node currently
    /// holding the message); the destination must be good; under
    /// [`Transport::Chord`] every intermediate node must be good as well.
    ///
    /// # Panics
    ///
    /// Panics (Chord transport) if either endpoint is an overlay node
    /// missing from the ring — the ring must cover all overlay nodes.
    pub fn deliver(&self, overlay: &Overlay, from: NodeId, to: NodeId) -> DeliveryOutcome {
        self.deliver_hint(overlay, from, to, None)
    }

    /// [`deliver`](Self::deliver) with an optional precomputed
    /// ring-position liveness mask (see
    /// [`ChordRing::fill_alive_positions`]). The mask must have been
    /// filled from the same liveness predicate the closure path would
    /// use — for the fault-free path, "the node is good" — in which
    /// case the routing decisions are bit-identical; the trial engine
    /// fills it once per trial and amortizes it across the whole route
    /// batch.
    pub fn deliver_hint(
        &self,
        overlay: &Overlay,
        from: NodeId,
        to: NodeId,
        alive: Option<&NodeBitSet>,
    ) -> DeliveryOutcome {
        if !overlay.is_good(to) {
            return DeliveryOutcome::Blocked;
        }
        match self {
            Transport::Direct => DeliveryOutcome::Delivered { hops: 1 },
            Transport::Chord(ring) => {
                // Filters are not ring members; final hop is direct.
                if overlay.role(to) == crate::node::Role::Filter {
                    return DeliveryOutcome::Delivered { hops: 1 };
                }
                let key = ring
                    .id_of(to)
                    .unwrap_or_else(|| panic!("{to} is not on the Chord ring"));
                let outcome = match alive {
                    Some(mask) => ring.lookup_avoiding_hops_masked(from, key, mask),
                    None => ring.lookup_avoiding_hops(from, key, |n| {
                        n == from || overlay.is_good(n)
                    }),
                };
                match outcome {
                    Some((owner, hops)) if owner == to => DeliveryOutcome::Delivered {
                        hops: hops.max(1),
                    },
                    _ => DeliveryOutcome::Blocked,
                }
            }
            Transport::Protocol(proto) => {
                if overlay.role(to) == crate::node::Role::Filter {
                    return DeliveryOutcome::Delivered { hops: 1 };
                }
                let (Some(from_id), Some(to_id)) =
                    (proto.chord_id_of(from), proto.chord_id_of(to))
                else {
                    return DeliveryOutcome::Blocked;
                };
                match proto.lookup_with_hops(from_id, to_id) {
                    Some((owner, hops)) if owner == to_id => {
                        DeliveryOutcome::Delivered { hops: hops.max(1) }
                    }
                    _ => DeliveryOutcome::Blocked,
                }
            }
        }
    }

    /// Fault-aware delivery with retry: like [`deliver`](Self::deliver),
    /// but every attempt consults the fault plane and failed attempts
    /// are retried per `retry` (exponential backoff in simulated ticks,
    /// bounded by the per-route deadline budget).
    ///
    /// With `faults = None` this is *exactly* [`deliver`] — one attempt,
    /// no fault draws, zero ticks — which is how zero-fault runs stay
    /// bit-identical to the fault-unaware code path.
    ///
    /// Fault semantics:
    ///
    /// - **Compromised destination** — blocked, no incident (that is the
    ///   attack, not a fault, and no amount of retrying helps).
    /// - **Crashed destination / crashed-out route** — blocked; benign
    ///   but persistent for the trial, so retries are not attempted
    ///   (resp. only attempted when misrouting makes reattempts vary).
    /// - **Loss** — transient: the attempt dies, the retry loop backs
    ///   off and tries again. This is the fault class retries recover.
    /// - **Delay / slow destination** — the hop succeeds with added
    ///   simulated ticks.
    /// - **Misroute** (Protocol transport) — the lookup wastes steps;
    ///   an exhausted hop budget fails the attempt, and a fresh attempt
    ///   redraws the misroute schedule.
    ///
    /// [`deliver`]: Self::deliver
    pub fn deliver_with(
        &self,
        overlay: &Overlay,
        from: NodeId,
        to: NodeId,
        faults: Option<&FaultPlan>,
        retry: &RetryPolicy,
    ) -> HopDelivery {
        self.deliver_with_hint(overlay, from, to, faults, retry, None)
    }

    /// [`deliver_with`](Self::deliver_with) with an optional
    /// precomputed ring-position liveness mask. When a fault plan is
    /// active the mask must encode "good **and** not benignly crashed"
    /// (the predicate [`attempt_via_substrate`](Self::deliver_with)
    /// uses); without a plan, plain "good". The trial engine owns that
    /// contract — it refreshes the mask once per trial, after attack
    /// damage and fault-plan creation.
    pub fn deliver_with_hint(
        &self,
        overlay: &Overlay,
        from: NodeId,
        to: NodeId,
        faults: Option<&FaultPlan>,
        retry: &RetryPolicy,
        alive: Option<&NodeBitSet>,
    ) -> HopDelivery {
        self.deliver_with_hint_priced(overlay, from, to, faults, retry, alive, None)
    }

    /// [`deliver_with_hint`](Self::deliver_with_hint) with an optional
    /// substrate-pricing override: when `substrate` is `Some`, each
    /// delivery attempt's routability check calls the closure instead
    /// of the built-in substrate walk.
    ///
    /// The caller owns the equivalence contract: the closure must
    /// return *exactly* what the built-in attempt would (it is how the
    /// trial engine plugs a per-trial hop memo under the fault ladder —
    /// sound for Chord with a trial-stable liveness mask, where the
    /// attempt is a pure function of `(from, to, mask)`). It must not
    /// be used for substrates whose attempts draw randomness (Protocol
    /// misrouting re-rolls per attempt).
    #[allow(clippy::too_many_arguments)]
    pub fn deliver_with_hint_priced(
        &self,
        overlay: &Overlay,
        from: NodeId,
        to: NodeId,
        faults: Option<&FaultPlan>,
        retry: &RetryPolicy,
        alive: Option<&NodeBitSet>,
        mut substrate: Option<&mut dyn FnMut(NodeId, NodeId) -> DeliveryOutcome>,
    ) -> HopDelivery {
        let Some(plan) = faults else {
            return HopDelivery {
                outcome: self.deliver_hint(overlay, from, to, alive),
                attempts: 1,
                ticks: 0,
                incidents: Vec::new(),
            };
        };
        let mut incidents = Vec::new();
        if !overlay.is_good(to) {
            // Compromised: not a fault, not retryable.
            return HopDelivery { outcome: DeliveryOutcome::Blocked, attempts: 1, ticks: 0, incidents };
        }
        if plan.is_crashed(to.0) {
            incidents.push(HopIncident::CrashedDestination);
            return HopDelivery { outcome: DeliveryOutcome::Blocked, attempts: 1, ticks: 0, incidents };
        }
        // A blocked substrate route only varies between attempts when
        // misrouting re-rolls the lookup; otherwise it is deterministic
        // for the trial and retrying it is pointless.
        let substrate_retryable = matches!(self, Transport::Protocol(_))
            && plan.config().misroute_rate > 0.0;
        let mut ticks = 0u64;
        let mut attempts = 0u32;
        while attempts < retry.max_attempts {
            attempts += 1;
            if attempts > 1 {
                let backoff = retry.backoff_before(attempts);
                if ticks.saturating_add(backoff) > retry.deadline {
                    incidents.push(HopIncident::DeadlineExhausted { ticks });
                    break;
                }
                ticks += backoff;
                incidents.push(HopIncident::Retry { attempt: attempts, backoff });
            }
            let hop = plan.draw_hop();
            if hop.delay_ticks > 0 {
                ticks += hop.delay_ticks;
                incidents.push(HopIncident::Delay { ticks: hop.delay_ticks });
            }
            if hop.lost {
                incidents.push(HopIncident::Loss { attempt: attempts });
                continue;
            }
            let attempt = match substrate.as_mut() {
                Some(price) => price(from, to),
                None => self.attempt_via_substrate(overlay, from, to, plan, alive),
            };
            match attempt {
                DeliveryOutcome::Delivered { hops } => {
                    let slow = plan.slow_penalty(to.0);
                    if slow > 0 {
                        ticks += slow;
                        incidents.push(HopIncident::Slow { ticks: slow });
                    }
                    return HopDelivery {
                        outcome: DeliveryOutcome::Delivered { hops },
                        attempts,
                        ticks,
                        incidents,
                    };
                }
                DeliveryOutcome::Blocked => {
                    if !substrate_retryable {
                        incidents.push(HopIncident::CrashedRoute);
                        break;
                    }
                    incidents.push(HopIncident::Misroute { attempt: attempts });
                }
            }
        }
        HopDelivery { outcome: DeliveryOutcome::Blocked, attempts, ticks, incidents }
    }

    /// One substrate delivery attempt under the fault plane: the
    /// fault-unaware [`deliver`](Self::deliver) path with benignly
    /// crashed nodes additionally excluded from routing, and (Protocol)
    /// per-step misroute draws. The destination has already been
    /// checked good and not crashed.
    fn attempt_via_substrate(
        &self,
        overlay: &Overlay,
        from: NodeId,
        to: NodeId,
        plan: &FaultPlan,
        alive: Option<&NodeBitSet>,
    ) -> DeliveryOutcome {
        match self {
            Transport::Direct => DeliveryOutcome::Delivered { hops: 1 },
            Transport::Chord(ring) => {
                if overlay.role(to) == crate::node::Role::Filter {
                    return DeliveryOutcome::Delivered { hops: 1 };
                }
                let key = ring
                    .id_of(to)
                    .unwrap_or_else(|| panic!("{to} is not on the Chord ring"));
                let outcome = match alive {
                    Some(mask) => ring.lookup_avoiding_hops_masked(from, key, mask),
                    None => ring.lookup_avoiding_hops(from, key, |n| {
                        n == from || (overlay.is_good(n) && !plan.is_crashed(n.0))
                    }),
                };
                match outcome {
                    Some((owner, hops)) if owner == to => DeliveryOutcome::Delivered {
                        hops: hops.max(1),
                    },
                    _ => DeliveryOutcome::Blocked,
                }
            }
            Transport::Protocol(proto) => {
                if overlay.role(to) == crate::node::Role::Filter {
                    return DeliveryOutcome::Delivered { hops: 1 };
                }
                let (Some(from_id), Some(to_id)) =
                    (proto.chord_id_of(from), proto.chord_id_of(to))
                else {
                    return DeliveryOutcome::Blocked;
                };
                match proto.lookup_with_hops_faulty(from_id, to_id, plan) {
                    Some((owner, hops)) if owner == to_id => {
                        DeliveryOutcome::Delivered { hops: hops.max(1) }
                    }
                    _ => DeliveryOutcome::Blocked,
                }
            }
        }
    }

    /// Degraded-mode delivery: abandon finger-table routing and walk
    /// successor lists toward the destination — the first
    /// graceful-degradation stage after [`deliver_with`] exhausts its
    /// retries. Slower (O(n) underlay hops) but immune to stale or
    /// Byzantine fingers. [`Transport::Direct`] has no alternate
    /// substrate path, so it is always `Blocked` there; filter
    /// destinations use a direct final hop and likewise cannot be
    /// walked to.
    ///
    /// [`deliver_with`]: Self::deliver_with
    pub fn deliver_degraded(
        &self,
        overlay: &Overlay,
        from: NodeId,
        to: NodeId,
        faults: Option<&FaultPlan>,
    ) -> DeliveryOutcome {
        self.deliver_degraded_hint(overlay, from, to, faults, None)
    }

    /// [`deliver_degraded`](Self::deliver_degraded) with an optional
    /// precomputed ring-position liveness mask (same contract as
    /// [`deliver_with_hint`](Self::deliver_with_hint)).
    pub fn deliver_degraded_hint(
        &self,
        overlay: &Overlay,
        from: NodeId,
        to: NodeId,
        faults: Option<&FaultPlan>,
        alive: Option<&NodeBitSet>,
    ) -> DeliveryOutcome {
        if !overlay.is_good(to) {
            return DeliveryOutcome::Blocked;
        }
        if let Some(plan) = faults {
            if plan.is_crashed(to.0) {
                return DeliveryOutcome::Blocked;
            }
        }
        let crashed = |n: NodeId| faults.is_some_and(|p| p.is_crashed(n.0));
        match self {
            Transport::Direct => DeliveryOutcome::Blocked,
            Transport::Chord(ring) => {
                if overlay.role(to) == crate::node::Role::Filter {
                    return DeliveryOutcome::Blocked;
                }
                let key = ring
                    .id_of(to)
                    .unwrap_or_else(|| panic!("{to} is not on the Chord ring"));
                let outcome = match alive {
                    Some(mask) => ring.successor_walk_hops_masked(from, key, mask),
                    None => ring.successor_walk_hops(from, key, |n| {
                        n == from || (overlay.is_good(n) && !crashed(n))
                    }),
                };
                match outcome {
                    Some((owner, hops)) if owner == to => DeliveryOutcome::Delivered {
                        hops: hops.max(1),
                    },
                    _ => DeliveryOutcome::Blocked,
                }
            }
            Transport::Protocol(proto) => {
                if overlay.role(to) == crate::node::Role::Filter {
                    return DeliveryOutcome::Blocked;
                }
                let (Some(from_id), Some(to_id)) =
                    (proto.chord_id_of(from), proto.chord_id_of(to))
                else {
                    return DeliveryOutcome::Blocked;
                };
                match proto.successor_walk(from_id, to_id, faults) {
                    Some((owner, hops)) if owner == to_id => {
                        DeliveryOutcome::Delivered { hops: hops.max(1) }
                    }
                    _ => DeliveryOutcome::Blocked,
                }
            }
        }
    }

    /// Mirrors overlay damage onto the transport substrate. For
    /// [`Transport::Protocol`] this kills every non-good overlay node on
    /// the protocol ring (the former per-call-site manual
    /// [`ChordProtocol::kill`] loop); for the other variants it is a
    /// no-op — their routing reads `Overlay` liveness directly. Always
    /// safe to call after applying attack or churn damage.
    pub fn sync_damage(&mut self, overlay: &Overlay) {
        if let Transport::Protocol(proto) = self {
            proto.sync_overlay_damage(overlay);
        }
        debug_assert!(self.damage_synced(overlay));
    }

    /// Whether substrate liveness is consistent with overlay damage
    /// (trivially true for [`Transport::Direct`] and
    /// [`Transport::Chord`], which consult the overlay directly).
    pub fn damage_synced(&self, overlay: &Overlay) -> bool {
        match self {
            Transport::Protocol(proto) => proto.damage_synced(overlay),
            _ => true,
        }
    }

    /// Refreshes a caller-owned ring-position liveness mask for this
    /// transport's substrate, encoding exactly the predicate the
    /// closure-based lookups would evaluate per candidate: the node is
    /// good and, when a fault plan is active, not benignly crashed.
    /// Returns `true` when the transport has a masked fast path
    /// ([`Transport::Chord`]); for the other variants the mask is
    /// unused and left untouched.
    ///
    /// Call once per trial after attack damage and fault-plan creation,
    /// then pass the mask to the `_hint` delivery variants for the
    /// trial's whole route batch.
    pub fn refresh_alive_positions(
        &self,
        overlay: &Overlay,
        faults: Option<&FaultPlan>,
        mask: &mut NodeBitSet,
    ) -> bool {
        match self {
            Transport::Chord(ring) => {
                match faults {
                    Some(plan) => ring.fill_alive_positions(
                        |n| overlay.is_good(n) && !plan.is_crashed(n.0),
                        mask,
                    ),
                    None => ring.fill_alive_positions(|n| overlay.is_good(n), mask),
                }
                true
            }
            _ => false,
        }
    }

    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            Transport::Direct => "direct",
            Transport::Chord(_) => "chord",
            Transport::Protocol(_) => "protocol",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeStatus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};

    fn setup(seed: u64) -> (Overlay, ChordRing) {
        let scenario = Scenario::builder()
            .system(SystemParams::new(400, 40, 0.5).unwrap())
            .layers(2)
            .mapping(MappingDegree::OneTo(3))
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let overlay = Overlay::build(&scenario, &mut rng);
        let members: Vec<NodeId> = overlay.overlay_ids().collect();
        let ring = ChordRing::build(&mut rng, &members);
        (overlay, ring)
    }

    #[test]
    fn direct_delivery_depends_only_on_destination() {
        let (mut overlay, _) = setup(1);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        assert!(Transport::Direct.deliver(&overlay, from, to).is_delivered());
        overlay.set_status(to, NodeStatus::Congested);
        assert_eq!(
            Transport::Direct.deliver(&overlay, from, to),
            DeliveryOutcome::Blocked
        );
    }

    #[test]
    fn chord_delivery_works_on_clean_overlay() {
        let (overlay, ring) = setup(2);
        let transport = Transport::Chord(ring);
        let from = overlay.layer_members(1)[0];
        for &to in overlay.neighbors(from) {
            let out = transport.deliver(&overlay, from, to);
            assert!(out.is_delivered(), "{from} -> {to}: {out:?}");
        }
    }

    #[test]
    fn chord_delivery_blocked_by_intermediates() {
        let (mut overlay, ring) = setup(3);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        // Find the clean-path intermediates and kill them plus everyone
        // else except the endpoints: routing must fail.
        for id in overlay.overlay_ids().collect::<Vec<_>>() {
            if id != from && id != to {
                overlay.set_status(id, NodeStatus::Congested);
            }
        }
        let transport = Transport::Chord(ring);
        let out = transport.deliver(&overlay, from, to);
        // Either the ring happens to connect them directly (fingers), or
        // the hop is blocked; both are legal, but with 400 nodes a direct
        // finger to an arbitrary neighbor is rare.
        if let DeliveryOutcome::Delivered { hops } = out {
            assert_eq!(hops, 1, "only a direct finger could survive");
        }
    }

    #[test]
    fn filters_use_direct_final_hop() {
        let (overlay, ring) = setup(4);
        let transport = Transport::Chord(ring);
        let last_layer = overlay.layer_count();
        let servlet = overlay.layer_members(last_layer)[0];
        let filter = overlay.neighbors(servlet)[0];
        let out = transport.deliver(&overlay, servlet, filter);
        assert_eq!(out, DeliveryOutcome::Delivered { hops: 1 });
    }

    #[test]
    fn labels_stable() {
        let (_, ring) = setup(5);
        assert_eq!(Transport::Direct.label(), "direct");
        assert_eq!(Transport::Chord(ring).label(), "chord");
    }

    fn protocol_over(overlay: &Overlay, seed: u64) -> crate::protocol::ChordProtocol {
        use crate::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proto = ChordProtocol::new(ProtocolConfig::default());
        let mut sched = sos_des::Scheduler::new();
        let members: Vec<NodeId> = overlay.overlay_ids().collect();
        let mut ids: Vec<u64> = Vec::new();
        for (i, &m) in members.iter().enumerate() {
            let mut id = rng.gen::<u64>();
            while ids.contains(&id) {
                id = rng.gen::<u64>();
            }
            ids.push(id);
            if i == 0 {
                proto.bootstrap(id, m, &mut sched);
            } else {
                let via = ids[rng.gen_range(0..i)];
                proto.join(id, m, via, &mut sched);
                let now = sched.now();
                run_maintenance(&mut proto, &mut sched, now + 25);
            }
        }
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 3_000);
        assert!(proto.is_converged(), "test ring must converge");
        proto
    }

    #[test]
    fn protocol_transport_delivers_on_converged_ring() {
        let (overlay, _) = setup(6);
        let proto = protocol_over(&overlay, 60);
        let transport = Transport::Protocol(proto);
        assert_eq!(transport.label(), "protocol");
        let from = overlay.layer_members(1)[0];
        for &to in overlay.neighbors(from) {
            let out = transport.deliver(&overlay, from, to);
            assert!(out.is_delivered(), "{from} -> {to}: {out:?}");
        }
        // Servlet → filter hop stays direct.
        let servlet = overlay.layer_members(overlay.layer_count())[0];
        let filter = overlay.neighbors(servlet)[0];
        assert_eq!(
            transport.deliver(&overlay, servlet, filter),
            DeliveryOutcome::Delivered { hops: 1 }
        );
    }

    #[test]
    fn deliver_with_no_plan_matches_deliver_exactly() {
        let (mut overlay, ring) = setup(8);
        let transport = Transport::Chord(ring);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        for retry in [RetryPolicy::none(), RetryPolicy::new(5, 2, 100)] {
            let d = transport.deliver_with(&overlay, from, to, None, &retry);
            assert_eq!(d.outcome, transport.deliver(&overlay, from, to));
            assert_eq!(d.attempts, 1);
            assert_eq!(d.ticks, 0);
            assert!(d.incidents.is_empty());
        }
        overlay.set_status(to, NodeStatus::Congested);
        let d = transport.deliver_with(&overlay, from, to, None, &RetryPolicy::new(5, 2, 100));
        assert_eq!(d.outcome, DeliveryOutcome::Blocked);
        assert!(d.incidents.is_empty(), "compromise is not a fault");
    }

    #[test]
    fn retries_recover_transient_loss() {
        use sos_faults::FaultConfig;
        let (overlay, _) = setup(9);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        let cfg = FaultConfig::none().loss(0.6).seed(17);
        // Find a trial whose first draw is a loss, so the single-attempt
        // policy fails where the retrying one succeeds.
        let transport = Transport::Direct;
        let mut saw_recovery = false;
        for trial in 0..64 {
            let plan = sos_faults::FaultPlan::new(&cfg, trial);
            let once = transport.deliver_with(&overlay, from, to, Some(&plan), &RetryPolicy::none());
            let plan = sos_faults::FaultPlan::new(&cfg, trial);
            let many =
                transport.deliver_with(&overlay, from, to, Some(&plan), &RetryPolicy::new(8, 1, 10_000));
            if !once.is_delivered() && many.is_delivered() {
                assert!(many.attempts > 1);
                assert!(many.incidents.iter().any(|i| matches!(i, HopIncident::Loss { .. })));
                assert!(many.incidents.iter().any(|i| matches!(i, HopIncident::Retry { .. })));
                assert!(many.ticks > 0, "backoff must cost simulated ticks");
                saw_recovery = true;
                break;
            }
        }
        assert!(saw_recovery, "60% loss must show a recovered trial in 64");
    }

    #[test]
    fn crashed_destination_is_not_retried() {
        use sos_faults::{FaultConfig, FaultPlan};
        let (overlay, _) = setup(10);
        let from = overlay.layer_members(1)[0];
        let cfg = FaultConfig::none().crash(0.5).seed(3);
        let plan = FaultPlan::new(&cfg, 0);
        let to = *overlay
            .neighbors(from)
            .iter()
            .find(|n| plan.is_crashed(n.0))
            .expect("50% crash rate must hit a neighbor");
        let d = Transport::Direct.deliver_with(
            &overlay,
            from,
            to,
            Some(&plan),
            &RetryPolicy::new(6, 2, 10_000),
        );
        assert_eq!(d.outcome, DeliveryOutcome::Blocked);
        assert_eq!(d.attempts, 1, "persistent fault: retrying is pointless");
        assert_eq!(d.incidents, vec![HopIncident::CrashedDestination]);
    }

    #[test]
    fn deadline_budget_caps_retries() {
        use sos_faults::{FaultConfig, FaultPlan};
        let (overlay, _) = setup(11);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        let cfg = FaultConfig::none().loss(1.0).seed(1);
        let plan = FaultPlan::new(&cfg, 0);
        // Unlimited attempts but a tiny deadline: the budget must stop
        // the loop long before 1000 attempts.
        let d = Transport::Direct.deliver_with(
            &overlay,
            from,
            to,
            Some(&plan),
            &RetryPolicy::new(1000, 4, 20),
        );
        assert_eq!(d.outcome, DeliveryOutcome::Blocked);
        assert!(d.attempts < 10, "deadline must cap attempts, got {}", d.attempts);
        assert!(d
            .incidents
            .iter()
            .any(|i| matches!(i, HopIncident::DeadlineExhausted { .. })));
        assert!(d.ticks <= 20);
    }

    #[test]
    fn degraded_walk_survives_finger_blockade() {
        use sos_faults::{FaultConfig, FaultPlan};
        let (overlay, ring) = setup(12);
        let transport = Transport::Chord(ring.clone());
        let from = overlay.layer_members(1)[0];
        // A non-filter destination the greedy lookup reaches cleanly.
        let to = *overlay
            .neighbors(from)
            .iter()
            .find(|&&n| overlay.role(n) != crate::node::Role::Filter)
            .unwrap();
        let cfg = FaultConfig::none().loss(0.01).seed(2);
        let plan = FaultPlan::new(&cfg, 0);
        let walked = transport.deliver_degraded(&overlay, from, to, Some(&plan));
        assert!(
            walked.is_delivered(),
            "successor walk on a clean overlay must reach {to}"
        );
        // Direct transport has no degraded mode.
        assert_eq!(
            Transport::Direct.deliver_degraded(&overlay, from, to, Some(&plan)),
            DeliveryOutcome::Blocked
        );
    }

    #[test]
    fn sync_damage_mirrors_overlay_onto_protocol() {
        let (mut overlay, _) = setup(13);
        let proto = protocol_over(&overlay, 130);
        let mut transport = Transport::Protocol(proto);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        overlay.set_status(to, NodeStatus::Broken);
        assert!(!transport.damage_synced(&overlay));
        transport.sync_damage(&overlay);
        assert!(transport.damage_synced(&overlay));
        let Transport::Protocol(proto) = &transport else { unreachable!() };
        assert!(!proto.is_alive(proto.chord_id_of(to).unwrap()));
        // No-op (but still consistent) for the oracle transports.
        let mut direct = Transport::Direct;
        direct.sync_damage(&overlay);
        assert!(direct.damage_synced(&overlay));
    }

    #[test]
    fn protocol_transport_blocks_when_destination_dead_on_ring() {
        let (overlay, _) = setup(7);
        let mut proto = protocol_over(&overlay, 70);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        let to_id = proto.chord_id_of(to).unwrap();
        proto.kill(to_id);
        let transport = Transport::Protocol(proto);
        // Overlay status is still Good, but the ring lost the node: the
        // stale-infrastructure failure mode.
        assert_eq!(
            transport.deliver(&overlay, from, to),
            DeliveryOutcome::Blocked
        );
    }
}
