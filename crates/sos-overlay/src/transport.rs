//! How one logical overlay hop (layer `i−1` node → layer `i` neighbor)
//! is realized.
//!
//! The ICDCS analysis treats a hop as a direct message: it succeeds iff
//! the destination is good. The original SOS system actually routes each
//! hop over Chord, so a hop can *also* fail because every Chord route to
//! the destination is blocked by compromised intermediate nodes. The
//! difference between the two transports is measured by the
//! `ablation-chord` experiment.

use crate::chord::ChordRing;
use crate::node::NodeId;
use crate::overlay::Overlay;
use crate::protocol::ChordProtocol;

/// Outcome of delivering one logical hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The message reached the destination in `hops` underlay hops.
    Delivered {
        /// Underlay hops traversed (1 for direct transport).
        hops: usize,
    },
    /// No usable route: the destination is bad, or (Chord transport)
    /// every route is blocked by bad intermediate nodes.
    Blocked,
}

impl DeliveryOutcome {
    /// Whether the hop succeeded.
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryOutcome::Delivered { .. })
    }
}

/// Transport used between overlay nodes.
#[derive(Debug, Clone)]
pub enum Transport {
    /// Hops are direct messages — the paper's abstraction.
    Direct,
    /// Hops traverse the Chord ring; intermediate nodes must be good.
    /// Filters are infrastructure off the ring, so the final
    /// servlet→filter hop is always direct.
    Chord(ChordRing),
    /// Hops resolve through the *protocol* state (possibly stale
    /// fingers and successor lists) — the transport for measuring what
    /// an attack costs while the ring is still converging. A hop fails
    /// when the protocol's lookup misroutes (stale owner) or dead
    /// pointers exhaust the successor lists. Callers are responsible
    /// for mirroring overlay damage onto the protocol via
    /// [`ChordProtocol::kill`].
    Protocol(ChordProtocol),
}

impl Transport {
    /// Delivers one logical hop from `from` to `to` on `overlay`.
    ///
    /// The sender `from` is assumed functional (it is the node currently
    /// holding the message); the destination must be good; under
    /// [`Transport::Chord`] every intermediate node must be good as well.
    ///
    /// # Panics
    ///
    /// Panics (Chord transport) if either endpoint is an overlay node
    /// missing from the ring — the ring must cover all overlay nodes.
    pub fn deliver(&self, overlay: &Overlay, from: NodeId, to: NodeId) -> DeliveryOutcome {
        if !overlay.is_good(to) {
            return DeliveryOutcome::Blocked;
        }
        match self {
            Transport::Direct => DeliveryOutcome::Delivered { hops: 1 },
            Transport::Chord(ring) => {
                // Filters are not ring members; final hop is direct.
                if overlay.role(to) == crate::node::Role::Filter {
                    return DeliveryOutcome::Delivered { hops: 1 };
                }
                let key = ring
                    .id_of(to)
                    .unwrap_or_else(|| panic!("{to} is not on the Chord ring"));
                let outcome = ring.lookup_avoiding(from, key, |n| {
                    n == from || overlay.is_good(n)
                });
                match outcome {
                    Some(out) if out.owner == to => DeliveryOutcome::Delivered {
                        hops: out.hops().max(1),
                    },
                    _ => DeliveryOutcome::Blocked,
                }
            }
            Transport::Protocol(proto) => {
                if overlay.role(to) == crate::node::Role::Filter {
                    return DeliveryOutcome::Delivered { hops: 1 };
                }
                let (Some(from_id), Some(to_id)) =
                    (proto.chord_id_of(from), proto.chord_id_of(to))
                else {
                    return DeliveryOutcome::Blocked;
                };
                match proto.lookup_with_hops(from_id, to_id) {
                    Some((owner, hops)) if owner == to_id => {
                        DeliveryOutcome::Delivered { hops: hops.max(1) }
                    }
                    _ => DeliveryOutcome::Blocked,
                }
            }
        }
    }

    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            Transport::Direct => "direct",
            Transport::Chord(_) => "chord",
            Transport::Protocol(_) => "protocol",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeStatus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, Scenario, SystemParams};

    fn setup(seed: u64) -> (Overlay, ChordRing) {
        let scenario = Scenario::builder()
            .system(SystemParams::new(400, 40, 0.5).unwrap())
            .layers(2)
            .mapping(MappingDegree::OneTo(3))
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let overlay = Overlay::build(&scenario, &mut rng);
        let members: Vec<NodeId> = overlay.overlay_ids().collect();
        let ring = ChordRing::build(&mut rng, &members);
        (overlay, ring)
    }

    #[test]
    fn direct_delivery_depends_only_on_destination() {
        let (mut overlay, _) = setup(1);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        assert!(Transport::Direct.deliver(&overlay, from, to).is_delivered());
        overlay.set_status(to, NodeStatus::Congested);
        assert_eq!(
            Transport::Direct.deliver(&overlay, from, to),
            DeliveryOutcome::Blocked
        );
    }

    #[test]
    fn chord_delivery_works_on_clean_overlay() {
        let (overlay, ring) = setup(2);
        let transport = Transport::Chord(ring);
        let from = overlay.layer_members(1)[0];
        for &to in overlay.neighbors(from) {
            let out = transport.deliver(&overlay, from, to);
            assert!(out.is_delivered(), "{from} -> {to}: {out:?}");
        }
    }

    #[test]
    fn chord_delivery_blocked_by_intermediates() {
        let (mut overlay, ring) = setup(3);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        // Find the clean-path intermediates and kill them plus everyone
        // else except the endpoints: routing must fail.
        for id in overlay.overlay_ids().collect::<Vec<_>>() {
            if id != from && id != to {
                overlay.set_status(id, NodeStatus::Congested);
            }
        }
        let transport = Transport::Chord(ring);
        let out = transport.deliver(&overlay, from, to);
        // Either the ring happens to connect them directly (fingers), or
        // the hop is blocked; both are legal, but with 400 nodes a direct
        // finger to an arbitrary neighbor is rare.
        if let DeliveryOutcome::Delivered { hops } = out {
            assert_eq!(hops, 1, "only a direct finger could survive");
        }
    }

    #[test]
    fn filters_use_direct_final_hop() {
        let (overlay, ring) = setup(4);
        let transport = Transport::Chord(ring);
        let last_layer = overlay.layer_count();
        let servlet = overlay.layer_members(last_layer)[0];
        let filter = overlay.neighbors(servlet)[0];
        let out = transport.deliver(&overlay, servlet, filter);
        assert_eq!(out, DeliveryOutcome::Delivered { hops: 1 });
    }

    #[test]
    fn labels_stable() {
        let (_, ring) = setup(5);
        assert_eq!(Transport::Direct.label(), "direct");
        assert_eq!(Transport::Chord(ring).label(), "chord");
    }

    fn protocol_over(overlay: &Overlay, seed: u64) -> crate::protocol::ChordProtocol {
        use crate::protocol::{run_maintenance, ChordProtocol, ProtocolConfig};
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proto = ChordProtocol::new(ProtocolConfig::default());
        let mut sched = sos_des::Scheduler::new();
        let members: Vec<NodeId> = overlay.overlay_ids().collect();
        let mut ids: Vec<u64> = Vec::new();
        for (i, &m) in members.iter().enumerate() {
            let mut id = rng.gen::<u64>();
            while ids.contains(&id) {
                id = rng.gen::<u64>();
            }
            ids.push(id);
            if i == 0 {
                proto.bootstrap(id, m, &mut sched);
            } else {
                let via = ids[rng.gen_range(0..i)];
                proto.join(id, m, via, &mut sched);
                let now = sched.now();
                run_maintenance(&mut proto, &mut sched, now + 25);
            }
        }
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 3_000);
        assert!(proto.is_converged(), "test ring must converge");
        proto
    }

    #[test]
    fn protocol_transport_delivers_on_converged_ring() {
        let (overlay, _) = setup(6);
        let proto = protocol_over(&overlay, 60);
        let transport = Transport::Protocol(proto);
        assert_eq!(transport.label(), "protocol");
        let from = overlay.layer_members(1)[0];
        for &to in overlay.neighbors(from) {
            let out = transport.deliver(&overlay, from, to);
            assert!(out.is_delivered(), "{from} -> {to}: {out:?}");
        }
        // Servlet → filter hop stays direct.
        let servlet = overlay.layer_members(overlay.layer_count())[0];
        let filter = overlay.neighbors(servlet)[0];
        assert_eq!(
            transport.deliver(&overlay, servlet, filter),
            DeliveryOutcome::Delivered { hops: 1 }
        );
    }

    #[test]
    fn protocol_transport_blocks_when_destination_dead_on_ring() {
        let (overlay, _) = setup(7);
        let mut proto = protocol_over(&overlay, 70);
        let from = overlay.layer_members(1)[0];
        let to = overlay.neighbors(from)[0];
        let to_id = proto.chord_id_of(to).unwrap();
        proto.kill(to_id);
        let transport = Transport::Protocol(proto);
        // Overlay status is still Good, but the ring lost the node: the
        // stale-infrastructure failure mode.
        assert_eq!(
            transport.deliver(&overlay, from, to),
            DeliveryOutcome::Blocked
        );
    }
}
