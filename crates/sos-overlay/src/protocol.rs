//! The Chord *protocol*: join, stabilize, notify, fix-fingers and
//! failure recovery, simulated message by message.
//!
//! [`crate::chord::ChordRing`] is an oracle: a ring built with global
//! knowledge, correct by construction. Real Chord nodes converge to
//! that state through periodic maintenance — and while they are
//! converging (after churn or failures) their pointers are stale, which
//! is exactly the regime a DDoS attacker exploits. This module
//! implements the SIGCOMM 2001 maintenance protocol over the
//! deterministic event engine in `sos-des`:
//!
//! * **join** — a node asks any bootstrap node to find its successor
//!   and splices itself in;
//! * **stabilize** (periodic) — ask your successor for its predecessor,
//!   adopt it if it sits between you, refresh the successor list, and
//!   `notify` the successor of yourself;
//! * **fix-fingers** (periodic) — round-robin re-lookup of one finger
//!   per firing;
//! * **failure recovery** — dead successors are skipped via the
//!   successor list; dead fingers are skipped during routing and
//!   eventually repaired by fix-fingers.
//!
//! Lookups route iteratively through whatever (possibly stale) state
//! nodes currently hold, so convergence can be *measured*: see
//! [`ChordProtocol::is_converged`] and the tests, which compare against
//! the oracle ring after every scenario.

use crate::node::NodeId;
use crate::overlay::Overlay;
use sos_des::{run_until, Scheduler, SimTime, Simulation, StepOutcome};
use sos_faults::FaultPlan;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};

/// Protocol timing parameters, in simulated ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Interval between stabilize firings per node.
    pub stabilize_interval: u64,
    /// Interval between fix-fingers firings per node.
    pub fix_fingers_interval: u64,
    /// Successor-list length (fault tolerance).
    pub successor_list_len: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            stabilize_interval: 10,
            fix_fingers_interval: 15,
            successor_list_len: 8,
        }
    }
}

/// Identifier-space size (bits).
const ID_BITS: usize = 64;

/// One protocol participant's local state.
#[derive(Debug, Clone)]
struct ProtoNode {
    overlay: NodeId,
    alive: bool,
    predecessor: Option<u64>,
    /// Successor list, nearest first. Invariant: non-empty for alive
    /// nodes that have joined.
    successors: Vec<u64>,
    /// `fingers[k] ≈ successor(id + 2^k)`; entries may be stale.
    fingers: Vec<u64>,
    next_finger: usize,
}

/// Maintenance events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceEvent {
    /// Periodic stabilize at the node with this Chord id.
    Stabilize(u64),
    /// Periodic fix-fingers at the node with this Chord id.
    FixFingers(u64),
}

/// The protocol simulator: all participants plus their timers.
#[derive(Debug, Clone)]
pub struct ChordProtocol {
    cfg: ProtocolConfig,
    nodes: BTreeMap<u64, ProtoNode>,
    id_of_overlay: HashMap<NodeId, u64>,
    lookups_issued: Cell<u64>,
}

impl ChordProtocol {
    /// Creates an empty network.
    pub fn new(cfg: ProtocolConfig) -> Self {
        ChordProtocol {
            cfg,
            nodes: BTreeMap::new(),
            id_of_overlay: HashMap::new(),
            lookups_issued: Cell::new(0),
        }
    }

    /// Number of alive participants.
    pub fn alive_count(&self) -> usize {
        self.nodes.values().filter(|n| n.alive).count()
    }

    /// Total lookups routed so far (join + fix-finger + client).
    pub fn lookups_issued(&self) -> u64 {
        self.lookups_issued.get()
    }

    /// Bootstraps the very first node (it is its own successor) and
    /// schedules its timers.
    ///
    /// # Panics
    ///
    /// Panics if the network is non-empty or the id collides.
    pub fn bootstrap(
        &mut self,
        id: u64,
        overlay: NodeId,
        sched: &mut Scheduler<MaintenanceEvent>,
    ) {
        assert!(self.nodes.is_empty(), "bootstrap requires an empty network");
        self.nodes.insert(
            id,
            ProtoNode {
                overlay,
                alive: true,
                predecessor: None,
                successors: vec![id],
                fingers: vec![id; ID_BITS],
                next_finger: 0,
            },
        );
        self.id_of_overlay.insert(overlay, id);
        self.schedule_timers(id, sched);
    }

    /// Joins a new node via an alive bootstrap contact and schedules its
    /// timers. The successor is found by routing through current state.
    ///
    /// # Panics
    ///
    /// Panics on id collision or a dead/unknown bootstrap.
    pub fn join(
        &mut self,
        id: u64,
        overlay: NodeId,
        via: u64,
        sched: &mut Scheduler<MaintenanceEvent>,
    ) {
        assert!(!self.nodes.contains_key(&id), "chord id {id} already joined");
        assert!(
            self.nodes.get(&via).map(|n| n.alive).unwrap_or(false),
            "bootstrap {via} is not an alive member"
        );
        // Under heavy churn the join lookup can dead-end in stale
        // state; join with the bootstrap itself as the approximate
        // successor in that case — stabilization corrects the position
        // within a few periods (weakly consistent join, as in Chord's
        // handling of concurrent operations).
        let succ = self
            .route_successor(via, id)
            .map(|(s, _)| s)
            .unwrap_or(via);
        self.nodes.insert(
            id,
            ProtoNode {
                overlay,
                alive: true,
                predecessor: None,
                successors: vec![succ],
                fingers: vec![succ; ID_BITS],
                next_finger: 0,
            },
        );
        self.id_of_overlay.insert(overlay, id);
        self.schedule_timers(id, sched);
    }

    /// Marks a node dead. Its state freezes; peers discover the failure
    /// through timeouts (modelled as skipping dead entries).
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn kill(&mut self, id: u64) {
        self.nodes
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown chord id {id}"))
            .alive = false;
    }

    /// Whether the node with this Chord id is alive on the ring.
    pub fn is_alive(&self, id: u64) -> bool {
        self.nodes.get(&id).map(|n| n.alive).unwrap_or(false)
    }

    /// The current successor list of `id`, nearest first (alive nodes
    /// only have meaningful lists; dead nodes' state is frozen).
    pub fn successor_list_of(&self, id: u64) -> Option<&[u64]> {
        self.nodes.get(&id).map(|n| n.successors.as_slice())
    }

    /// Chord ids of all alive participants, in ring order.
    pub fn alive_ids(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.alive)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Mirrors overlay damage onto the ring: every overlay node that is
    /// no longer good is killed here (if it joined and is still marked
    /// alive). Ring damage is one-way — `Overlay::reset_statuses` does
    /// not resurrect ring nodes, matching real infrastructure where a
    /// crashed Chord participant must re-join.
    pub fn sync_overlay_damage(&mut self, overlay: &Overlay) {
        for node in overlay.overlay_ids() {
            if !overlay.is_good(node) {
                if let Some(&id) = self.id_of_overlay.get(&node) {
                    if let Some(p) = self.nodes.get_mut(&id) {
                        p.alive = false;
                    }
                }
            }
        }
        debug_assert!(self.damage_synced(overlay));
    }

    /// Whether ring liveness is consistent with overlay damage: no
    /// overlay node that is not good is still alive on the ring.
    pub fn damage_synced(&self, overlay: &Overlay) -> bool {
        overlay.overlay_ids().all(|node| {
            overlay.is_good(node)
                || self
                    .id_of_overlay
                    .get(&node)
                    .map(|id| !self.is_alive(*id))
                    .unwrap_or(true)
        })
    }

    /// The overlay node behind a Chord id, if alive.
    pub fn overlay_of(&self, id: u64) -> Option<NodeId> {
        self.nodes.get(&id).filter(|n| n.alive).map(|n| n.overlay)
    }

    /// The Chord id of an overlay node, if it ever joined (dead nodes
    /// keep their id; check liveness separately).
    pub fn chord_id_of(&self, overlay: NodeId) -> Option<u64> {
        self.id_of_overlay.get(&overlay).copied()
    }

    /// Ground truth: the alive successor of `key` by global knowledge.
    pub fn oracle_successor(&self, key: u64) -> Option<u64> {
        let alive: Vec<u64> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.alive)
            .map(|(&id, _)| id)
            .collect();
        if alive.is_empty() {
            return None;
        }
        let pos = alive.partition_point(|&x| x < key);
        Some(if pos == alive.len() { alive[0] } else { alive[pos] })
    }

    /// Routes a lookup for `key` starting at alive node `from`, using
    /// only local state (fingers + successor lists), skipping dead
    /// nodes. Returns the id the protocol currently believes owns the
    /// key — equal to [`oracle_successor`](Self::oracle_successor) once
    /// converged.
    pub fn lookup(&self, from: u64, key: u64) -> Option<u64> {
        self.route_successor(from, key).map(|(owner, _)| owner)
    }

    /// Like [`lookup`](Self::lookup) but also reports the hop count the
    /// iterative routing took.
    pub fn lookup_with_hops(&self, from: u64, key: u64) -> Option<(u64, usize)> {
        self.route_successor(from, key)
    }

    /// Fault-aware lookup: like [`lookup_with_hops`], but the fault
    /// plane is consulted on every routing step. Benignly crashed nodes
    /// (per [`FaultPlan::is_crashed`]) are treated as dead in addition
    /// to ring liveness, and each step draws a Byzantine-misroute
    /// decision — a misrouted step wastes a hop without making progress
    /// (the query went to the wrong node and must be reissued), so heavy
    /// misrouting can exhaust the hop budget and fail the lookup.
    ///
    /// [`lookup_with_hops`]: Self::lookup_with_hops
    pub fn lookup_with_hops_faulty(
        &self,
        from: u64,
        key: u64,
        plan: &FaultPlan,
    ) -> Option<(u64, usize)> {
        self.route_successor_with(from, key, Some(plan))
    }

    /// Degraded-mode delivery: abandon finger-table routing and walk
    /// successor lists hop by hop until reaching the node that owns
    /// `key`. Slower (O(n) hops) but immune to stale or Byzantine
    /// fingers — the graceful-degradation fallback after retries on the
    /// normal lookup are exhausted. Crashed nodes (fault plane) are
    /// skipped like dead ones.
    pub fn successor_walk(
        &self,
        from: u64,
        key: u64,
        plan: Option<&FaultPlan>,
    ) -> Option<(u64, usize)> {
        let mut current = from;
        let mut hops = 0usize;
        // Walking strictly clockwise visits each alive node at most once.
        for _ in 0..=self.nodes.len() {
            let succ = self.first_usable_successor(current, plan)?;
            hops += 1;
            if in_half_open_interval(current, succ, key) || succ == current {
                return Some((succ, hops));
            }
            current = succ;
        }
        None
    }

    /// Whether every alive node's *immediate* successor pointer
    /// (`successors[0]`, not the fault-tolerant fallback through the
    /// list) matches the oracle ring — the strict Chord convergence
    /// criterion. Routing stays correct through the successor list even
    /// while this is false; stabilization is what repairs the pointer.
    pub fn is_converged(&self) -> bool {
        self.convergence_fraction() == 1.0
    }

    /// Fraction of alive nodes whose immediate successor pointer is
    /// correct.
    pub fn convergence_fraction(&self) -> f64 {
        let alive: Vec<u64> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.alive)
            .map(|(&id, _)| id)
            .collect();
        if alive.len() <= 1 {
            return 1.0;
        }
        let correct = alive
            .iter()
            .enumerate()
            .filter(|&(i, &id)| {
                self.nodes[&id].successors.first().copied()
                    == Some(alive[(i + 1) % alive.len()])
            })
            .count();
        correct as f64 / alive.len() as f64
    }

    fn schedule_timers(&self, id: u64, sched: &mut Scheduler<MaintenanceEvent>) {
        sched.schedule_in(self.cfg.stabilize_interval, MaintenanceEvent::Stabilize(id));
        sched.schedule_in(
            self.cfg.fix_fingers_interval,
            MaintenanceEvent::FixFingers(id),
        );
    }

    /// Ring liveness plus (when a fault plan is active) benign-crash
    /// state: the node must be alive *and* not crashed by the fault
    /// plane to be used for routing.
    fn usable(&self, id: u64, plan: Option<&FaultPlan>) -> bool {
        match self.nodes.get(&id) {
            Some(n) => {
                n.alive && plan.is_none_or(|p| !p.is_crashed(n.overlay.0))
            }
            None => false,
        }
    }

    fn first_alive_successor(&self, id: u64) -> Option<u64> {
        self.first_usable_successor(id, None)
    }

    fn first_usable_successor(&self, id: u64, plan: Option<&FaultPlan>) -> Option<u64> {
        let node = self.nodes.get(&id)?;
        node.successors
            .iter()
            .find(|&&s| self.usable(s, plan))
            .copied()
    }

    /// Emergency repair source when a node's whole successor list has
    /// died: the alive finger closest clockwise from `id` (the best
    /// local guess at the new immediate successor). Real Chord recovers
    /// the same way — successor lists bound the *instant* tolerance,
    /// fingers rebuild beyond it.
    fn closest_alive_finger(&self, id: u64) -> Option<u64> {
        self.closest_usable_finger(id, None)
    }

    fn closest_usable_finger(&self, id: u64, plan: Option<&FaultPlan>) -> Option<u64> {
        let node = self.nodes.get(&id)?;
        let mut best: Option<(u64, u64)> = None; // (clockwise distance from id, candidate)
        for &cand in &node.fingers {
            if cand == id {
                continue;
            }
            if !self.usable(cand, plan) {
                continue;
            }
            let d = cand.wrapping_sub(id);
            match best {
                Some((bd, _)) if bd <= d => {}
                _ => best = Some((d, cand)),
            }
        }
        best.map(|(_, c)| c)
    }

    /// Iterative find-successor over current (possibly stale) state.
    fn route_successor(&self, from: u64, key: u64) -> Option<(u64, usize)> {
        self.route_successor_with(from, key, None)
    }

    /// Iterative find-successor, optionally consulting the fault plane
    /// on every step (crashed nodes unusable; Byzantine misroute wastes
    /// the step). With `plan = None` this is exactly the fault-unaware
    /// routing path.
    fn route_successor_with(
        &self,
        from: u64,
        key: u64,
        plan: Option<&FaultPlan>,
    ) -> Option<(u64, usize)> {
        self.lookups_issued.set(self.lookups_issued.get() + 1);
        let mut current = from;
        let mut hops = 0usize;
        // n nodes is a hard bound for greedy progress; stale pointers can
        // cause short non-progress bounces, so allow slack.
        let max_hops = 2 * self.nodes.len() + ID_BITS;
        for _ in 0..max_hops {
            // Byzantine misroute: the step went to the wrong node and
            // has to be reissued — a wasted hop, no progress.
            if let Some(p) = plan {
                if p.draw_misroute() {
                    hops += 1;
                    continue;
                }
            }
            match self.first_usable_successor(current, plan) {
                Some(succ) => {
                    if in_half_open_interval(current, succ, key) || succ == current {
                        return Some((succ, hops + 1));
                    }
                    match self.closest_preceding_usable(current, key, plan) {
                        Some(next) if next != current => current = next,
                        // No finger makes progress: fall through the
                        // successor.
                        _ => current = succ,
                    }
                }
                None => {
                    // The node's successor list died entirely; detour via
                    // any alive finger (no ownership claim possible from
                    // a blind node). Progress-toward-key fingers first.
                    let next = self
                        .closest_preceding_usable(current, key, plan)
                        .or_else(|| self.closest_usable_finger(current, plan))?;
                    if next == current {
                        return None;
                    }
                    current = next;
                }
            }
            hops += 1;
        }
        // Routing loop among stale pointers — report the best guess.
        self.first_usable_successor(current, plan).map(|o| (o, hops))
    }

    fn closest_preceding_usable(
        &self,
        at: u64,
        key: u64,
        plan: Option<&FaultPlan>,
    ) -> Option<u64> {
        let node = self.nodes.get(&at)?;
        let mut best: Option<(u64, u64)> = None; // (distance to key, id)
        for &cand in node.fingers.iter().chain(node.successors.iter()) {
            if cand == at {
                continue;
            }
            if !self.usable(cand, plan) {
                continue;
            }
            // Candidate must lie strictly between at and key (clockwise).
            if in_open_interval(at, key, cand) {
                let d = key.wrapping_sub(cand);
                match best {
                    Some((bd, _)) if bd <= d => {}
                    _ => best = Some((d, cand)),
                }
            }
        }
        best.map(|(_, id)| id)
    }

    fn stabilize(&mut self, id: u64) {
        let Some(node) = self.nodes.get(&id) else {
            return;
        };
        if !node.alive {
            return;
        }
        let succ = match self.first_alive_successor(id) {
            Some(succ) => succ,
            None => {
                // Whole successor list dead: re-seed it from the closest
                // alive finger; the normal mechanism takes over next
                // round.
                let Some(rescue) = self.closest_alive_finger(id) else {
                    return; // fully isolated node
                };
                if let Some(node) = self.nodes.get_mut(&id) {
                    node.successors = vec![rescue];
                }
                rescue
            }
        };
        // Adopt the successor's predecessor if it sits between us.
        let mut new_succ = succ;
        if let Some(x) = self.nodes.get(&succ).and_then(|s| s.predecessor) {
            if x != id
                && self.nodes.get(&x).map(|n| n.alive).unwrap_or(false)
                && in_open_interval(id, succ, x)
            {
                new_succ = x;
            }
        }
        // Refresh the successor list from the (new) successor, dropping
        // entries known dead — copying them forward would keep zombie
        // pointers circulating between lists long after the failure
        // (the check is free here; a real node learns the same from its
        // own timeout cache).
        let mut list = vec![new_succ];
        if let Some(s) = self.nodes.get(&new_succ) {
            for &entry in &s.successors {
                if entry != id
                    && !list.contains(&entry)
                    && self.nodes.get(&entry).map(|n| n.alive).unwrap_or(false)
                {
                    list.push(entry);
                }
                if list.len() >= self.cfg.successor_list_len {
                    break;
                }
            }
        }
        if let Some(node) = self.nodes.get_mut(&id) {
            node.successors = list;
        }
        // Notify: tell the successor about ourselves.
        let adopt = match self.nodes.get(&new_succ).and_then(|s| s.predecessor) {
            None => true,
            Some(p) => {
                !self.nodes.get(&p).map(|n| n.alive).unwrap_or(false)
                    || in_open_interval(p, new_succ, id)
            }
        };
        if adopt && new_succ != id {
            if let Some(s) = self.nodes.get_mut(&new_succ) {
                s.predecessor = Some(id);
            }
        }
    }

    fn fix_fingers(&mut self, id: u64) {
        let Some(node) = self.nodes.get(&id) else {
            return;
        };
        if !node.alive {
            return;
        }
        let k = node.next_finger;
        let target = id.wrapping_add(1u64 << k);
        if let Some((owner, _)) = self.route_successor(id, target) {
            if let Some(node) = self.nodes.get_mut(&id) {
                node.fingers[k] = owner;
            }
        }
        if let Some(node) = self.nodes.get_mut(&id) {
            node.next_finger = (k + 1) % ID_BITS;
        }
    }
}

impl Simulation for ChordProtocol {
    type Event = MaintenanceEvent;

    fn handle(
        &mut self,
        _at: SimTime,
        event: MaintenanceEvent,
        sched: &mut Scheduler<MaintenanceEvent>,
    ) {
        match event {
            MaintenanceEvent::Stabilize(id) => {
                if self.nodes.get(&id).map(|n| n.alive).unwrap_or(false) {
                    self.stabilize(id);
                    sched.schedule_in(
                        self.cfg.stabilize_interval,
                        MaintenanceEvent::Stabilize(id),
                    );
                }
            }
            MaintenanceEvent::FixFingers(id) => {
                if self.nodes.get(&id).map(|n| n.alive).unwrap_or(false) {
                    self.fix_fingers(id);
                    sched.schedule_in(
                        self.cfg.fix_fingers_interval,
                        MaintenanceEvent::FixFingers(id),
                    );
                }
            }
        }
    }
}

/// Runs maintenance until `deadline`; returns the step outcome and the
/// number of maintenance events processed.
pub fn run_maintenance(
    protocol: &mut ChordProtocol,
    sched: &mut Scheduler<MaintenanceEvent>,
    deadline: SimTime,
) -> (StepOutcome, u64) {
    run_until(protocol, sched, deadline)
}

/// `x ∈ (a, b)` on the ring (exclusive both ends).
fn in_open_interval(a: u64, b: u64, x: u64) -> bool {
    x.wrapping_sub(a).wrapping_sub(1) < b.wrapping_sub(a).wrapping_sub(1)
}

/// `x ∈ (a, b]` on the ring.
fn in_half_open_interval(a: u64, b: u64, x: u64) -> bool {
    x.wrapping_sub(a).wrapping_sub(1) <= b.wrapping_sub(a).wrapping_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn build_network(
        n: usize,
        seed: u64,
    ) -> (ChordProtocol, Scheduler<MaintenanceEvent>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proto = ChordProtocol::new(ProtocolConfig::default());
        let mut sched = Scheduler::new();
        let mut ids: Vec<u64> = Vec::new();
        let mut used = HashSet::new();
        for i in 0..n {
            let mut id = rng.gen::<u64>();
            while !used.insert(id) {
                id = rng.gen::<u64>();
            }
            ids.push(id);
            if i == 0 {
                proto.bootstrap(id, NodeId(i as u32), &mut sched);
            } else {
                let via = ids[rng.gen_range(0..i)];
                proto.join(id, NodeId(i as u32), via, &mut sched);
                // Let maintenance interleave with joins, as in a real
                // deployment.
                let now = sched.now();
                run_maintenance(&mut proto, &mut sched, now + 30);
            }
        }
        (proto, sched, ids)
    }

    #[test]
    fn sequential_joins_converge() {
        let (mut proto, mut sched, _) = build_network(64, 1);
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 2_000);
        assert!(proto.is_converged(), "ring did not converge after joins");
        assert_eq!(proto.alive_count(), 64);
    }

    #[test]
    fn converged_lookups_match_oracle() {
        let (mut proto, mut sched, ids) = build_network(48, 2);
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 2_000);
        assert!(proto.is_converged());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let key = rng.gen::<u64>();
            let from = ids[rng.gen_range(0..ids.len())];
            let found = proto.lookup(from, key).unwrap();
            assert_eq!(
                found,
                proto.oracle_successor(key).unwrap(),
                "lookup({key}) from {from}"
            );
        }
    }

    #[test]
    fn ring_recovers_from_mass_failure() {
        let (mut proto, mut sched, ids) = build_network(60, 4);
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 2_000);
        assert!(proto.is_converged());
        // Kill 25% (below the successor-list tolerance).
        let mut rng = StdRng::seed_from_u64(5);
        let mut killed = HashSet::new();
        while killed.len() < 15 {
            let victim = ids[rng.gen_range(0..ids.len())];
            if killed.insert(victim) {
                proto.kill(victim);
            }
        }
        assert!(!proto.is_converged(), "failures must break convergence");
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 5_000);
        assert!(
            proto.is_converged(),
            "stabilization must repair the ring (fraction {})",
            proto.convergence_fraction()
        );
        assert_eq!(proto.alive_count(), 45);
        // Lookups are correct again among survivors.
        for _ in 0..100 {
            let key = rng.gen::<u64>();
            let from = *ids.iter().find(|id| !killed.contains(id)).unwrap();
            assert_eq!(proto.lookup(from, key), proto.oracle_successor(key));
        }
    }

    #[test]
    fn convergence_fraction_tracks_recovery() {
        let (mut proto, mut sched, ids) = build_network(40, 6);
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 2_000);
        let before = proto.convergence_fraction();
        assert_eq!(before, 1.0);
        for &v in ids.iter().take(8) {
            proto.kill(v);
        }
        let broken = proto.convergence_fraction();
        assert!(broken < 1.0);
        let now = sched.now();
        run_maintenance(&mut proto, &mut sched, now + 5_000);
        assert!(proto.convergence_fraction() > broken);
        assert_eq!(proto.convergence_fraction(), 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let (mut proto, mut sched, ids) = build_network(32, seed);
            let now = sched.now();
            run_maintenance(&mut proto, &mut sched, now + 1_000);
            (
                proto.convergence_fraction(),
                proto.lookups_issued(),
                ids,
                sched.processed(),
            )
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn interval_predicates() {
        assert!(in_open_interval(10, 20, 15));
        assert!(!in_open_interval(10, 20, 10));
        assert!(!in_open_interval(10, 20, 20));
        // Wraparound.
        assert!(in_open_interval(u64::MAX - 5, 5, 0));
        assert!(in_half_open_interval(10, 20, 20));
        assert!(!in_half_open_interval(10, 20, 10));
    }

    #[test]
    fn single_node_network_is_converged() {
        let mut proto = ChordProtocol::new(ProtocolConfig::default());
        let mut sched = Scheduler::new();
        proto.bootstrap(42, NodeId(0), &mut sched);
        assert!(proto.is_converged());
        assert_eq!(proto.lookup(42, 7), Some(42));
        assert_eq!(proto.oracle_successor(7), Some(42));
        assert_eq!(proto.overlay_of(42), Some(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "already joined")]
    fn duplicate_join_panics() {
        let mut proto = ChordProtocol::new(ProtocolConfig::default());
        let mut sched = Scheduler::new();
        proto.bootstrap(1, NodeId(0), &mut sched);
        proto.join(1, NodeId(1), 1, &mut sched);
    }
}
