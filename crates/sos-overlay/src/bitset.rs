//! Compact per-node membership set.
//!
//! The attacker, transport, and routing fallback paths all track
//! per-node state (attempted / broken / known / visited). The naive
//! representation — `HashSet<NodeId>` — allocates on insert, hashes on
//! every membership probe, and costs O(len) to clear between trials.
//! [`NodeBitSet`] packs the same information into `u64` words: O(1)
//! branch-free membership tests, O(words) clear, and zero steady-state
//! allocation once the backing vector has grown to the overlay size.
//!
//! Iteration order is ascending [`NodeId`], which matches the
//! `pending_sorted()` / `congestion_targets()` ordering contract the
//! attack models rely on for reproducibility.

use crate::node::NodeId;

const WORD_BITS: usize = 64;

/// A set of [`NodeId`]s backed by a dense bit vector.
///
/// Grows automatically on insert; `clear` keeps the allocation so a
/// per-worker scratch set reaches a zero-allocation steady state after
/// the first trial.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeBitSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set pre-sized for ids `0..capacity` so inserts
    /// within that range never allocate.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            len: 0,
        }
    }

    #[inline]
    fn slot_index(idx: usize) -> (usize, u64) {
        (idx / WORD_BITS, 1u64 << (idx % WORD_BITS))
    }

    #[inline]
    fn slot(id: NodeId) -> (usize, u64) {
        Self::slot_index(id.index())
    }

    /// Inserts `id`; returns `true` if it was not already present
    /// (mirroring `HashSet::insert`).
    #[inline]
    pub fn insert(&mut self, id: NodeId) -> bool {
        let (word, mask) = Self::slot(id);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `id`; returns `true` if it was present (mirroring
    /// `HashSet::remove`).
    #[inline]
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (word, mask) = Self::slot(id);
        match self.words.get_mut(word) {
            Some(w) if *w & mask != 0 => {
                *w &= !mask;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether `id` is in the set.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        let (word, mask) = Self::slot(id);
        self.words.get(word).is_some_and(|w| w & mask != 0)
    }

    /// Number of ids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the set in O(words) while keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Resets the set to exactly indices `0..n` (all present) in
    /// O(words) — the word-at-a-time way to start a dense liveness mask
    /// before punching out the (few) dead entries.
    pub fn fill_first(&mut self, n: usize) {
        let full_words = n / WORD_BITS;
        let tail = n % WORD_BITS;
        self.words.clear();
        self.words.resize(full_words + usize::from(tail > 0), !0u64);
        if tail > 0 {
            *self.words.last_mut().expect("tail word exists") = (1u64 << tail) - 1;
        }
        self.len = n;
    }

    /// Raw-index membership probe. SoA kernels index masks by *ring
    /// position* rather than node id; this is [`contains`] without the
    /// [`NodeId`] wrapper.
    ///
    /// [`contains`]: Self::contains
    #[inline]
    pub fn contains_index(&self, idx: usize) -> bool {
        let (word, mask) = Self::slot_index(idx);
        self.words.get(word).is_some_and(|w| w & mask != 0)
    }

    /// Raw-index insert; returns `true` if the index was absent.
    #[inline]
    pub fn insert_index(&mut self, idx: usize) -> bool {
        let (word, mask) = Self::slot_index(idx);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Raw-index remove; returns `true` if the index was present.
    #[inline]
    pub fn remove_index(&mut self, idx: usize) -> bool {
        let (word, mask) = Self::slot_index(idx);
        match self.words.get_mut(word) {
            Some(w) if *w & mask != 0 => {
                *w &= !mask;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// The backing `u64` words (64 indices per word, LSB-first) — the
    /// raw form word-at-a-time consumers iterate instead of per-bit
    /// probes.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// One backing word by index, with out-of-range words reading as
    /// zero. The backing vector only grows to cover the highest id ever
    /// inserted, so word-at-a-time consumers combining two sets (e.g.
    /// `known & !broken`) must tolerate length mismatches; this probe
    /// makes a short set behave as if padded with empty words.
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words.get(wi).copied().unwrap_or(0)
    }

    /// Iterates `self \ other` (members of `self` absent from `other`)
    /// in ascending id order, one `u64` word at a time — the batched
    /// form of `iter().filter(|id| !other.contains(*id))` that the
    /// congestion sampler uses instead of per-member probes.
    pub fn difference_iter<'a>(&'a self, other: &'a NodeBitSet) -> impl Iterator<Item = NodeId> + 'a {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = (wi * WORD_BITS) as u32;
            BitIter {
                word: w & !other.word(wi),
                base,
            }
        })
    }

    /// Counts `|self \ other|` by word-wise popcount, without iterating
    /// individual bits.
    pub fn difference_len(&self, other: &NodeBitSet) -> usize {
        self.words
            .iter()
            .enumerate()
            .map(|(wi, &w)| (w & !other.word(wi)).count_ones() as usize)
            .sum()
    }
}

/// Rank/select directory over a sequence of bit words.
///
/// Snapshots an arbitrary word stream (e.g. `known & !broken`, or the
/// complement of an overlay's bad-set masked to the overlay ids) and
/// answers `select(rank)` — the index of the `rank`-th set bit — in
/// O(log words). Batched samplers use this to resolve Fisher–Yates
/// *ranks* into node ids without ever materializing the candidate set
/// as a `Vec<NodeId>`: ascending bit index equals ascending rank, which
/// is exactly the ordering contract of the `Vec`-based samplers it
/// replaces.
#[derive(Debug, Clone)]
pub struct WordSelect {
    words: Vec<u64>,
    /// `prefix[i]` = number of set bits in `words[..i]`.
    prefix: Vec<u32>,
    count: usize,
}

impl WordSelect {
    /// Builds the directory from a word stream (64 indices per word,
    /// LSB-first, same layout as [`NodeBitSet::words`]).
    pub fn from_words(words: impl Iterator<Item = u64>) -> Self {
        let words: Vec<u64> = words.collect();
        let mut prefix = Vec::with_capacity(words.len());
        let mut running = 0u32;
        for &w in &words {
            prefix.push(running);
            running += w.count_ones();
        }
        Self {
            words,
            prefix,
            count: running as usize,
        }
    }

    /// Total number of set bits.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The bit index of the `rank`-th set bit (0-based, ascending).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= count()`.
    pub fn select(&self, rank: usize) -> usize {
        assert!(rank < self.count, "select rank {rank} out of {}", self.count);
        // Last word whose prefix popcount is <= rank.
        let wi = self.prefix.partition_point(|&p| p as usize <= rank) - 1;
        // In-word select by popcount bisection: six halving steps
        // instead of clearing up to 63 low bits one at a time.
        let mut w = self.words[wi];
        let mut j = (rank - self.prefix[wi] as usize) as u32;
        let mut pos = 0usize;
        let mut shift = 32u32;
        while shift > 0 {
            let low = (w & ((1u64 << shift) - 1)).count_ones();
            if j >= low {
                j -= low;
                w >>= shift;
                pos += shift as usize;
            }
            shift >>= 1;
        }
        wi * WORD_BITS + pos
    }

    /// All member bit indices, ascending — `indices()[r]` equals
    /// `select(r)`. Cheaper than per-rank [`select`](Self::select) when
    /// a caller resolves a large fraction of the ranks, at the cost of
    /// materializing the whole membership once.
    pub fn indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push((wi * WORD_BITS) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        out
    }
}

impl NodeBitSet {
    /// Iterates the members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = (wi * WORD_BITS) as u32;
            BitIter { word: w, base }
        })
    }

    /// Collects the members into a sorted `Vec` (ascending id).
    pub fn to_sorted_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl FromIterator<NodeId> for NodeBitSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = Self::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl Extend<NodeId> for NodeBitSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Iterator over the set bits of one word.
struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(NodeId(self.base + bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut set = NodeBitSet::new();
        assert!(set.is_empty());
        assert!(set.insert(NodeId(3)));
        assert!(!set.insert(NodeId(3)), "double insert reports stale");
        assert!(set.insert(NodeId(200)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(NodeId(3)));
        assert!(set.contains(NodeId(200)));
        assert!(!set.contains(NodeId(4)));
        assert!(set.remove(NodeId(3)));
        assert!(!set.remove(NodeId(3)), "double remove reports absent");
        assert!(!set.remove(NodeId(5)), "removing a non-member is a no-op");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn iteration_is_sorted_ascending() {
        let ids = [7u32, 0, 511, 64, 63, 65, 130];
        let set: NodeBitSet = ids.iter().map(|&i| NodeId(i)).collect();
        let mut expect: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        expect.sort_unstable();
        assert_eq!(set.to_sorted_vec(), expect);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut set = NodeBitSet::with_capacity(1000);
        let words_before = set.words.len();
        for i in 0..1000 {
            set.insert(NodeId(i));
        }
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.words.len(), words_before);
        assert!(!set.contains(NodeId(500)));
    }

    #[test]
    fn word_boundaries() {
        let mut set = NodeBitSet::new();
        for i in [63u32, 64, 127, 128] {
            assert!(set.insert(NodeId(i)));
            assert!(set.contains(NodeId(i)));
        }
        assert_eq!(set.len(), 4);
        assert_eq!(
            set.to_sorted_vec(),
            vec![NodeId(63), NodeId(64), NodeId(127), NodeId(128)]
        );
    }

    #[test]
    fn fill_first_and_raw_index_ops() {
        let mut set = NodeBitSet::new();
        for n in [0usize, 1, 63, 64, 65, 130] {
            set.fill_first(n);
            assert_eq!(set.len(), n);
            for i in 0..n {
                assert!(set.contains_index(i), "n={n} i={i}");
            }
            assert!(!set.contains_index(n));
            assert_eq!(
                set.words().iter().map(|w| w.count_ones() as usize).sum::<usize>(),
                n
            );
        }
        set.fill_first(70);
        assert!(set.remove_index(69));
        assert!(!set.remove_index(69));
        assert_eq!(set.len(), 69);
        assert!(set.insert_index(69));
        assert!(!set.insert_index(69));
        // Raw-index ops agree with the NodeId ops bit for bit.
        assert!(set.contains(NodeId(69)));
        set.remove(NodeId(69));
        assert!(!set.contains_index(69));
    }

    #[test]
    fn word_probe_pads_short_sets_with_zero() {
        let mut set = NodeBitSet::new();
        set.insert(NodeId(3));
        assert_eq!(set.word(0), 0b1000);
        assert_eq!(set.word(1), 0, "unallocated words read as empty");
        assert_eq!(set.word(100), 0);
    }

    #[test]
    fn difference_matches_per_bit_filter() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..50 {
            let a: NodeBitSet = (0..rng.gen_range(0..300u32))
                .filter(|_| rng.gen_range(0..3u8) == 0)
                .map(NodeId)
                .collect();
            // Deliberately differently-sized backing vectors.
            let b: NodeBitSet = (0..rng.gen_range(0..600u32))
                .filter(|_| rng.gen_range(0..3u8) == 0)
                .map(NodeId)
                .collect();
            let expect: Vec<NodeId> = a.iter().filter(|id| !b.contains(*id)).collect();
            let got: Vec<NodeId> = a.difference_iter(&b).collect();
            assert_eq!(got, expect);
            assert_eq!(a.difference_len(&b), expect.len());
        }
    }

    #[test]
    fn word_select_matches_linear_scan() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let n = rng.gen_range(1..400usize);
            let set: NodeBitSet = (0..n as u32)
                .filter(|_| rng.gen_range(0..4u8) != 0)
                .map(NodeId)
                .collect();
            let sel = WordSelect::from_words(set.words().iter().copied());
            let members = set.to_sorted_vec();
            assert_eq!(sel.count(), members.len());
            for (rank, id) in members.iter().enumerate() {
                assert_eq!(sel.select(rank), id.index());
            }
            let ids: Vec<u32> = members.iter().map(|id| id.index() as u32).collect();
            assert_eq!(sel.indices(), ids);
        }
    }

    #[test]
    #[should_panic(expected = "select rank")]
    fn word_select_panics_out_of_range() {
        let sel = WordSelect::from_words([0b101u64].into_iter());
        sel.select(2);
    }

    #[test]
    fn matches_reference_hashset_under_churn() {
        use rand::{Rng, SeedableRng};
        use std::collections::HashSet;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut set = NodeBitSet::new();
        let mut reference: HashSet<NodeId> = HashSet::new();
        for _ in 0..5_000 {
            let id = NodeId(rng.gen_range(0..700u32));
            match rng.gen_range(0..3u8) {
                0 => assert_eq!(set.insert(id), reference.insert(id)),
                1 => assert_eq!(set.remove(id), reference.remove(&id)),
                _ => assert_eq!(set.contains(id), reference.contains(&id)),
            }
            assert_eq!(set.len(), reference.len());
        }
        let mut expect: Vec<NodeId> = reference.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(set.to_sorted_vec(), expect);
    }
}
