//! The layered overlay: a concrete instantiation of a
//! [`sos_core::Scenario`].
//!
//! An overlay holds `N` overlay nodes (indices `0..N`) of which `n` are
//! secretly SOS nodes assigned to layers `1..=L`, plus `F` filters
//! (indices `N..N+F`, layer `L+1`). Every SOS node carries a concrete
//! neighbor table into the next layer, sized by the scenario's mapping
//! degree (fractional degrees are realized by unbiased stochastic
//! rounding so ensemble averages match the analytical model).

use crate::bitset::NodeBitSet;
use crate::node::{NodeId, NodeStatus, Role};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sos_core::{CompromiseState, Scenario};
use sos_math::sampling::{sample_from, stochastic_round, IndexSampler};

/// A concrete overlay instance. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct Overlay {
    scenario: Scenario,
    roles: Vec<Role>,
    statuses: Vec<NodeStatus>,
    /// Dense index of bad (broken/congested) nodes, kept in lockstep
    /// with `statuses` so the routing hot path tests liveness with one
    /// bit probe and trial resets cost O(words).
    bad: NodeBitSet,
    neighbors: Vec<Vec<NodeId>>,
    /// `layers[0]` = layer 1, …, `layers[L]` = filter layer.
    layers: Vec<Vec<NodeId>>,
    /// Sampling scratch reused by [`Overlay::build_into`].
    sampler: IndexSampler,
    picks: Vec<usize>,
}

impl Overlay {
    /// Instantiates an overlay for `scenario` using `rng` for all random
    /// choices (SOS membership, layer assignment, neighbor tables).
    ///
    /// Rebuilding with the same seed yields the identical overlay.
    pub fn build<R: Rng + ?Sized>(scenario: &Scenario, rng: &mut R) -> Self {
        let mut overlay = Overlay {
            scenario: scenario.clone(),
            roles: Vec::new(),
            statuses: Vec::new(),
            bad: NodeBitSet::new(),
            neighbors: Vec::new(),
            layers: Vec::new(),
            sampler: IndexSampler::new(),
            picks: Vec::new(),
        };
        overlay.build_into(scenario, rng);
        overlay
    }

    /// Rebuilds this overlay in place for `scenario`, reusing every
    /// existing allocation (role/status tables, layer lists, neighbor
    /// tables, sampling scratch).
    ///
    /// Consumes the RNG identically to [`Overlay::build`], so
    /// `a.build_into(s, rng)` on any prior overlay yields a result
    /// indistinguishable from `Overlay::build(s, rng)` at the same RNG
    /// state — the zero-rebuild trial engine relies on this.
    ///
    /// Internally the build is split into two dedicated sub-streams:
    /// exactly two `u64` seeds are drawn from `rng` (membership, then
    /// neighbor tables), and each build stage runs on its own
    /// [`StdRng`] forked from its seed. Structure-preserving rebuilds
    /// ([`Overlay::rebuild_neighbors_only`]) can therefore replay the
    /// neighbor stage alone, bit-identically, without touching the
    /// membership stream.
    pub fn build_into<R: Rng + ?Sized>(&mut self, scenario: &Scenario, rng: &mut R) {
        let membership_seed = rng.gen::<u64>();
        let neighbor_seed = rng.gen::<u64>();
        self.build_membership(scenario, membership_seed);
        self.build_neighbors(neighbor_seed);
    }

    /// Membership stage: clears all tables and deals SOS nodes and
    /// filters into layers from the membership sub-stream.
    fn build_membership(&mut self, scenario: &Scenario, membership_seed: u64) {
        let rng = &mut StdRng::seed_from_u64(membership_seed);
        self.scenario.clone_from(scenario);
        let big_n = scenario.system().overlay_nodes() as usize;
        let topo = scenario.topology();
        let l = topo.layer_count();
        let filter_count = topo.filter_count() as usize;
        let total = big_n + filter_count;

        self.roles.clear();
        self.roles.resize(total, Role::Bystander);
        self.statuses.clear();
        self.statuses.resize(total, NodeStatus::Good);
        self.bad.clear();
        for layer in &mut self.layers {
            layer.clear();
        }
        self.layers.resize_with(l + 1, Vec::new);
        for table in &mut self.neighbors {
            table.clear();
        }
        self.neighbors.resize_with(total, Vec::new);

        // Pick the SOS nodes uniformly from the overlay population and
        // deal them into layers.
        let sos_total = scenario.system().sos_nodes() as usize;
        self.sampler
            .sample_indices_into(rng, big_n, sos_total, &mut self.picks);
        let mut cursor = 0usize;
        for (layer_idx, &size) in topo.layer_sizes().iter().enumerate() {
            for _ in 0..size {
                let node = self.picks[cursor];
                cursor += 1;
                self.roles[node] = Role::Sos {
                    layer: (layer_idx + 1) as u16,
                };
                self.layers[layer_idx].push(NodeId(node as u32));
            }
        }
        for f in 0..filter_count {
            self.roles[big_n + f] = Role::Filter;
            self.layers[l].push(NodeId((big_n + f) as u32));
        }
    }

    /// Neighbor-table stage: re-deals every SOS node's next-layer table
    /// from the neighbor sub-stream. Membership must already be laid
    /// out for `self.scenario`.
    fn build_neighbors(&mut self, neighbor_seed: u64) {
        let rng = &mut StdRng::seed_from_u64(neighbor_seed);
        let topo = self.scenario.topology();
        let l = topo.layer_count();
        // Neighbor tables: layer i → layer i+1 (servlets → filters).
        let layers = &self.layers;
        let neighbors = &mut self.neighbors;
        let sampler = &mut self.sampler;
        for layer_idx in 0..l {
            let next: &[NodeId] = &layers[layer_idx + 1];
            let boundary = layer_idx + 2; // mapping degree m_{i+1}
            let degree = topo.degree(boundary);
            for &node in &layers[layer_idx] {
                let k = stochastic_round(rng, degree)
                    .clamp(1, next.len() as u64) as usize;
                sampler.sample_from_into(rng, next, k, &mut neighbors[node.index()]);
            }
        }
    }

    /// Whether `scenario` shares this overlay's *structure* — the parts
    /// the membership stage depends on (system parameters, layer sizes,
    /// filter count). Two scenarios that agree here and are built at
    /// the same RNG state place the identical SOS nodes in identical
    /// layers; only the mapping degrees (neighbor tables) may differ.
    pub fn structure_matches(&self, scenario: &Scenario) -> bool {
        self.scenario.system() == scenario.system()
            && self.scenario.topology().layer_sizes() == scenario.topology().layer_sizes()
            && self.scenario.topology().filter_count() == scenario.topology().filter_count()
    }

    /// Delta rebuild for a structure-preserving scenario change (e.g. a
    /// different mapping degree): keeps the membership layout, clears
    /// attack damage, and re-rolls only the neighbor tables.
    ///
    /// Consumes `rng` identically to [`Overlay::build_into`] (two seed
    /// draws) and, because each build stage runs on its own sub-stream,
    /// produces an overlay bit-identical to a fresh
    /// `build_into(scenario, rng)` from the same RNG state — that
    /// equivalence is what lets the trial engine take this path
    /// transparently.
    ///
    /// # Panics
    ///
    /// Panics if `scenario` does not satisfy
    /// [`Overlay::structure_matches`].
    pub fn rebuild_neighbors_only<R: Rng + ?Sized>(
        &mut self,
        scenario: &Scenario,
        rng: &mut R,
    ) {
        assert!(
            self.structure_matches(scenario),
            "rebuild_neighbors_only requires a structure-preserving scenario change"
        );
        let _membership_seed = rng.gen::<u64>();
        let neighbor_seed = rng.gen::<u64>();
        self.scenario.clone_from(scenario);
        self.reset_statuses();
        self.build_neighbors(neighbor_seed);
    }

    /// The scenario this overlay realizes.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Number of overlay nodes `N` (excluding filters).
    pub fn overlay_node_count(&self) -> usize {
        self.scenario.system().overlay_nodes() as usize
    }

    /// Number of filters `F`.
    pub fn filter_count(&self) -> usize {
        self.scenario.topology().filter_count() as usize
    }

    /// Total addressable nodes (`N + F`).
    pub fn total_node_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of SOS layers `L` (excluding the filter layer).
    pub fn layer_count(&self) -> usize {
        self.layers.len() - 1
    }

    /// The role of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn role(&self, id: NodeId) -> Role {
        self.roles[id.index()]
    }

    /// The 1-based layer of a node (`L+1` for filters), if it is part of
    /// the architecture.
    pub fn layer_of(&self, id: NodeId) -> Option<usize> {
        match self.roles[id.index()] {
            Role::Sos { layer } => Some(layer as usize),
            Role::Filter => Some(self.layer_count() + 1),
            Role::Bystander => None,
        }
    }

    /// Current health of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn status(&self, id: NodeId) -> NodeStatus {
        self.statuses[id.index()]
    }

    /// Sets the health of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_status(&mut self, id: NodeId, status: NodeStatus) {
        self.statuses[id.index()] = status;
        if status.is_bad() {
            self.bad.insert(id);
        } else {
            self.bad.remove(id);
        }
    }

    /// Restores every node to [`NodeStatus::Good`] (new attack trial on
    /// the same topology).
    pub fn reset_statuses(&mut self) {
        self.statuses.fill(NodeStatus::Good);
        self.bad.clear();
    }

    /// The next-layer neighbor table of a node (empty for bystanders and
    /// filters).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id.index()]
    }

    /// Members of a 1-based layer (`L+1` = filters).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_members(&self, layer: usize) -> &[NodeId] {
        assert!(
            (1..=self.layers.len()).contains(&layer),
            "layer {layer} out of range"
        );
        &self.layers[layer - 1]
    }

    /// Draws a client's entry set: `round(m_1)` distinct first-layer
    /// nodes (a fresh draw per client, like the analytical model's
    /// average over routing tables).
    pub fn sample_entry_points<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<NodeId> {
        let first = self.layer_members(1);
        let degree = self.scenario.topology().degree(1);
        let k = stochastic_round(rng, degree).clamp(1, first.len() as u64) as usize;
        sample_from(rng, first, k)
    }

    /// Allocation-reusing variant of [`Overlay::sample_entry_points`]:
    /// fills `out` using the caller's sampling scratch, consuming the
    /// RNG identically.
    pub fn sample_entry_points_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sampler: &mut IndexSampler,
        out: &mut Vec<NodeId>,
    ) {
        let first = self.layer_members(1);
        let degree = self.scenario.topology().degree(1);
        let k = stochastic_round(rng, degree).clamp(1, first.len() as u64) as usize;
        sampler.sample_from_into(rng, first, k, out);
    }

    /// Whether the node is a good (routable) node.
    #[inline]
    pub fn is_good(&self, id: NodeId) -> bool {
        debug_assert!(id.index() < self.statuses.len(), "{id} out of range");
        !self.bad.contains(id)
    }

    /// The set of bad (broken or congested) node ids, kept in lockstep
    /// with [`Overlay::set_status`]. Word-at-a-time consumers (the
    /// batched congestion sampler) read good nodes as the complement of
    /// these words masked to the id range they care about, instead of
    /// probing `status()` per node.
    #[inline]
    pub fn bad_set(&self) -> &NodeBitSet {
        &self.bad
    }

    /// Snapshot of per-layer broken/congested counts as a
    /// [`CompromiseState`] — lets the analytical evaluator price an
    /// empirically attacked overlay.
    pub fn compromise_state(&self) -> CompromiseState {
        let layers = self.layers.len();
        let mut broken = vec![0.0; layers];
        let mut congested = vec![0.0; layers];
        for (layer_idx, members) in self.layers.iter().enumerate() {
            for id in members {
                match self.statuses[id.index()] {
                    NodeStatus::Broken => broken[layer_idx] += 1.0,
                    NodeStatus::Congested => congested[layer_idx] += 1.0,
                    NodeStatus::Good => {}
                }
            }
        }
        CompromiseState::from_counts(self.scenario.topology(), broken, congested)
    }

    /// Count of bad nodes among all overlay nodes and filters.
    pub fn total_bad(&self) -> usize {
        self.bad.len()
    }

    /// Iterator over all overlay-node ids (`0..N`, filters excluded) —
    /// the population the attacker samples from.
    pub fn overlay_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.overlay_node_count() as u32).map(NodeId)
    }

    /// Removes an SOS node from the architecture without replacement
    /// (churn without promotion): it becomes a good bystander, its
    /// neighbor table is dropped, and inbound neighbor-table entries
    /// pointing at it are removed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an SOS node.
    pub fn retire_sos_node(&mut self, node: NodeId) {
        let Role::Sos { layer } = self.roles[node.index()] else {
            panic!("{node} is not an SOS node");
        };
        let layer = layer as usize;
        self.roles[node.index()] = Role::Bystander;
        self.statuses[node.index()] = NodeStatus::Good;
        self.bad.remove(node);
        self.neighbors[node.index()].clear();
        self.layers[layer - 1].retain(|&m| m != node);
        for table in &mut self.neighbors {
            table.retain(|&m| m != node);
        }
    }

    /// Replaces a departing SOS node with a promoted bystander: the
    /// promotion inherits the layer, draws a *fresh* neighbor table of
    /// the scenario's mapping degree, and inbound tables that pointed at
    /// the departed node are rewritten to point at the replacement. The
    /// departed node becomes a good bystander.
    ///
    /// # Panics
    ///
    /// Panics if `departed` is not an SOS node or `promoted` is not a
    /// bystander.
    pub fn replace_sos_node<R: Rng + ?Sized>(
        &mut self,
        departed: NodeId,
        promoted: NodeId,
        rng: &mut R,
    ) {
        let Role::Sos { layer } = self.roles[departed.index()] else {
            panic!("{departed} is not an SOS node");
        };
        assert_eq!(
            self.roles[promoted.index()],
            Role::Bystander,
            "{promoted} is not a bystander"
        );
        let layer = layer as usize;

        // Swap membership.
        self.roles[departed.index()] = Role::Bystander;
        self.statuses[departed.index()] = NodeStatus::Good;
        self.bad.remove(departed);
        self.neighbors[departed.index()].clear();
        self.roles[promoted.index()] = Role::Sos {
            layer: layer as u16,
        };
        self.statuses[promoted.index()] = NodeStatus::Good;
        self.bad.remove(promoted);
        let members = &mut self.layers[layer - 1];
        let pos = members
            .iter()
            .position(|&m| m == departed)
            .expect("departed node is a member of its layer");
        members[pos] = promoted;

        // Fresh outgoing table for the promotion.
        let next: Vec<NodeId> = self.layers[layer].clone();
        let degree = self.scenario.topology().degree(layer + 1);
        let k = stochastic_round(rng, degree).clamp(1, next.len() as u64) as usize;
        self.neighbors[promoted.index()] = sample_from(rng, &next, k);

        // Inbound repairs: everyone who knew the departed node learns
        // the replacement instead (the operator hands out the update).
        for table in &mut self.neighbors {
            for entry in table.iter_mut() {
                if *entry == departed {
                    *entry = promoted;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sos_core::{MappingDegree, NodeDistribution, SystemParams};

    fn scenario(mapping: MappingDegree) -> Scenario {
        Scenario::builder()
            .system(SystemParams::new(1_000, 60, 0.5).unwrap())
            .layers(3)
            .distribution(NodeDistribution::Even)
            .mapping(mapping)
            .filters(10)
            .build()
            .unwrap()
    }

    fn overlay(mapping: MappingDegree, seed: u64) -> Overlay {
        let mut rng = StdRng::seed_from_u64(seed);
        Overlay::build(&scenario(mapping), &mut rng)
    }

    #[test]
    fn build_respects_layer_sizes() {
        let o = overlay(MappingDegree::OneTo(2), 1);
        assert_eq!(o.layer_members(1).len(), 20);
        assert_eq!(o.layer_members(2).len(), 20);
        assert_eq!(o.layer_members(3).len(), 20);
        assert_eq!(o.layer_members(4).len(), 10);
        assert_eq!(o.total_node_count(), 1_010);
        assert_eq!(o.layer_count(), 3);
    }

    #[test]
    fn roles_are_consistent_with_layers() {
        let o = overlay(MappingDegree::OneTo(2), 2);
        let mut sos_count = 0;
        let mut bystanders = 0;
        for i in 0..o.overlay_node_count() {
            match o.role(NodeId(i as u32)) {
                Role::Sos { layer } => {
                    sos_count += 1;
                    assert!(o
                        .layer_members(layer as usize)
                        .contains(&NodeId(i as u32)));
                }
                Role::Bystander => bystanders += 1,
                Role::Filter => panic!("filters live above N"),
            }
        }
        assert_eq!(sos_count, 60);
        assert_eq!(bystanders, 940);
        for f in 0..10 {
            let id = NodeId((1_000 + f) as u32);
            assert_eq!(o.role(id), Role::Filter);
            assert_eq!(o.layer_of(id), Some(4));
        }
    }

    #[test]
    fn neighbor_tables_point_to_next_layer() {
        let o = overlay(MappingDegree::OneTo(3), 3);
        for layer in 1..=3usize {
            for &id in o.layer_members(layer) {
                let neigh = o.neighbors(id);
                assert_eq!(neigh.len(), 3, "node {id} in layer {layer}");
                // Distinct.
                let mut sorted = neigh.to_vec();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), neigh.len());
                for &nb in neigh {
                    assert_eq!(o.layer_of(nb), Some(layer + 1), "{id} -> {nb}");
                }
            }
        }
        // Bystanders and filters have no outgoing tables.
        for i in 0..o.total_node_count() {
            let id = NodeId(i as u32);
            if o.layer_of(id).is_none() || o.role(id) == Role::Filter {
                assert!(o.neighbors(id).is_empty());
            }
        }
    }

    #[test]
    fn one_to_all_tables_cover_next_layer() {
        let o = overlay(MappingDegree::OneToAll, 4);
        for &id in o.layer_members(1) {
            assert_eq!(o.neighbors(id).len(), 20);
        }
        for &id in o.layer_members(3) {
            assert_eq!(o.neighbors(id).len(), 10, "servlets know all filters");
        }
    }

    #[test]
    fn fractional_degree_realized_stochastically() {
        // one-to-half of a 20-node layer = 10 exactly (integer), so use a
        // custom fractional degree.
        let scenario = Scenario::builder()
            .system(SystemParams::new(1_000, 60, 0.5).unwrap())
            .layers(3)
            .mapping(MappingDegree::Custom(vec![1.0, 2.5, 2.5, 2.5]))
            .filters(10)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let o = Overlay::build(&scenario, &mut rng);
        let sizes: Vec<usize> = o
            .layer_members(1)
            .iter()
            .map(|&id| o.neighbors(id).len())
            .collect();
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        let mean: f64 = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(mean > 2.0 && mean < 3.0);
    }

    #[test]
    fn statuses_and_reset() {
        let mut o = overlay(MappingDegree::OneTo(2), 5);
        let id = o.layer_members(2)[0];
        o.set_status(id, NodeStatus::Broken);
        assert!(!o.is_good(id));
        assert_eq!(o.total_bad(), 1);
        let state = o.compromise_state();
        assert_eq!(state.broken(2), 1.0);
        assert_eq!(state.bad(2), 1.0);
        o.reset_statuses();
        assert_eq!(o.total_bad(), 0);
        assert_eq!(o.compromise_state().total_bad(), 0.0);
    }

    #[test]
    fn entry_points_come_from_layer_one() {
        let o = overlay(MappingDegree::OneTo(2), 6);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let entries = o.sample_entry_points(&mut rng);
            assert_eq!(entries.len(), 2);
            for e in entries {
                assert_eq!(o.layer_of(e), Some(1));
            }
        }
    }

    #[test]
    fn same_seed_same_overlay() {
        let a = overlay(MappingDegree::OneTo(2), 77);
        let b = overlay(MappingDegree::OneTo(2), 77);
        for layer in 1..=4usize {
            assert_eq!(a.layer_members(layer), b.layer_members(layer));
        }
        for i in 0..a.total_node_count() {
            assert_eq!(
                a.neighbors(NodeId(i as u32)),
                b.neighbors(NodeId(i as u32))
            );
        }
    }

    #[test]
    fn different_seed_different_overlay() {
        let a = overlay(MappingDegree::OneTo(2), 1);
        let b = overlay(MappingDegree::OneTo(2), 2);
        assert_ne!(a.layer_members(1), b.layer_members(1));
    }

    fn assert_same_overlay(a: &Overlay, b: &Overlay) {
        assert_eq!(a.total_node_count(), b.total_node_count());
        assert_eq!(a.layer_count(), b.layer_count());
        for layer in 1..=a.layer_count() + 1 {
            assert_eq!(a.layer_members(layer), b.layer_members(layer));
        }
        for i in 0..a.total_node_count() {
            let id = NodeId(i as u32);
            assert_eq!(a.role(id), b.role(id));
            assert_eq!(a.status(id), b.status(id));
            assert_eq!(a.neighbors(id), b.neighbors(id));
        }
    }

    #[test]
    fn build_into_reuse_matches_fresh_build() {
        let s = scenario(MappingDegree::OneTo(3));
        // Dirty the reused overlay first: different mapping, plus damage.
        let mut reused = overlay(MappingDegree::OneTo(2), 99);
        let victim = reused.layer_members(2)[3];
        reused.set_status(victim, NodeStatus::Congested);
        for trial_seed in [0u64, 5, 81] {
            let mut rng_a = StdRng::seed_from_u64(trial_seed);
            let mut rng_b = StdRng::seed_from_u64(trial_seed);
            let fresh = Overlay::build(&s, &mut rng_a);
            reused.build_into(&s, &mut rng_b);
            assert_same_overlay(&fresh, &reused);
            // Both RNGs consumed the same number of draws.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
            assert_eq!(reused.total_bad(), 0, "rebuild clears damage");
        }
    }

    #[test]
    fn rebuild_neighbors_only_matches_fresh_build_both_orders() {
        let a = scenario(MappingDegree::OneTo(2));
        let b = scenario(MappingDegree::OneTo(3));
        for (from, to) in [(&a, &b), (&b, &a)] {
            for trial_seed in [0u64, 7, 1234] {
                let mut rng_full = StdRng::seed_from_u64(trial_seed);
                let mut rng_delta = StdRng::seed_from_u64(trial_seed);
                let mut delta = Overlay::build(from, &mut StdRng::seed_from_u64(trial_seed));
                assert!(delta.structure_matches(to));
                // Dirty the reused overlay with attack damage first.
                let victim = delta.layer_members(1)[0];
                delta.set_status(victim, NodeStatus::Broken);
                delta.rebuild_neighbors_only(to, &mut rng_delta);
                let fresh = Overlay::build(to, &mut rng_full);
                assert_same_overlay(&fresh, &delta);
                // Identical RNG consumption as the full build.
                assert_eq!(rng_full.gen::<u64>(), rng_delta.gen::<u64>());
            }
        }
    }

    #[test]
    #[should_panic(expected = "structure-preserving")]
    fn rebuild_neighbors_only_rejects_structural_change() {
        let small = Scenario::builder()
            .system(SystemParams::new(200, 12, 0.5).unwrap())
            .layers(2)
            .mapping(MappingDegree::OneTo(2))
            .filters(4)
            .build()
            .unwrap();
        let mut o = overlay(MappingDegree::OneTo(2), 1);
        o.rebuild_neighbors_only(&small, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn build_into_shrinks_to_smaller_scenario() {
        let big = scenario(MappingDegree::OneTo(2));
        let small = Scenario::builder()
            .system(SystemParams::new(200, 12, 0.5).unwrap())
            .layers(2)
            .mapping(MappingDegree::OneTo(2))
            .filters(4)
            .build()
            .unwrap();
        let mut reused = overlay(MappingDegree::OneTo(2), 1);
        assert_eq!(reused.total_node_count(), 1_010);
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        reused.build_into(&small, &mut rng_a);
        let fresh = Overlay::build(&small, &mut rng_b);
        assert_same_overlay(&fresh, &reused);
        assert_eq!(reused.total_node_count(), 204);
        // And back up to the larger scenario again.
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        reused.build_into(&big, &mut rng_a);
        assert_same_overlay(&Overlay::build(&big, &mut rng_b), &reused);
    }

    #[test]
    fn bad_bitset_tracks_statuses() {
        let mut o = overlay(MappingDegree::OneTo(2), 8);
        let a = o.layer_members(1)[0];
        let b = o.layer_members(2)[1];
        o.set_status(a, NodeStatus::Broken);
        o.set_status(b, NodeStatus::Congested);
        assert!(!o.is_good(a));
        assert!(!o.is_good(b));
        assert_eq!(o.total_bad(), 2);
        o.set_status(b, NodeStatus::Good);
        assert!(o.is_good(b));
        assert_eq!(o.total_bad(), 1);
        o.reset_statuses();
        assert!(o.is_good(a));
        assert_eq!(o.total_bad(), 0);
    }

    #[test]
    fn entry_points_into_matches_allocating_variant() {
        use sos_math::sampling::IndexSampler;
        let o = overlay(MappingDegree::OneTo(2), 6);
        let mut sampler = IndexSampler::new();
        let mut buf = Vec::new();
        for seed in 0..20u64 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let fresh = o.sample_entry_points(&mut rng_a);
            o.sample_entry_points_into(&mut rng_b, &mut sampler, &mut buf);
            assert_eq!(fresh, buf);
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }
}
