//! Bridge from overlay dynamics to the `sos-observe` event taxonomy.
//!
//! The churn and Chord modules return plain data ([`ChurnEvent`],
//! [`LookupOutcome`]) rather than talking to a recorder themselves —
//! the substrate stays observability-free and the caller decides what
//! to trace. These helpers do the translation: one churn event maps to
//! its membership events (`node_leave`, and `node_join` when a
//! bystander was promoted into the vacated slot), and one completed
//! lookup maps to a `lookup_hops` observation.

use crate::chord::LookupOutcome;
use crate::churn::ChurnEvent;
use sos_observe::EventKind;

/// The `sos_observe` event kinds describing one churn event, in
/// emission order (departure before the replacement join).
pub fn churn_event_kinds(event: &ChurnEvent) -> Vec<EventKind> {
    match *event {
        ChurnEvent::BystanderDeparted(node) => {
            vec![EventKind::NodeLeave { node: node.0 }]
        }
        ChurnEvent::SosReplaced {
            departed, promoted, ..
        } => vec![
            EventKind::NodeLeave { node: departed.0 },
            EventKind::NodeJoin { node: promoted.0 },
        ],
        ChurnEvent::SosLost { departed, .. } => {
            vec![EventKind::NodeLeave { node: departed.0 }]
        }
    }
}

/// The `sos_observe` observation for one completed Chord lookup.
pub fn lookup_event_kind(outcome: &LookupOutcome) -> EventKind {
    EventKind::LookupHops {
        hops: outcome.hops() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chord::ChordRing;
    use crate::node::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn churn_events_map_to_membership_kinds() {
        let left = churn_event_kinds(&ChurnEvent::BystanderDeparted(NodeId(4)));
        assert_eq!(left, vec![EventKind::NodeLeave { node: 4 }]);

        let replaced = churn_event_kinds(&ChurnEvent::SosReplaced {
            departed: NodeId(1),
            promoted: NodeId(2),
            layer: 3,
        });
        assert_eq!(
            replaced,
            vec![
                EventKind::NodeLeave { node: 1 },
                EventKind::NodeJoin { node: 2 },
            ]
        );

        let lost = churn_event_kinds(&ChurnEvent::SosLost {
            departed: NodeId(9),
            layer: 2,
        });
        assert_eq!(lost, vec![EventKind::NodeLeave { node: 9 }]);
    }

    #[test]
    fn lookup_hops_match_outcome() {
        let members: Vec<NodeId> = (0..64).map(NodeId).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let ring = ChordRing::build(&mut rng, &members);
        let outcome = ring.lookup(NodeId(0), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(
            lookup_event_kind(&outcome),
            EventKind::LookupHops {
                hops: outcome.hops() as u32
            }
        );
    }
}
