//! Concrete overlay-network substrate for SOS simulation.
//!
//! The analytical model in `sos-analysis` works with *average-case set
//! sizes*; this crate instantiates actual overlays so the Monte Carlo
//! engine (`sos-sim`) can execute attacks node by node and measure the
//! empirical `P_S`:
//!
//! * [`overlay`] — the layered overlay: `N` overlay nodes of which `n`
//!   are SOS nodes assigned to layers, each with a concrete neighbor
//!   table into the next layer, plus the filter ring. Built from a
//!   validated [`sos_core::Scenario`] with a seeded RNG.
//! * [`chord`] — a full Chord DHT (SIGCOMM 2001), the routing substrate
//!   the original SOS architecture runs on: 64-bit identifier ring,
//!   finger tables, successor lists, iterative lookup with
//!   failure-aware fallback, join and leave.
//! * [`transport`] — how one overlay hop is realized: directly (the
//!   abstraction the paper analyses) or via Chord routing (which exposes
//!   the additional failure mode of compromised intermediate hops — the
//!   `ablation-chord` experiment).
//! * [`observe`] — translation of churn events and Chord lookups into
//!   the `sos-observe` event taxonomy.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sos_core::{MappingDegree, Scenario, SystemParams};
//! use sos_overlay::overlay::Overlay;
//!
//! let scenario = Scenario::builder()
//!     .system(SystemParams::new(1_000, 50, 0.5)?)
//!     .layers(3)
//!     .mapping(MappingDegree::OneTo(2))
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let overlay = Overlay::build(&scenario, &mut rng);
//! assert_eq!(overlay.layer_members(1).len(), 17); // 50 nodes over 3 layers
//! assert_eq!(overlay.layer_members(4).len(), 10); // the filter ring
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod chord;
pub mod churn;
pub mod node;
pub mod observe;
pub mod overlay;
pub mod protocol;
pub mod transport;

pub use bitset::{NodeBitSet, WordSelect};
pub use chord::{ChordRing, LookupOutcome};
pub use churn::{ChurnEvent, ChurnModel};
pub use node::{NodeId, NodeStatus, Role};
pub use overlay::Overlay;
pub use protocol::{ChordProtocol, MaintenanceEvent, ProtocolConfig};
pub use transport::{HopDelivery, Transport};
