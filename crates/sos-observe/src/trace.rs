//! Request-scoped tracing plane: span guards, a bounded flight
//! recorder, and Chrome trace-event export.
//!
//! The live telemetry plane ([`crate::telemetry`]) answers "how is the
//! process doing" with cumulative counters and phase histograms. This
//! module answers "where did *this request* spend its time": `sosd`
//! opens a root span per protocol request and the executor layers
//! below it (admission, executor-lock wait, cache probes, sweep
//! points, pool batch claims) attach child spans, all carrying the
//! request's trace id.
//!
//! Design rules, in order:
//!
//! * **Observes, never steers.** Spans read the monotonic clock and a
//!   process-global id counter — never the deterministic simulation
//!   RNG streams — so results are byte-identical with tracing on or
//!   off (property-tested in `tests/trace_plane.rs`).
//! * **Disabled means free.** Every hook starts with one relaxed
//!   atomic load; [`start`] returns `None` when the plane is off and
//!   the hot paths do nothing else.
//! * **Bounded.** Completed spans land in a fixed-capacity ring (the
//!   *flight recorder*); old spans are overwritten, memory never
//!   grows. The fast path is lock-free: a single `fetch_add` claims a
//!   slot, and the payload store uses an uncontended per-slot
//!   `try_lock` that *drops the span* rather than blocking if a
//!   reader holds the slot (`forbid(unsafe_code)` rules out a
//!   seqlock; losing one span under a concurrent dump is the accepted
//!   trade).
//!
//! Timestamps are nanoseconds since the trace epoch (first enable),
//! from `Instant` — wall-clock monotonic, unaffected by NTP steps.
//! Span ids come from a seeded counter ([`seed_ids`]); seeding exists
//! so replayed runs produce stable ids, not for randomness.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Spans kept by the process-global flight recorder.
pub const FLIGHT_RECORDER_CAPACITY: usize = 2048;

/// Span category for request-level spans (`sosd` protocol handling).
pub const CAT_REQUEST: &str = "request";
/// Span category for executor-level spans (cache probes, sweep points).
pub const CAT_EXEC: &str = "exec";
/// Span category for worker-pool spans (batch claims).
pub const CAT_POOL: &str = "pool";

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Next span id; ids are process-unique and strictly increasing from
/// the seed. Never fed by (or feeding) the sim RNG streams.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Ambient trace id (the current request id in `sosd`); 0 = none.
static CURRENT_TRACE: AtomicU64 = AtomicU64::new(0);
/// Ambient parent span id for child spans; 0 = root.
static CURRENT_PARENT: AtomicU64 = AtomicU64::new(0);
/// Next lane (Chrome `tid`) for threads that record spans.
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's stable lane id for Chrome trace rows.
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// The instant `t = 0` of every span timestamp: pinned on first use
/// (first enable or first span).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Turns the tracing plane on or off. Enabling pins the epoch so the
/// first span does not pay the `OnceLock` initialization.
pub fn set_enabled(enabled: bool) {
    if enabled {
        let _ = epoch();
    }
    ENABLED.store(enabled, Ordering::Release);
}

/// Whether the tracing plane is on (one relaxed load — the only cost
/// any hook pays when tracing is off).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Seeds the span-id counter. Ids handed out afterwards are
/// `seed + 1, seed + 2, …` — deterministic for replay harnesses,
/// entirely outside the simulation RNG streams.
pub fn seed_ids(seed: u64) {
    NEXT_SPAN_ID.store(seed.wrapping_add(1), Ordering::Relaxed);
}

/// Sets the ambient trace context: every span started afterwards (on
/// any thread) carries `trace_id` and nests under `parent_span`.
/// `sosd` calls this once per protocol request; executor execution is
/// serialized under one lock, so a single ambient slot is enough.
pub fn set_context(trace_id: u64, parent_span: u64) {
    CURRENT_TRACE.store(trace_id, Ordering::Release);
    CURRENT_PARENT.store(parent_span, Ordering::Release);
}

/// Clears the ambient trace context (end of request).
pub fn clear_context() {
    set_context(0, 0);
}

/// The current ambient trace id (0 when outside any request).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.load(Ordering::Acquire)
}

/// One completed span, as stored by the flight recorder.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Span name (e.g. `request:simulate`, `sweep-point`).
    pub name: String,
    /// Category: [`CAT_REQUEST`], [`CAT_EXEC`] or [`CAT_POOL`].
    pub cat: &'static str,
    /// Trace (request) id the span belongs to; 0 = untraced.
    pub trace_id: u64,
    /// Process-unique span id.
    pub span_id: u64,
    /// Enclosing span id; 0 = root.
    pub parent_id: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread's lane (Chrome `tid`).
    pub lane: u64,
    /// Small numeric annotations (`("trials", 40)`, `("hit", 1)`, …).
    pub args: Vec<(&'static str, u64)>,
}

/// A live span: created by [`start`], recorded into the flight
/// recorder when dropped (or explicitly via [`SpanGuard::end`]).
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    cat: &'static str,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    started: Instant,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// This span's id (to parent further children under it).
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Attaches a numeric annotation.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        self.args.push((key, value));
    }

    /// Ends the span now and returns the recorded copy.
    pub fn end(mut self) -> Span {
        let span = self.finish();
        recorder().record(span.clone());
        std::mem::forget(self); // finish() consumed the payload
        span
    }

    fn finish(&mut self) -> Span {
        Span {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            start_ns: self.start_ns,
            dur_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            lane: LANE.with(|l| *l),
            args: std::mem::take(&mut self.args),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        recorder().record(self.finish());
    }
}

/// Starts a span under the ambient context, or returns `None` when
/// tracing is disabled. The returned guard records itself on drop.
pub fn start(name: impl Into<String>, cat: &'static str) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    Some(start_with(
        name,
        cat,
        current_trace(),
        CURRENT_PARENT.load(Ordering::Acquire),
    ))
}

/// Starts a span with an explicit trace id and parent (the `sosd`
/// request root uses this; everything below uses [`start`]).
pub fn start_with(
    name: impl Into<String>,
    cat: &'static str,
    trace_id: u64,
    parent_id: u64,
) -> SpanGuard {
    let _ = epoch();
    SpanGuard {
        name: name.into(),
        cat,
        trace_id,
        span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent_id,
        started: Instant::now(),
        start_ns: now_ns(),
        args: Vec::new(),
    }
}

/// Records a completed span that began at `started`, under the
/// ambient context — for call sites that know a span's start only
/// after deciding it completed (e.g. the pool's per-point completion
/// tick). No-op when tracing is disabled.
pub fn record_since(
    name: impl Into<String>,
    cat: &'static str,
    started: Instant,
    args: &[(&'static str, u64)],
) {
    if !enabled() {
        return;
    }
    let start_ns = u64::try_from(
        started
            .checked_duration_since(epoch())
            .unwrap_or_default()
            .as_nanos(),
    )
    .unwrap_or(u64::MAX);
    recorder().record(Span {
        name: name.into(),
        cat,
        trace_id: current_trace(),
        span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent_id: CURRENT_PARENT.load(Ordering::Acquire),
        start_ns,
        dur_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        lane: LANE.with(|l| *l),
        args: args.to_vec(),
    });
}

/// A bounded ring of completed spans. See the module docs for the
/// concurrency contract.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Span>>>,
    /// Total spans ever claimed; `claim % capacity` is the slot.
    claim: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            claim: AtomicU64::new(0),
        }
    }

    /// Stores a completed span, overwriting the oldest when full.
    pub fn record(&self, span: Span) {
        let n = self.claim.fetch_add(1, Ordering::Relaxed);
        let slot = (n % self.slots.len() as u64) as usize;
        // Non-blocking by design: a dump in progress holds slot locks
        // briefly; losing that one span beats stalling a worker.
        if let Ok(mut guard) = self.slots[slot].try_lock() {
            *guard = Some(span);
        }
    }

    /// Total spans ever recorded (claims, including any dropped under
    /// try-lock contention).
    pub fn recorded(&self) -> u64 {
        self.claim.load(Ordering::Relaxed)
    }

    /// The most recent spans, oldest first, at most `max`.
    pub fn recent(&self, max: usize) -> Vec<Span> {
        let claimed = self.claim.load(Ordering::Acquire);
        let capacity = self.slots.len() as u64;
        let live = claimed.min(capacity);
        let first = claimed - live;
        let mut out = Vec::with_capacity(live as usize);
        for n in first..claimed {
            let slot = (n % capacity) as usize;
            if let Ok(guard) = self.slots[slot].lock() {
                if let Some(span) = guard.as_ref() {
                    out.push(span.clone());
                }
            }
        }
        if out.len() > max {
            out.drain(..out.len() - max);
        }
        out
    }

    /// Clears every slot (tests and explicit resets).
    pub fn clear(&self) {
        for slot in &self.slots {
            if let Ok(mut guard) = slot.lock() {
                *guard = None;
            }
        }
        self.claim.store(0, Ordering::Release);
    }
}

/// The process-global flight recorder every [`SpanGuard`] records
/// into.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::with_capacity(FLIGHT_RECORDER_CAPACITY))
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders one span as a Chrome trace-event object (`ph: "X"`,
/// timestamps in microseconds with nanosecond precision preserved in
/// the fraction).
fn chrome_event(span: &Span, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape_json(&span.name, out);
    out.push_str("\",\"cat\":\"");
    escape_json(span.cat, out);
    out.push_str("\",\"ph\":\"X\",\"ts\":");
    // Microseconds as a decimal with three fractional digits: Chrome
    // and Perfetto take doubles here; formatting from integers keeps
    // the output byte-stable.
    out.push_str(&format!(
        "{}.{:03}",
        span.start_ns / 1_000,
        span.start_ns % 1_000
    ));
    out.push_str(",\"dur\":");
    out.push_str(&format!("{}.{:03}", span.dur_ns / 1_000, span.dur_ns % 1_000));
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&span.lane.to_string());
    out.push_str(",\"args\":{\"trace_id\":");
    out.push_str(&span.trace_id.to_string());
    out.push_str(",\"span_id\":");
    out.push_str(&span.span_id.to_string());
    out.push_str(",\"parent_id\":");
    out.push_str(&span.parent_id.to_string());
    for (key, value) in &span.args {
        out.push_str(",\"");
        escape_json(key, out);
        out.push_str("\":");
        out.push_str(&value.to_string());
    }
    out.push_str("}}");
}

/// Renders spans as a Chrome trace-event JSON document — the exact
/// bytes `GET /debug/trace` serves; loadable in Perfetto and
/// `chrome://tracing`.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        chrome_event(span, &mut out);
    }
    out.push_str("]}");
    out
}

/// Renders spans as JSONL (one Chrome event object per line) — the
/// flight-recorder dump format used by anomaly dumps and slow logs.
pub fn spans_jsonl(spans: &[Span]) -> String {
    let mut out = String::with_capacity(spans.len() * 160);
    for span in spans {
        chrome_event(span, &mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global enable flag.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn test_span(name: &str, trace_id: u64) -> Span {
        Span {
            name: name.to_string(),
            cat: CAT_EXEC,
            trace_id,
            span_id: 7,
            parent_id: 3,
            start_ns: 1_234_567,
            dur_ns: 89_012,
            lane: 2,
            args: vec![("trials", 40)],
        }
    }

    #[test]
    fn recorder_keeps_last_n_in_order() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            rec.record(test_span(&format!("s{i}"), i));
        }
        let recent = rec.recent(usize::MAX);
        let names: Vec<&str> = recent.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s6", "s7", "s8", "s9"]);
        assert_eq!(rec.recorded(), 10);
        let capped = rec.recent(2);
        assert_eq!(capped.len(), 2);
        assert_eq!(capped[0].name, "s8");
        rec.clear();
        assert!(rec.recent(usize::MAX).is_empty());
    }

    #[test]
    fn start_is_none_when_disabled_and_records_when_enabled() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        assert!(start("nope", CAT_EXEC).is_none());

        set_enabled(true);
        let before = recorder().recorded();
        set_context(42, 9);
        let mut span = start("probe", CAT_EXEC).expect("enabled");
        span.arg("hit", 1);
        let recorded = span.end();
        clear_context();
        set_enabled(false);

        assert_eq!(recorded.trace_id, 42);
        assert_eq!(recorded.parent_id, 9);
        assert_eq!(recorded.args, vec![("hit", 1)]);
        assert!(recorder().recorded() > before);
    }

    #[test]
    fn span_ids_are_unique_and_increasing() {
        let a = start_with("a", CAT_REQUEST, 1, 0);
        let b = start_with("b", CAT_REQUEST, 1, a.id());
        assert!(b.id() > a.id());
        let a = a.end();
        let b = b.end();
        assert_eq!(b.parent_id, a.span_id);
    }

    #[test]
    fn chrome_json_shape_is_loadable() {
        let doc = chrome_trace_json(&[test_span("sweep \"quoted\"", 5)]);
        let parsed: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev["ph"].as_str(), Some("X"));
        assert_eq!(ev["pid"].as_u64(), Some(1));
        assert_eq!(ev["name"].as_str(), Some("sweep \"quoted\""));
        assert_eq!(ev["args"]["trace_id"].as_u64(), Some(5));
        assert_eq!(ev["args"]["trials"].as_u64(), Some(40));
        // 1_234_567 ns = 1234.567 µs, preserved exactly.
        assert!((ev["ts"].as_f64().unwrap() - 1234.567).abs() < 1e-9);
        assert!((ev["dur"].as_f64().unwrap() - 89.012).abs() < 1e-9);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let spans = vec![test_span("a", 1), test_span("b", 2)];
        let text = spans_jsonl(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let _: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
        }
    }
}
