//! The trace event taxonomy.
//!
//! Every [`EventKind`] variant corresponds to a decision point the
//! paper's model makes observable — the mapping to equations and to
//! Algorithm 1 steps is tabulated in the repository's `EXPERIMENTS.md`
//! (§ "Event taxonomy"). Node identifiers are raw `u32` indices (the
//! inner value of `sos-overlay`'s `NodeId`) so this crate stays
//! dependency-free.

use std::fmt;

/// A named span of the attack/measurement lifecycle within one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Break-in trials against SOS nodes (budget `N_T`, eq. 1–4).
    BreakIn,
    /// Congestion of disclosed/guessed nodes (budget `N_C`, eq. 5–7).
    Congestion,
    /// Client messages routed through the attacked overlay (`P_S`).
    Routing,
    /// Overlay self-healing between or after attack rounds.
    Repair,
    /// Membership churn (joins/departures) on the overlay.
    Churn,
}

impl Phase {
    /// Stable lowercase label used in JSONL and timeline output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::BreakIn => "break-in",
            Phase::Congestion => "congestion",
            Phase::Routing => "routing",
            Phase::Repair => "repair",
            Phase::Churn => "churn",
        }
    }

    /// All phases, in canonical lifecycle order.
    pub const ALL: [Phase; 5] = [
        Phase::BreakIn,
        Phase::Congestion,
        Phase::Routing,
        Phase::Repair,
        Phase::Churn,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened at one instrumented decision point.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A trial began (fresh overlay, fresh attack).
    TrialStart {
        /// The derived per-trial seed of the attack/routing stream.
        seed: u64,
    },
    /// A trial finished.
    TrialEnd {
        /// Messages delivered out of those attempted this trial.
        delivered: u64,
        /// Messages attempted this trial.
        attempted: u64,
    },
    /// A lifecycle phase opened.
    PhaseStart {
        /// Which phase.
        phase: Phase,
    },
    /// A lifecycle phase closed.
    PhaseEnd {
        /// Which phase.
        phase: Phase,
    },
    /// One break-in trial against an SOS node (paper §3: each trial
    /// succeeds with probability `P_b`).
    BreakInAttempt {
        /// 1-based layer of the target, `0` if the target sat on no
        /// layer (bystander).
        layer: u32,
        /// Target node.
        node: u32,
        /// Whether the intruder got in.
        succeeded: bool,
    },
    /// A broken node revealed a neighbor identity to the attacker
    /// (successive attack's information cascade).
    Disclosure {
        /// The already-broken node doing the revealing.
        source: u32,
        /// The newly revealed node.
        revealed: u32,
    },
    /// A node known to the attacker before the attack started (prior
    /// knowledge probability `P_E`).
    PriorKnowledge {
        /// The known node.
        node: u32,
    },
    /// A congestion slot was spent on a node (budget `N_C`).
    CongestionOnset {
        /// The congested node.
        node: u32,
        /// `true` if the node was specifically targeted (disclosed or
        /// known), `false` if the slot was spent on a random guess.
        targeted: bool,
    },
    /// A previously bad node was restored by the overlay's healing.
    NodeRepair {
        /// The repaired node.
        node: u32,
    },
    /// One Algorithm 1 round began, with the branch the attacker took.
    AttackRound {
        /// 1-based round number.
        round: u32,
        /// Which of Algorithm 1's cases 1–4 applied this round.
        case: u8,
        /// Nodes the attacker knew entering the round.
        known: u64,
    },
    /// A client message entered the overlay.
    RouteAttempt {
        /// 0-based message index within the trial.
        route: u64,
    },
    /// A client message reached the target.
    RouteDelivered {
        /// 0-based message index within the trial.
        route: u64,
        /// Underlay hops the delivery took.
        hops: u32,
    },
    /// A client message died inside the overlay.
    RouteFailed {
        /// 0-based message index within the trial.
        route: u64,
        /// Deepest 1-based layer reached before dying (`0`: died at
        /// the access point).
        deepest_layer: u32,
    },
    /// A Chord lookup completed (transport-level observation).
    LookupHops {
        /// Overlay hops on the lookup path.
        hops: u32,
    },
    /// A node joined the overlay (churn or promotion).
    NodeJoin {
        /// The joining/promoted node.
        node: u32,
    },
    /// A node departed the overlay (churn).
    NodeLeave {
        /// The departed node.
        node: u32,
    },
    /// The fault plane injected a benign fault on a hop (`sos-faults`).
    FaultInjected {
        /// Hop sender.
        from: u32,
        /// Hop destination.
        to: u32,
        /// Which fault class fired.
        fault: FaultClass,
        /// Simulated ticks the fault cost (0 for loss/misroute, which
        /// cost an attempt instead).
        ticks: u64,
    },
    /// The retry loop scheduled another delivery attempt for a hop.
    HopRetry {
        /// Hop sender.
        from: u32,
        /// Hop destination.
        to: u32,
        /// 1-based attempt number being started.
        attempt: u32,
        /// Backoff ticks waited before the attempt.
        backoff: u64,
    },
    /// Routing fell back to a degraded delivery mode after a hop
    /// exhausted its retries.
    RouteDowngrade {
        /// Hop sender.
        from: u32,
        /// Hop destination the degraded mode aimed at (or abandoned).
        to: u32,
        /// Which degradation stage was taken.
        fallback: FallbackMode,
        /// Whether the degraded mode delivered the hop.
        recovered: bool,
    },
    /// The sweep executor (`sos-sim`) dispatched a sweep point for
    /// execution. The enclosing [`Event::trial`] carries the point
    /// index within the sweep.
    SweepPointStart {
        /// 0-based point index within the sweep call.
        point: u64,
        /// Content fingerprint of the point's configuration.
        fingerprint: u64,
        /// Monte Carlo trials the point will run.
        trials: u64,
    },
    /// The sweep executor answered a point from its cache (or from an
    /// identical point earlier in the same sweep) without running it.
    SweepPointCached {
        /// 0-based point index within the sweep call.
        point: u64,
        /// Content fingerprint of the point's configuration.
        fingerprint: u64,
    },
}

/// Benign fault classes injected by the fault plane (`sos-faults`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Message dropped in flight.
    Loss,
    /// Message delayed in flight.
    Delay,
    /// Destination (or every route to it) benignly crashed.
    Crash,
    /// Destination alive but slow.
    Slow,
    /// Lookup step misdirected by Byzantine/stale routing state.
    Misroute,
}

impl FaultClass {
    /// Stable lowercase label used in JSONL and timeline output.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Loss => "loss",
            FaultClass::Delay => "delay",
            FaultClass::Crash => "crash",
            FaultClass::Slow => "slow",
            FaultClass::Misroute => "misroute",
        }
    }
}

/// Graceful-degradation stages reported by [`EventKind::RouteDowngrade`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackMode {
    /// Successor-list walking instead of finger-table routing.
    SuccessorWalk,
    /// An alternate next-layer neighbor instead of the failed one.
    AlternateNeighbor,
}

impl FallbackMode {
    /// Stable label used in JSONL and timeline output.
    pub fn label(self) -> &'static str {
        match self {
            FallbackMode::SuccessorWalk => "successor-walk",
            FallbackMode::AlternateNeighbor => "alternate-neighbor",
        }
    }
}

impl EventKind {
    /// Stable kind tag used as the JSONL `kind` field.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::TrialStart { .. } => "trial_start",
            EventKind::TrialEnd { .. } => "trial_end",
            EventKind::PhaseStart { .. } => "phase_start",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::BreakInAttempt { .. } => "break_in_attempt",
            EventKind::Disclosure { .. } => "disclosure",
            EventKind::PriorKnowledge { .. } => "prior_knowledge",
            EventKind::CongestionOnset { .. } => "congestion_onset",
            EventKind::NodeRepair { .. } => "node_repair",
            EventKind::AttackRound { .. } => "attack_round",
            EventKind::RouteAttempt { .. } => "route_attempt",
            EventKind::RouteDelivered { .. } => "route_delivered",
            EventKind::RouteFailed { .. } => "route_failed",
            EventKind::LookupHops { .. } => "lookup_hops",
            EventKind::NodeJoin { .. } => "node_join",
            EventKind::NodeLeave { .. } => "node_leave",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::HopRetry { .. } => "hop_retry",
            EventKind::RouteDowngrade { .. } => "route_downgrade",
            EventKind::SweepPointStart { .. } => "sweep_point_start",
            EventKind::SweepPointCached { .. } => "sweep_point_cached",
        }
    }
}

/// One timestamped observation within a trial.
///
/// `t` is a logical tick — a counter the emitting layer increments per
/// event — not wall-clock time: the simulation has no physical clock,
/// and logical ticks keep traces bit-identical across machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical tick within the trial (monotone per trial).
    pub t: u64,
    /// 0-based Monte Carlo trial index.
    pub trial: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    pub fn new(t: u64, trial: u64, kind: EventKind) -> Self {
        Event { t, trial, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable_and_distinct() {
        let kinds = [
            EventKind::TrialStart { seed: 0 },
            EventKind::TrialEnd { delivered: 0, attempted: 0 },
            EventKind::PhaseStart { phase: Phase::BreakIn },
            EventKind::PhaseEnd { phase: Phase::BreakIn },
            EventKind::BreakInAttempt { layer: 0, node: 0, succeeded: false },
            EventKind::Disclosure { source: 0, revealed: 0 },
            EventKind::PriorKnowledge { node: 0 },
            EventKind::CongestionOnset { node: 0, targeted: false },
            EventKind::NodeRepair { node: 0 },
            EventKind::AttackRound { round: 0, case: 1, known: 0 },
            EventKind::RouteAttempt { route: 0 },
            EventKind::RouteDelivered { route: 0, hops: 0 },
            EventKind::RouteFailed { route: 0, deepest_layer: 0 },
            EventKind::LookupHops { hops: 0 },
            EventKind::NodeJoin { node: 0 },
            EventKind::NodeLeave { node: 0 },
            EventKind::FaultInjected {
                from: 0,
                to: 0,
                fault: FaultClass::Loss,
                ticks: 0,
            },
            EventKind::HopRetry { from: 0, to: 0, attempt: 0, backoff: 0 },
            EventKind::RouteDowngrade {
                from: 0,
                to: 0,
                fallback: FallbackMode::SuccessorWalk,
                recovered: false,
            },
            EventKind::SweepPointStart { point: 0, fingerprint: 0, trials: 0 },
            EventKind::SweepPointCached { point: 0, fingerprint: 0 },
        ];
        let mut tags: Vec<&str> = kinds.iter().map(EventKind::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), kinds.len(), "duplicate kind tag");
    }

    #[test]
    fn phase_labels_cover_all() {
        for phase in Phase::ALL {
            assert!(!phase.label().is_empty());
            assert_eq!(phase.to_string(), phase.label());
        }
    }

    #[test]
    fn fault_and_fallback_labels_distinct() {
        let fault_labels = [
            FaultClass::Loss,
            FaultClass::Delay,
            FaultClass::Crash,
            FaultClass::Slow,
            FaultClass::Misroute,
        ]
        .map(FaultClass::label);
        let mut sorted = fault_labels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), fault_labels.len());
        assert_ne!(
            FallbackMode::SuccessorWalk.label(),
            FallbackMode::AlternateNeighbor.label()
        );
    }
}
