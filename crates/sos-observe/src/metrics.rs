//! Metrics primitives: counters, gauges, fixed-bucket histograms, and
//! the named [`MetricsRegistry`] that aggregates them.
//!
//! Everything here supports `merge`, so per-worker registries built on
//! simulation threads can be combined into one result. Merging is
//! exactly associative for all integer state (counter values, bucket
//! counts, sample counts); histogram/gauge *sums* are `f64` additions,
//! which are associative whenever the recorded samples are
//! integer-valued — true for every metric this workspace records
//! (hops, path lengths, logical-tick durations).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A monotone event count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Folds another counter in (addition — associative and
    /// commutative).
    pub fn merge(&mut self, other: &Counter) {
        self.value += other.value;
    }
}

/// A point-in-time value.
///
/// `merge` **sums** the two values: across workers a gauge therefore
/// behaves like "total across threads", which fits additive quantities
/// (time spent in a phase, slots consumed). Don't put non-additive
/// quantities (a rate, a final probability) in a merged gauge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Adds to the value.
    pub fn add(&mut self, delta: f64) {
        self.value += delta;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Folds another gauge in (addition; see the type-level caveat).
    pub fn merge(&mut self, other: &Gauge) {
        self.value += other.value;
    }
}

/// A fixed-bucket histogram: counts of samples `≤` each upper bound,
/// plus an overflow bucket.
///
/// Bounds are fixed at construction, which is what makes `merge`
/// trivially associative — two histograms over the same bounds merge
/// by adding counts bucket-wise.
///
/// ```
/// use sos_observe::Histogram;
///
/// // Route latency in underlay hops: buckets ≤2, ≤4, ≤8, overflow.
/// let mut h = Histogram::new(vec![2.0, 4.0, 8.0]);
/// for hops in [1.0, 3.0, 3.0, 9.0] {
///     h.record(hops);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_counts(), &[1, 2, 0, 1]); // last = overflow
/// assert_eq!(h.mean(), Some(4.0));
///
/// // Merging is bucket-wise addition.
/// let mut other = Histogram::new(vec![2.0, 4.0, 8.0]);
/// other.record(2.0);
/// h.merge(&other);
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Strictly increasing inclusive upper bounds.
    bounds: Vec<f64>,
    /// `counts[i]` = samples `≤ bounds[i]` (and `> bounds[i-1]`);
    /// `counts[bounds.len()]` = overflow.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over inclusive upper `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            sum: 0.0,
            count: 0,
        }
    }

    /// `n` equal-width buckets spanning `[lo, hi]` (plus overflow).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn uniform(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && lo < hi, "need n > 0 and lo < hi");
        let width = (hi - lo) / n as f64;
        Histogram::new((1..=n).map(|i| lo + width * i as f64).collect())
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        // partition_point: first bucket whose bound is ≥ value.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Folds another histogram in (bucket-wise addition).
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A named collection of metrics with associative merge and CSV export.
///
/// Names are free-form; `BTreeMap` storage keeps exports
/// deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The named counter, created zeroed on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// The named gauge, created zeroed on first use.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_string()).or_default()
    }

    /// The named histogram, created over `bounds` on first use.
    ///
    /// # Panics
    ///
    /// Panics if the histogram exists with different bounds (two call
    /// sites disagreeing about a metric is a bug worth failing fast
    /// on).
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> &mut Histogram {
        let h = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()));
        assert_eq!(h.bounds(), bounds, "histogram `{name}` bounds mismatch");
        h
    }

    /// Read-only view of a counter's value, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(Counter::get)
    }

    /// Read-only view of a gauge's value, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// Read-only view of a histogram, if present.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry in: metrics present in both merge;
    /// metrics present only in `other` are copied.
    ///
    /// # Panics
    ///
    /// Panics if a histogram name is present in both with different
    /// bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, c) in &other.counters {
            self.counters.entry(name.clone()).or_default().merge(c);
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().merge(g);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders every metric as CSV rows `metric,type,stat,value`.
    ///
    /// Histograms expand to `count`, `sum`, `mean`, one `le_<bound>`
    /// row per bucket, and `overflow`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,type,stat,value\n");
        for (name, c) in &self.counters {
            let _ = writeln!(out, "{name},counter,value,{}", c.get());
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "{name},gauge,value,{}", g.get());
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{name},histogram,count,{}", h.count());
            let _ = writeln!(out, "{name},histogram,sum,{}", h.sum());
            let _ = writeln!(
                out,
                "{name},histogram,mean,{}",
                h.mean().map_or(String::from("nan"), |m| format!("{m:.6}"))
            );
            for (bound, count) in h.bounds().iter().zip(h.bucket_counts()) {
                let _ = writeln!(out, "{name},histogram,le_{bound},{count}");
            }
            let _ = writeln!(
                out,
                "{name},histogram,overflow,{}",
                h.bucket_counts().last().expect("histogram has buckets")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        g.set(2.5);
        g.add(0.5);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(1.0); // lands in ≤1.0 (inclusive upper bound)
        h.record(1.5);
        h.record(2.0);
        h.record(2.0001); // overflow
        assert_eq!(h.bucket_counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn uniform_buckets_span_range() {
        let h = Histogram::uniform(0.0, 10.0, 5);
        assert_eq!(h.bounds(), &[2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_bounds_rejected() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(vec![1.0]);
        let b = Histogram::new(vec![2.0]);
        a.merge(&b);
    }

    /// Worker registry for the associativity test: distinct metric
    /// names per worker exercise the union path, shared names the
    /// combine path.
    fn worker_registry(seed: u64) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.counter("shared").add(seed + 1);
        r.counter(&format!("only_{seed}")).inc();
        r.gauge("level").add(seed as f64 * 0.5);
        let h = r.histogram("hops", &[2.0, 4.0, 8.0]);
        for i in 0..=seed {
            h.record((seed + i) as f64);
        }
        r
    }

    #[test]
    fn registry_merge_is_associative_and_order_independent() {
        // Thread fan-in merges worker registries pairwise in whatever
        // order workers finish; the result must not depend on that
        // order: ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) == ((c ⊕ a) ⊕ b).
        let (a, b, c) = (worker_registry(0), worker_registry(3), worker_registry(7));

        let mut left = MetricsRegistry::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);

        let mut right_tail = MetricsRegistry::new();
        right_tail.merge(&b);
        right_tail.merge(&c);
        let mut right = MetricsRegistry::new();
        right.merge(&a);
        right.merge(&right_tail);

        let mut rotated = MetricsRegistry::new();
        rotated.merge(&c);
        rotated.merge(&a);
        rotated.merge(&b);

        for r in [&right, &rotated] {
            assert_eq!(r.counter_value("shared"), left.counter_value("shared"));
            for seed in [0, 3, 7] {
                assert_eq!(r.counter_value(&format!("only_{seed}")), Some(1));
            }
            assert_eq!(r.gauge_value("level"), left.gauge_value("level"));
            let (h, l) = (
                r.get_histogram("hops").unwrap(),
                left.get_histogram("hops").unwrap(),
            );
            assert_eq!(h.bucket_counts(), l.bucket_counts());
            assert_eq!(h.count(), l.count());
            // Sums of integer-valued samples are exactly associative.
            assert_eq!(h.sum(), l.sum());
        }
        assert_eq!(left.counter_value("shared"), Some(1 + 4 + 8));
    }

    #[test]
    fn registry_csv_is_deterministic() {
        let mut r = MetricsRegistry::new();
        r.counter("zeta").add(3);
        r.counter("alpha").inc();
        r.gauge("mid").set(1.5);
        r.histogram("hops", &[2.0, 4.0]).record(3.0);
        let csv = r.to_csv();
        let alpha = csv.find("alpha,counter").unwrap();
        let zeta = csv.find("zeta,counter").unwrap();
        assert!(alpha < zeta, "counters sorted by name");
        assert!(csv.contains("hops,histogram,le_4,1"));
        assert!(csv.contains("hops,histogram,overflow,0"));
        assert_eq!(csv, r.to_csv());
    }
}
