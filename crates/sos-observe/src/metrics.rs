//! Metrics primitives: counters, gauges, fixed-bucket histograms, and
//! the named [`MetricsRegistry`] that aggregates them.
//!
//! Everything here supports `merge`, so per-worker registries built on
//! simulation threads can be combined into one result. Merging is
//! exactly associative for all integer state (counter values, bucket
//! counts, sample counts); histogram/gauge *sums* are `f64` additions,
//! which are associative whenever the recorded samples are
//! integer-valued — true for every metric this workspace records
//! (hops, path lengths, logical-tick durations).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A monotone event count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Folds another counter in (addition — associative and
    /// commutative).
    pub fn merge(&mut self, other: &Counter) {
        self.value += other.value;
    }
}

/// A point-in-time value.
///
/// `merge` **sums** the two values: across workers a gauge therefore
/// behaves like "total across threads", which fits additive quantities
/// (time spent in a phase, slots consumed). Don't put non-additive
/// quantities (a rate, a final probability) in a merged gauge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Adds to the value.
    pub fn add(&mut self, delta: f64) {
        self.value += delta;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Folds another gauge in (addition; see the type-level caveat).
    pub fn merge(&mut self, other: &Gauge) {
        self.value += other.value;
    }
}

/// A fixed-bucket histogram: counts of samples `≤` each upper bound,
/// plus an overflow bucket.
///
/// Bounds are fixed at construction, which is what makes `merge`
/// trivially associative — two histograms over the same bounds merge
/// by adding counts bucket-wise.
///
/// ```
/// use sos_observe::Histogram;
///
/// // Route latency in underlay hops: buckets ≤2, ≤4, ≤8, overflow.
/// let mut h = Histogram::new(vec![2.0, 4.0, 8.0]);
/// for hops in [1.0, 3.0, 3.0, 9.0] {
///     h.record(hops);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_counts(), &[1, 2, 0, 1]); // last = overflow
/// assert_eq!(h.mean(), Some(4.0));
///
/// // Merging is bucket-wise addition.
/// let mut other = Histogram::new(vec![2.0, 4.0, 8.0]);
/// other.record(2.0);
/// h.merge(&other);
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Strictly increasing inclusive upper bounds.
    bounds: Vec<f64>,
    /// `counts[i]` = samples `≤ bounds[i]` (and `> bounds[i-1]`);
    /// `counts[bounds.len()]` = overflow.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    /// NaN samples rejected by [`record`](Self::record) — kept out of
    /// every bucket and out of `sum`/`count` so they cannot poison the
    /// mean or the quantiles.
    invalid: u64,
}

impl Histogram {
    /// Creates a histogram over inclusive upper `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            sum: 0.0,
            count: 0,
            invalid: 0,
        }
    }

    /// Reconstructs a histogram from raw parts: `counts` must hold one
    /// entry per bound plus the overflow bucket. Used by the telemetry
    /// plane to turn atomically-accumulated bucket counts into a
    /// queryable histogram.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are invalid (see [`new`](Self::new)) or
    /// `counts.len() != bounds.len() + 1`.
    pub fn from_parts(bounds: Vec<f64>, counts: Vec<u64>, sum: f64) -> Self {
        let mut h = Histogram::new(bounds);
        assert_eq!(
            counts.len(),
            h.counts.len(),
            "need one count per bound plus overflow"
        );
        h.count = counts.iter().sum();
        h.counts = counts;
        h.sum = sum;
        h
    }

    /// `n` equal-width buckets spanning `[lo, hi]` (plus overflow).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn uniform(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && lo < hi, "need n > 0 and lo < hi");
        let width = (hi - lo) / n as f64;
        Histogram::new((1..=n).map(|i| lo + width * i as f64).collect())
    }

    /// Records one sample.
    ///
    /// A NaN sample is counted in [`invalid_count`](Self::invalid_count)
    /// and otherwise ignored: `partition_point` with NaN (every
    /// comparison false) would land it in the *first* bucket and poison
    /// `sum`/`mean`, so NaN never reaches a bucket or the sum.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            self.invalid += 1;
            return;
        }
        // partition_point: first bucket whose bound is ≥ value.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// NaN samples rejected by [`record`](Self::record).
    pub fn invalid_count(&self) -> u64 {
        self.invalid
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) estimated by linear
    /// interpolation within the containing bucket, or `None` if the
    /// histogram is empty. The first bucket interpolates from `0` (all
    /// workspace metrics are non-negative); a quantile landing in the
    /// overflow bucket clamps to the last finite bound — the histogram
    /// carries no upper edge to interpolate toward.
    ///
    /// ```
    /// use sos_observe::Histogram;
    ///
    /// // 100 samples uniform over (0, 100]: ten per decade bucket.
    /// let mut h = Histogram::uniform(0.0, 100.0, 10);
    /// for v in 1..=100 {
    ///     h.record(v as f64);
    /// }
    /// assert_eq!(h.quantile(0.5), Some(50.0));
    /// assert_eq!(h.quantile(0.95), Some(95.0));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let mut below = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let through = below + c as f64;
            if c > 0 && through >= target {
                let last = *self.bounds.last().expect("histogram has bounds");
                if i == self.bounds.len() {
                    return Some(last); // overflow bucket: clamp
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = ((target - below) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            below = through;
        }
        // count > 0 guarantees some bucket satisfied `through >= target`
        // (target ≤ count); unreachable, but stay total.
        self.bounds.last().copied()
    }

    /// Folds another histogram in (bucket-wise addition).
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.invalid += other.invalid;
    }
}

/// A named collection of metrics with associative merge and CSV export.
///
/// Names are free-form; `BTreeMap` storage keeps exports
/// deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The named counter, created zeroed on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// The named gauge, created zeroed on first use.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_string()).or_default()
    }

    /// The named histogram, created over `bounds` on first use.
    ///
    /// # Panics
    ///
    /// Panics if the histogram exists with different bounds (two call
    /// sites disagreeing about a metric is a bug worth failing fast
    /// on).
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> &mut Histogram {
        let h = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()));
        assert_eq!(h.bounds(), bounds, "histogram `{name}` bounds mismatch");
        h
    }

    /// Read-only view of a counter's value, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(Counter::get)
    }

    /// Read-only view of a gauge's value, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// Read-only view of a histogram, if present.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry in: metrics present in both merge;
    /// metrics present only in `other` are copied.
    ///
    /// # Panics
    ///
    /// Panics if a histogram name is present in both with different
    /// bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, c) in &other.counters {
            self.counters.entry(name.clone()).or_default().merge(c);
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().merge(g);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders every metric as CSV rows `metric,type,stat,value`.
    ///
    /// Histograms expand to `count`, `sum`, `mean`, one `le_<bound>`
    /// row per bucket, and `overflow`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,type,stat,value\n");
        for (name, c) in &self.counters {
            let _ = writeln!(out, "{name},counter,value,{}", c.get());
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "{name},gauge,value,{}", g.get());
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{name},histogram,count,{}", h.count());
            let _ = writeln!(out, "{name},histogram,sum,{}", h.sum());
            let _ = writeln!(
                out,
                "{name},histogram,mean,{}",
                h.mean().map_or(String::from("nan"), |m| format!("{m:.6}"))
            );
            for (bound, count) in h.bounds().iter().zip(h.bucket_counts()) {
                let _ = writeln!(out, "{name},histogram,le_{bound},{count}");
            }
            let _ = writeln!(
                out,
                "{name},histogram,overflow,{}",
                h.bucket_counts().last().expect("histogram has buckets")
            );
            let _ = writeln!(out, "{name},histogram,invalid,{}", h.invalid_count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        g.set(2.5);
        g.add(0.5);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(1.0); // lands in ≤1.0 (inclusive upper bound)
        h.record(1.5);
        h.record(2.0);
        h.record(2.0001); // overflow
        assert_eq!(h.bucket_counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn uniform_buckets_span_range() {
        let h = Histogram::uniform(0.0, 10.0, 5);
        assert_eq!(h.bounds(), &[2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_bounds_rejected() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn nan_samples_go_to_the_invalid_counter() {
        // Regression: `partition_point(|&b| b < NaN)` is 0 (every
        // comparison false), so NaN used to land in the *first* bucket
        // and drive `sum`/`mean` to NaN. It must never reach a bucket.
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(f64::NAN);
        h.record(1.5);
        h.record(f64::NAN);
        assert_eq!(h.invalid_count(), 2);
        assert_eq!(h.count(), 1, "NaN must not count as a sample");
        assert_eq!(h.bucket_counts(), &[0, 1, 0], "NaN must not fill a bucket");
        assert_eq!(h.mean(), Some(1.5), "NaN must not poison the mean");
        assert_eq!(h.sum(), 1.5);

        // Invalid counts survive a merge.
        let mut other = Histogram::new(vec![1.0, 2.0]);
        other.record(f64::NAN);
        h.merge(&other);
        assert_eq!(h.invalid_count(), 3);
        assert_eq!(h.count(), 1);
        assert!(h.to_csv_row_smoke());
    }

    impl Histogram {
        /// Test helper: the registry CSV must expose the invalid count.
        fn to_csv_row_smoke(&self) -> bool {
            let mut r = MetricsRegistry::new();
            *r.histogram("h", self.bounds()) = self.clone();
            r.to_csv().contains(&format!("h,histogram,invalid,{}", self.invalid_count()))
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // Uniform integers 1..=100 over decade buckets: quantile(q)
        // should land at ~100q exactly (each bucket holds 10 samples
        // spread over a width of 10).
        let mut h = Histogram::uniform(0.0, 100.0, 10);
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        // q = 0 interpolates to the lower edge of the first occupied
        // bucket (0 for bucket zero).
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn quantile_handles_point_masses_and_overflow() {
        // All mass in one bucket: every quantile stays inside it.
        let mut h = Histogram::new(vec![10.0, 20.0, 30.0]);
        for _ in 0..4 {
            h.record(15.0);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((10.0..=20.0).contains(&p50), "p50 {p50}");
        // Overflow mass clamps to the last finite bound.
        let mut o = Histogram::new(vec![10.0]);
        o.record(99.0);
        o.record(500.0);
        assert_eq!(o.quantile(0.99), Some(10.0));
        // Empty histogram has no quantiles.
        assert_eq!(Histogram::new(vec![1.0]).quantile(0.5), None);
    }

    #[test]
    fn quantile_matches_known_skewed_distribution() {
        // 90 fast samples (≤ 8) and 10 slow ones (in (64, 128]): the
        // p50 must sit in the fast bucket, the p95/p99 in the slow one.
        let bounds: Vec<f64> = (0..8).map(|p| (1u64 << (p + 3)) as f64).collect();
        let mut h = Histogram::new(bounds);
        for _ in 0..90 {
            h.record(6.0);
        }
        for _ in 0..10 {
            h.record(100.0);
        }
        assert!(h.quantile(0.5).unwrap() <= 8.0);
        let p95 = h.quantile(0.95).unwrap();
        assert!((64.0..=128.0).contains(&p95), "p95 {p95}");
        assert!(h.quantile(0.99).unwrap() > p95);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let _ = Histogram::new(vec![1.0]).quantile(1.5);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new(vec![2.0, 4.0]);
        h.record(1.0);
        h.record(3.0);
        h.record(9.0);
        let rebuilt = Histogram::from_parts(
            h.bounds().to_vec(),
            h.bucket_counts().to_vec(),
            h.sum(),
        );
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.mean(), h.mean());
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(vec![1.0]);
        let b = Histogram::new(vec![2.0]);
        a.merge(&b);
    }

    /// Worker registry for the associativity test: distinct metric
    /// names per worker exercise the union path, shared names the
    /// combine path.
    fn worker_registry(seed: u64) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.counter("shared").add(seed + 1);
        r.counter(&format!("only_{seed}")).inc();
        r.gauge("level").add(seed as f64 * 0.5);
        let h = r.histogram("hops", &[2.0, 4.0, 8.0]);
        for i in 0..=seed {
            h.record((seed + i) as f64);
        }
        r
    }

    #[test]
    fn registry_merge_is_associative_and_order_independent() {
        // Thread fan-in merges worker registries pairwise in whatever
        // order workers finish; the result must not depend on that
        // order: ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) == ((c ⊕ a) ⊕ b).
        let (a, b, c) = (worker_registry(0), worker_registry(3), worker_registry(7));

        let mut left = MetricsRegistry::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);

        let mut right_tail = MetricsRegistry::new();
        right_tail.merge(&b);
        right_tail.merge(&c);
        let mut right = MetricsRegistry::new();
        right.merge(&a);
        right.merge(&right_tail);

        let mut rotated = MetricsRegistry::new();
        rotated.merge(&c);
        rotated.merge(&a);
        rotated.merge(&b);

        for r in [&right, &rotated] {
            assert_eq!(r.counter_value("shared"), left.counter_value("shared"));
            for seed in [0, 3, 7] {
                assert_eq!(r.counter_value(&format!("only_{seed}")), Some(1));
            }
            assert_eq!(r.gauge_value("level"), left.gauge_value("level"));
            let (h, l) = (
                r.get_histogram("hops").unwrap(),
                left.get_histogram("hops").unwrap(),
            );
            assert_eq!(h.bucket_counts(), l.bucket_counts());
            assert_eq!(h.count(), l.count());
            // Sums of integer-valued samples are exactly associative.
            assert_eq!(h.sum(), l.sum());
        }
        assert_eq!(left.counter_value("shared"), Some(1 + 4 + 8));
    }

    #[test]
    fn registry_csv_is_deterministic() {
        let mut r = MetricsRegistry::new();
        r.counter("zeta").add(3);
        r.counter("alpha").inc();
        r.gauge("mid").set(1.5);
        r.histogram("hops", &[2.0, 4.0]).record(3.0);
        let csv = r.to_csv();
        let alpha = csv.find("alpha,counter").unwrap();
        let zeta = csv.find("zeta,counter").unwrap();
        assert!(alpha < zeta, "counters sorted by name");
        assert!(csv.contains("hops,histogram,le_4,1"));
        assert!(csv.contains("hops,histogram,overflow,0"));
        assert_eq!(csv, r.to_csv());
    }
}
