//! Output sinks over a recorded event slice: JSONL export and the
//! human-readable per-phase timeline.
//!
//! Sinks are pure functions from `&[Event]` to `String` — callers
//! (the CLI, tests) decide where bytes go. JSON is emitted by hand;
//! every payload field is numeric, boolean, or a fixed label, so no
//! escaping machinery is needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, EventKind, Phase};
use crate::metrics::Histogram;

/// Renders events as JSON Lines: one flat object per event, with `t`,
/// `trial`, `kind`, and the kind's payload fields.
///
/// ```
/// use sos_observe::{write_jsonl, Event, EventKind};
///
/// let events = [Event::new(4, 2, EventKind::BreakInAttempt {
///     layer: 1,
///     node: 17,
///     succeeded: true,
/// })];
/// assert_eq!(
///     write_jsonl(&events),
///     "{\"t\":4,\"trial\":2,\"kind\":\"break_in_attempt\",\
///      \"layer\":1,\"node\":17,\"succeeded\":true}\n"
/// );
/// ```
pub fn write_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for event in events {
        let _ = write!(
            out,
            "{{\"t\":{},\"trial\":{},\"kind\":\"{}\"",
            event.t,
            event.trial,
            event.kind.tag()
        );
        match &event.kind {
            EventKind::TrialStart { seed } => {
                let _ = write!(out, ",\"seed\":{seed}");
            }
            EventKind::TrialEnd { delivered, attempted } => {
                let _ = write!(out, ",\"delivered\":{delivered},\"attempted\":{attempted}");
            }
            EventKind::PhaseStart { phase } | EventKind::PhaseEnd { phase } => {
                let _ = write!(out, ",\"phase\":\"{}\"", phase.label());
            }
            EventKind::BreakInAttempt { layer, node, succeeded } => {
                let _ = write!(
                    out,
                    ",\"layer\":{layer},\"node\":{node},\"succeeded\":{succeeded}"
                );
            }
            EventKind::Disclosure { source, revealed } => {
                let _ = write!(out, ",\"source\":{source},\"revealed\":{revealed}");
            }
            EventKind::PriorKnowledge { node }
            | EventKind::NodeRepair { node }
            | EventKind::NodeJoin { node }
            | EventKind::NodeLeave { node } => {
                let _ = write!(out, ",\"node\":{node}");
            }
            EventKind::CongestionOnset { node, targeted } => {
                let _ = write!(out, ",\"node\":{node},\"targeted\":{targeted}");
            }
            EventKind::AttackRound { round, case, known } => {
                let _ = write!(out, ",\"round\":{round},\"case\":{case},\"known\":{known}");
            }
            EventKind::RouteAttempt { route } => {
                let _ = write!(out, ",\"route\":{route}");
            }
            EventKind::RouteDelivered { route, hops } => {
                let _ = write!(out, ",\"route\":{route},\"hops\":{hops}");
            }
            EventKind::RouteFailed { route, deepest_layer } => {
                let _ = write!(out, ",\"route\":{route},\"deepest_layer\":{deepest_layer}");
            }
            EventKind::LookupHops { hops } => {
                let _ = write!(out, ",\"hops\":{hops}");
            }
            EventKind::FaultInjected { from, to, fault, ticks } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"to\":{to},\"fault\":\"{}\",\"ticks\":{ticks}",
                    fault.label()
                );
            }
            EventKind::HopRetry { from, to, attempt, backoff } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"to\":{to},\"attempt\":{attempt},\"backoff\":{backoff}"
                );
            }
            EventKind::RouteDowngrade { from, to, fallback, recovered } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"to\":{to},\"fallback\":\"{}\",\"recovered\":{recovered}",
                    fallback.label()
                );
            }
            EventKind::SweepPointStart { point, fingerprint, trials } => {
                let _ = write!(
                    out,
                    ",\"point\":{point},\"fingerprint\":\"{fingerprint:016x}\",\"trials\":{trials}"
                );
            }
            EventKind::SweepPointCached { point, fingerprint } => {
                let _ = write!(
                    out,
                    ",\"point\":{point},\"fingerprint\":\"{fingerprint:016x}\""
                );
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Aggregates for one phase span (between `PhaseStart` and `PhaseEnd`).
#[derive(Debug, Default)]
struct SpanStats {
    attempts: u64,
    break_ins: u64,
    disclosures: u64,
    prior_known: u64,
    onsets_targeted: u64,
    onsets_random: u64,
    repairs: u64,
    rounds: u64,
    case_counts: [u64; 4],
    route_attempts: u64,
    delivered: u64,
    hops_sum: u64,
    lookups: u64,
    lookup_hops_sum: u64,
    joins: u64,
    leaves: u64,
    faults: u64,
    retries: u64,
    downgrades: u64,
    downgrades_recovered: u64,
}

impl SpanStats {
    fn absorb(&mut self, kind: &EventKind) {
        match kind {
            EventKind::BreakInAttempt { succeeded, .. } => {
                self.attempts += 1;
                self.break_ins += u64::from(*succeeded);
            }
            EventKind::Disclosure { .. } => self.disclosures += 1,
            EventKind::PriorKnowledge { .. } => self.prior_known += 1,
            EventKind::CongestionOnset { targeted, .. } => {
                if *targeted {
                    self.onsets_targeted += 1;
                } else {
                    self.onsets_random += 1;
                }
            }
            EventKind::NodeRepair { .. } => self.repairs += 1,
            EventKind::AttackRound { case, .. } => {
                self.rounds += 1;
                if (1..=4).contains(case) {
                    self.case_counts[(*case - 1) as usize] += 1;
                }
            }
            EventKind::RouteAttempt { .. } => self.route_attempts += 1,
            EventKind::RouteDelivered { hops, .. } => {
                self.delivered += 1;
                self.hops_sum += u64::from(*hops);
            }
            EventKind::LookupHops { hops } => {
                self.lookups += 1;
                self.lookup_hops_sum += u64::from(*hops);
            }
            EventKind::NodeJoin { .. } => self.joins += 1,
            EventKind::NodeLeave { .. } => self.leaves += 1,
            EventKind::FaultInjected { .. } => self.faults += 1,
            EventKind::HopRetry { .. } => self.retries += 1,
            EventKind::RouteDowngrade { recovered, .. } => {
                self.downgrades += 1;
                self.downgrades_recovered += u64::from(*recovered);
            }
            _ => {}
        }
    }

    fn describe(&self, phase: Phase) -> String {
        let mut parts: Vec<String> = Vec::new();
        match phase {
            Phase::BreakIn => {
                parts.push(format!(
                    "{} attempts, {} break-ins",
                    self.attempts, self.break_ins
                ));
                if self.disclosures > 0 {
                    parts.push(format!("{} disclosures", self.disclosures));
                }
                if self.prior_known > 0 {
                    parts.push(format!("{} known a priori", self.prior_known));
                }
                if self.rounds > 0 {
                    parts.push(format!(
                        "{} rounds (cases 1–4: {}/{}/{}/{})",
                        self.rounds,
                        self.case_counts[0],
                        self.case_counts[1],
                        self.case_counts[2],
                        self.case_counts[3],
                    ));
                }
            }
            Phase::Congestion => {
                parts.push(format!(
                    "{} onsets ({} targeted, {} random)",
                    self.onsets_targeted + self.onsets_random,
                    self.onsets_targeted,
                    self.onsets_random
                ));
            }
            Phase::Routing => {
                parts.push(format!(
                    "{} attempts, {} delivered",
                    self.route_attempts, self.delivered
                ));
                if self.delivered > 0 {
                    parts.push(format!(
                        "mean {:.1} hops",
                        self.hops_sum as f64 / self.delivered as f64
                    ));
                }
                if self.lookups > 0 {
                    parts.push(format!(
                        "{} lookups, mean {:.1} ring hops",
                        self.lookups,
                        self.lookup_hops_sum as f64 / self.lookups as f64
                    ));
                }
                if self.faults > 0 {
                    parts.push(format!("{} faults injected", self.faults));
                }
                if self.retries > 0 {
                    parts.push(format!("{} retries", self.retries));
                }
                if self.downgrades > 0 {
                    parts.push(format!(
                        "{} downgrades ({} recovered)",
                        self.downgrades, self.downgrades_recovered
                    ));
                }
            }
            Phase::Repair => {
                parts.push(format!("{} nodes repaired", self.repairs));
            }
            Phase::Churn => {
                parts.push(format!(
                    "{} departures, {} joins/promotions",
                    self.leaves, self.joins
                ));
            }
        }
        parts.join(", ")
    }
}

/// Geometric bucket bounds for phase-span durations in logical ticks.
fn span_tick_bounds() -> Vec<f64> {
    (1..=16).map(|p| (1u64 << p) as f64).collect()
}

/// Renders a human-readable per-trial, per-phase timeline.
///
/// Each trial shows its seed and delivery ratio, then one line per
/// phase span with the logical-tick interval and phase-appropriate
/// aggregates — the view printed by `sos trace`. When more than one
/// trial is present, a trailing summary reports the p50/p95/p99
/// distribution of each phase's span length (in logical ticks) across
/// trials.
pub fn render_timeline(events: &[Event]) -> String {
    let mut by_trial: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for event in events {
        by_trial.entry(event.trial).or_default().push(event);
    }

    // Phase label → span-length histogram across all trials.
    let mut span_ticks: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let trial_count = by_trial.len();
    let mut out = String::new();
    for (trial, trial_events) in &by_trial {
        let mut seed = None;
        let mut outcome = None;
        // (phase, t_start, t_end, stats)
        let mut spans: Vec<(Phase, u64, u64, SpanStats)> = Vec::new();
        let mut open: Option<usize> = None;
        for event in trial_events {
            match &event.kind {
                EventKind::TrialStart { seed: s } => seed = Some(*s),
                EventKind::TrialEnd { delivered, attempted } => {
                    outcome = Some((*delivered, *attempted));
                }
                EventKind::PhaseStart { phase } => {
                    spans.push((*phase, event.t, event.t, SpanStats::default()));
                    open = Some(spans.len() - 1);
                }
                EventKind::PhaseEnd { .. } => {
                    if let Some(i) = open.take() {
                        spans[i].2 = event.t;
                    }
                }
                kind => {
                    if let Some(i) = open {
                        spans[i].2 = event.t;
                        spans[i].3.absorb(kind);
                    }
                }
            }
        }

        let _ = write!(out, "trial {trial}");
        if let Some(s) = seed {
            let _ = write!(out, "  seed={s:#x}");
        }
        if let Some((delivered, attempted)) = outcome {
            let _ = write!(out, "  routes {delivered}/{attempted} delivered");
        }
        out.push('\n');
        let width = spans
            .iter()
            .map(|(_, s, e, _)| format!("t {s}..{e}").len())
            .max()
            .unwrap_or(0);
        for (phase, start, end, stats) in &spans {
            let interval = format!("t {start}..{end}");
            let _ = writeln!(
                out,
                "  {interval:<width$}  {:<10}  {}",
                phase.label(),
                stats.describe(*phase)
            );
            span_ticks
                .entry(phase.label())
                .or_insert_with(|| Histogram::new(span_tick_bounds()))
                .record((end - start) as f64);
        }
    }
    if trial_count > 1 && !span_ticks.is_empty() {
        out.push_str("phase-span summary (logical ticks across trials):\n");
        for (label, hist) in &span_ticks {
            let q = |q: f64| hist.quantile(q).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {label:<10}  p50 {:>7.1}  p95 {:>7.1}  p99 {:>7.1}  ({} spans)",
                q(0.50),
                q(0.95),
                q(0.99),
                hist.count()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(0, 0, EventKind::TrialStart { seed: 42 }),
            Event::new(1, 0, EventKind::PhaseStart { phase: Phase::BreakIn }),
            Event::new(2, 0, EventKind::AttackRound { round: 1, case: 1, known: 3 }),
            Event::new(3, 0, EventKind::BreakInAttempt { layer: 1, node: 5, succeeded: true }),
            Event::new(4, 0, EventKind::Disclosure { source: 5, revealed: 9 }),
            Event::new(5, 0, EventKind::PhaseEnd { phase: Phase::BreakIn }),
            Event::new(6, 0, EventKind::PhaseStart { phase: Phase::Congestion }),
            Event::new(7, 0, EventKind::CongestionOnset { node: 9, targeted: true }),
            Event::new(8, 0, EventKind::CongestionOnset { node: 2, targeted: false }),
            Event::new(9, 0, EventKind::PhaseEnd { phase: Phase::Congestion }),
            Event::new(10, 0, EventKind::PhaseStart { phase: Phase::Routing }),
            Event::new(11, 0, EventKind::RouteAttempt { route: 0 }),
            Event::new(12, 0, EventKind::RouteDelivered { route: 0, hops: 4 }),
            Event::new(13, 0, EventKind::RouteAttempt { route: 1 }),
            Event::new(14, 0, EventKind::RouteFailed { route: 1, deepest_layer: 2 }),
            Event::new(15, 0, EventKind::PhaseEnd { phase: Phase::Routing }),
            Event::new(16, 0, EventKind::TrialEnd { delivered: 1, attempted: 2 }),
        ]
    }

    #[test]
    fn jsonl_one_line_per_event_with_payload() {
        let events = sample_events();
        let jsonl = write_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), events.len());
        assert!(lines[0].contains("\"kind\":\"trial_start\""));
        assert!(lines[0].contains("\"seed\":42"));
        assert!(lines[3].contains("\"succeeded\":true"));
        assert!(lines[2].contains("\"case\":1"));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn timeline_groups_phases_and_reports_ratio() {
        let timeline = render_timeline(&sample_events());
        assert!(timeline.starts_with("trial 0  seed=0x2a  routes 1/2 delivered"));
        assert!(timeline.contains("break-in"));
        assert!(timeline.contains("1 attempts, 1 break-ins"));
        assert!(timeline.contains("1 disclosures"));
        assert!(timeline.contains("2 onsets (1 targeted, 1 random)"));
        assert!(timeline.contains("2 attempts, 1 delivered"));
        assert!(timeline.contains("mean 4.0 hops"));
    }

    #[test]
    fn fault_events_render_in_jsonl_and_timeline() {
        use crate::event::{FallbackMode, FaultClass};
        let events = vec![
            Event::new(0, 0, EventKind::PhaseStart { phase: Phase::Routing }),
            Event::new(1, 0, EventKind::RouteAttempt { route: 0 }),
            Event::new(
                2,
                0,
                EventKind::FaultInjected { from: 3, to: 9, fault: FaultClass::Loss, ticks: 0 },
            ),
            Event::new(3, 0, EventKind::HopRetry { from: 3, to: 9, attempt: 2, backoff: 4 }),
            Event::new(
                4,
                0,
                EventKind::RouteDowngrade {
                    from: 3,
                    to: 9,
                    fallback: FallbackMode::SuccessorWalk,
                    recovered: true,
                },
            ),
            Event::new(5, 0, EventKind::RouteDelivered { route: 0, hops: 7 }),
            Event::new(6, 0, EventKind::PhaseEnd { phase: Phase::Routing }),
        ];
        let jsonl = write_jsonl(&events);
        assert!(jsonl.contains("\"kind\":\"fault_injected\""));
        assert!(jsonl.contains("\"fault\":\"loss\""));
        assert!(jsonl.contains("\"kind\":\"hop_retry\""));
        assert!(jsonl.contains("\"attempt\":2,\"backoff\":4"));
        assert!(jsonl.contains("\"fallback\":\"successor-walk\""));
        assert!(jsonl.contains("\"recovered\":true"));
        let timeline = render_timeline(&events);
        assert!(timeline.contains("1 faults injected"));
        assert!(timeline.contains("1 retries"));
        assert!(timeline.contains("1 downgrades (1 recovered)"));
    }

    #[test]
    fn timeline_separates_trials() {
        let mut events = sample_events();
        let mut second: Vec<Event> = sample_events()
            .into_iter()
            .map(|mut e| {
                e.trial = 1;
                e
            })
            .collect();
        events.append(&mut second);
        let timeline = render_timeline(&events);
        assert!(timeline.contains("trial 0"));
        assert!(timeline.contains("trial 1"));
    }

    #[test]
    fn multi_trial_timeline_appends_span_quantiles() {
        // One trial: no summary (a single span has no distribution).
        let single = render_timeline(&sample_events());
        assert!(!single.contains("phase-span summary"));

        // Three trials: the summary reports per-phase p50/p95/p99 of
        // span lengths. Every sample span is 4 ticks (t 1..5, 6..9,
        // 10..15 → 4, 3, 5), so quantiles stay within those bounds.
        let mut events = Vec::new();
        for trial in 0..3 {
            events.extend(sample_events().into_iter().map(|mut e| {
                e.trial = trial;
                e
            }));
        }
        let timeline = render_timeline(&events);
        assert!(timeline.contains("phase-span summary"));
        for phase in ["break-in", "congestion", "routing"] {
            let line = timeline
                .lines()
                .find(|l| l.trim_start().starts_with(phase) && l.contains("p50"))
                .unwrap_or_else(|| panic!("no summary line for {phase}:\n{timeline}"));
            assert!(line.contains("p95") && line.contains("p99"), "{line}");
            assert!(line.contains("(3 spans)"), "{line}");
        }
    }
}
